//! Cross-crate integration: the worst-case (competitive) results, tying
//! `mdr-core` policies, `mdr-adversary` OPT, and `mdr-analysis` factors
//! together.

use mobile_replication::adversary::{cycle_ratio, generators, measure, opt_cost, verify_factor};
use mobile_replication::analysis::competitive;
use mobile_replication::prelude::*;
use proptest::prelude::*;

fn arb_schedule(max_len: usize) -> impl Strategy<Value = Schedule> {
    prop::collection::vec(prop::bool::ANY.prop_map(Request::from_bit), 1..=max_len)
        .prop_map(Schedule::from_requests)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// OPT is a true lower bound: no online policy ever beats the offline
    /// optimum that starts from the same replica state.
    #[test]
    fn opt_lower_bounds_every_policy(s in arb_schedule(120), omega in 0.0f64..=1.0) {
        use mobile_replication::adversary::opt_cost_from;
        for model in [CostModel::Connection, CostModel::message(omega)] {
            for spec in PolicySpec::roster(&[1, 3, 9], &[2, 5]) {
                let opt = opt_cost_from(&s, model, spec.build().has_copy());
                let cost = run_spec(spec, &s, model).total_cost;
                prop_assert!(cost >= opt - 1e-9, "{spec} {model} on {s}: {cost} < OPT {opt}");
            }
        }
    }

    /// The paper's competitive factors are never violated on random
    /// schedules (with the cold-start additive constant).
    #[test]
    fn claimed_factors_hold_on_random_schedules(s in arb_schedule(200), omega in 0.0f64..=1.0) {
        for k in [1usize, 3, 7] {
            let spec = PolicySpec::SlidingWindow { k };
            for model in [CostModel::Connection, CostModel::message(omega)] {
                let factor = competitive::competitive_factor(spec, model)
                    .expect("SWk is competitive");
                let r = measure(spec, &s, model);
                // Additive slack: one cold-start burst of at most k + 1
                // chargeable requests, each costing at most 1 + ω.
                let slack = (k as f64 + 1.0) * (1.0 + omega);
                prop_assert!(
                    !r.violates(factor, slack),
                    "{spec} {model} on {s}: cost {} vs {factor}·{} + {slack}",
                    r.policy_cost,
                    r.opt_cost
                );
            }
        }
    }
}

#[test]
fn exhaustive_verification_of_all_paper_factors() {
    // Every schedule up to length 12, every policy family, both models.
    let omega = 0.5;
    let cases: Vec<(PolicySpec, CostModel, f64, f64)> = vec![
        // (spec, model, factor, additive slack)
        (
            PolicySpec::SlidingWindow { k: 1 },
            CostModel::Connection,
            2.0,
            2.0,
        ),
        (
            PolicySpec::SlidingWindow { k: 3 },
            CostModel::Connection,
            4.0,
            4.0,
        ),
        (
            PolicySpec::SlidingWindow { k: 5 },
            CostModel::Connection,
            6.0,
            6.0,
        ),
        (
            PolicySpec::SlidingWindow { k: 1 },
            CostModel::message(omega),
            competitive::sw1_message_factor(omega),
            1.0 + omega,
        ),
        (
            PolicySpec::SlidingWindow { k: 3 },
            CostModel::message(omega),
            competitive::swk_message_factor(3, omega),
            4.0 * (1.0 + omega),
        ),
        (PolicySpec::T1 { m: 2 }, CostModel::Connection, 3.0, 3.0),
        (PolicySpec::T2 { m: 2 }, CostModel::Connection, 3.0, 3.0),
        (
            PolicySpec::T1 { m: 2 },
            CostModel::message(omega),
            competitive::t1_message_factor(2, omega),
            2.0 * (1.0 + omega),
        ),
        (
            PolicySpec::T2 { m: 2 },
            CostModel::message(omega),
            competitive::t2_message_factor(2, omega),
            2.0 * (1.0 + omega),
        ),
    ];
    for (spec, model, factor, slack) in cases {
        verify_factor(spec, model, factor, slack, 12)
            .unwrap_or_else(|s| panic!("{spec} {model}: factor {factor} violated on {s}"));
    }
}

#[test]
fn tight_factors_are_attained_by_the_published_cycles() {
    // Lower bounds: the adversarial constructions reach the factors.
    let cases = [
        (3usize, CostModel::Connection),
        (9, CostModel::Connection),
        (3, CostModel::message(0.5)),
        (5, CostModel::message(1.0)),
    ];
    for (k, model) in cases {
        let spec = PolicySpec::SlidingWindow { k };
        let factor = competitive::competitive_factor(spec, model).expect("competitive");
        let warmup = Schedule::all_reads(k);
        let half = k.div_ceil(2);
        let cycle = Schedule::write_read_cycles(half, half, 1);
        let r = cycle_ratio(spec, &warmup, &cycle, 500, model);
        let ratio = r.ratio.expect("OPT pays per cycle");
        assert!(ratio > factor * 0.99, "{spec} {model}: {ratio} vs {factor}");
        assert!(
            ratio <= factor + 1e-9,
            "{spec} {model}: tight factor exceeded"
        );
    }
}

#[test]
fn statics_fail_against_growing_punishers_in_both_models() {
    for model in [CostModel::Connection, CostModel::message(0.3)] {
        let mut prev = 0.0;
        for n in [32usize, 256, 2_048] {
            let r = measure(
                PolicySpec::St1,
                &generators::static_punisher(PolicySpec::St1, n),
                model,
            );
            let ratio = r.ratio.expect("OPT fetches once");
            assert!(ratio > prev, "{model}: ST1 ratio must diverge");
            prev = ratio;
        }
        let r = measure(
            PolicySpec::St2,
            &generators::static_punisher(PolicySpec::St2, 512),
            model,
        );
        assert_eq!(r.opt_cost, 0.0);
        assert!(r.policy_cost >= 512.0);
    }
}

#[test]
fn opt_through_the_simulator_pipeline() {
    // End-to-end: generate a Poisson schedule with the simulator, then
    // check OPT lower-bounds the very run that produced it.
    let spec = PolicySpec::SlidingWindow { k: 9 };
    let report = Simulation::run_poisson(spec, 0.45, 10_000, 31);
    for model in [CostModel::Connection, CostModel::message(0.6)] {
        let opt = opt_cost(&report.schedule, model);
        assert!(report.cost(model) >= opt);
        // And the measured ratio respects Theorem 4 / 12 with slack.
        let factor = competitive::competitive_factor(spec, model).expect("competitive");
        assert!(report.cost(model) <= factor * opt + 20.0);
    }
}

#[test]
fn regression_single_read_at_omega_zero() {
    // Pinned from a proptest shrink once recorded in the regression file:
    // s = "r", ω = 0. The OPT lower bound and the claimed factors must hold
    // on the minimal read-only schedule when control messages are free.
    use mobile_replication::adversary::opt_cost_from;
    let s: Schedule = "r".parse().unwrap();
    for model in [CostModel::Connection, CostModel::message(0.0)] {
        for spec in PolicySpec::roster(&[1, 3, 9], &[2, 5]) {
            let opt = opt_cost_from(&s, model, spec.build().has_copy());
            let cost = run_spec(spec, &s, model).total_cost;
            assert!(cost >= opt - 1e-9, "{spec} {model}: {cost} < OPT {opt}");
        }
        for k in [1usize, 3, 7] {
            let spec = PolicySpec::SlidingWindow { k };
            let factor = competitive::competitive_factor(spec, model).expect("SWk is competitive");
            let r = measure(spec, &s, model);
            let slack = (k as f64 + 1.0) * (1.0 + model.omega());
            assert!(
                !r.violates(factor, slack),
                "{spec} {model}: cost {} vs {factor}·{} + {slack}",
                r.policy_cost,
                r.opt_cost
            );
        }
    }
}
