//! Cross-crate integration: the distributed MC/SC protocol (`mdr-sim`)
//! is behaviourally identical to the pure-policy reference (`mdr-core`)
//! on the serialized request order — the §3 serialization argument as an
//! executable theorem.

use mobile_replication::prelude::*;
use proptest::prelude::*;

fn arb_schedule(max_len: usize) -> impl Strategy<Value = Schedule> {
    prop::collection::vec(prop::bool::ANY.prop_map(Request::from_bit), 0..=max_len)
        .prop_map(Schedule::from_requests)
}

fn arb_spec() -> impl Strategy<Value = PolicySpec> {
    prop_oneof![
        Just(PolicySpec::St1),
        Just(PolicySpec::St2),
        (0usize..8).prop_map(|n| PolicySpec::SlidingWindow { k: 2 * n + 1 }),
        (1usize..8).prop_map(|m| PolicySpec::T1 { m }),
        (1usize..8).prop_map(|m| PolicySpec::T2 { m }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The distributed run and the in-process replay agree on every cost
    /// metric for arbitrary schedules and policies. (The simulator's oracle
    /// mode additionally asserts per-request action equality internally.)
    #[test]
    fn distributed_protocol_equals_reference(spec in arb_spec(), s in arb_schedule(150)) {
        let sim = Simulation::run_schedule(spec, &s);
        let reference = run_spec(spec, &s, CostModel::Connection);
        prop_assert_eq!(sim.counts, reference.counts);
        prop_assert_eq!(sim.cost(CostModel::Connection), reference.total_cost);
        for omega in [0.0, 0.4, 1.0] {
            let model = CostModel::message(omega);
            let reference = run_spec(spec, &s, model);
            prop_assert!((sim.cost(model) - reference.total_cost).abs() < 1e-9);
        }
        prop_assert_eq!(sim.schedule, s);
    }

    /// Link latency changes time metrics but never cost: serialization makes
    /// the protocol's communication independent of timing.
    #[test]
    fn latency_never_changes_cost(spec in arb_spec(), s in arb_schedule(80), latency in 0.0f64..2.0) {
        use mobile_replication::sim::{RunLimit, TraceWorkload};
        let run = |lat: f64| {
            let Ok(builder) = SimBuilder::new(spec).and_then(|b| b.latency(lat)) else {
                unreachable!("generated policies and latencies are valid")
            };
            let mut sim = builder.simulation();
            let mut w = TraceWorkload::new(s.clone(), 0.5);
            sim.run(&mut w, RunLimit::Requests(s.len()))
        };
        let fast = run(0.0);
        let slow = run(latency);
        prop_assert_eq!(fast.counts, slow.counts);
        prop_assert_eq!(fast.cost(CostModel::message(0.3)), slow.cost(CostModel::message(0.3)));
        prop_assert!(slow.makespan >= fast.makespan - 1e-9);
    }
}

#[test]
fn poisson_runs_pass_the_oracle_for_every_policy() {
    // The simulator panics on any divergence when oracle_check is on, so
    // simply completing these runs is the assertion.
    for spec in PolicySpec::roster(&[1, 3, 5, 9, 15], &[1, 3, 7]) {
        for theta in [0.1, 0.5, 0.9] {
            let report = Simulation::run_poisson(spec, theta, 3_000, 0xC0FFEE);
            assert_eq!(report.counts.total(), 3_000, "{spec} θ={theta}");
        }
    }
}

#[test]
fn window_handoff_carries_exact_history() {
    // Crafted so ownership migrates repeatedly; the oracle would catch any
    // window corruption across the piggybacked handoffs.
    let s: Schedule = "rrrwwwrrrwwwrrrwwwrrr".parse().unwrap();
    for k in [3usize, 5, 7] {
        let spec = PolicySpec::SlidingWindow { k };
        let report = Simulation::run_schedule(spec, &s);
        assert!(
            report.allocations >= 2,
            "k={k}: ownership must migrate repeatedly"
        );
        assert!(report.deallocations >= 2);
    }
}

#[test]
fn replica_is_never_stale() {
    // The sim asserts freshness internally; this drives a write-heavy
    // workload with replica churn to exercise that assertion hard.
    let report = Simulation::run_poisson(PolicySpec::SlidingWindow { k: 3 }, 0.65, 20_000, 9);
    assert!(
        report.deallocations > 100,
        "the workload must actually churn the replica"
    );
}

#[test]
fn omega_zero_bills_only_data_messages() {
    // §3's lower edge ω = 0: control messages are free, so the message-model
    // bill of any run is exactly its data-message count, and SW1's optimized
    // delete-request write (§4, a lone control message) costs nothing.
    let model = CostModel::message(0.0);
    for spec in PolicySpec::roster(&[1, 3, 5], &[2]) {
        for text in ["rwrwrwrwrw", "rrrwwwrrrwwwrrr", "wrrrrwwrwr"] {
            let s: Schedule = text.parse().unwrap();
            let sim = Simulation::run_schedule(spec, &s);
            let reference = run_spec(spec, &s, model);
            assert!(
                (sim.cost(model) - reference.total_cost).abs() < 1e-9,
                "{spec} on {s}: distributed and reference bills diverge"
            );
            assert!(
                (reference.total_cost - reference.counts.data_messages() as f64).abs() < 1e-9,
                "{spec} on {s}: the ω=0 bill must equal the data-message count"
            );
        }
    }
    // Alternating requests drive SW1 through its delete-request path, which
    // must be visible in the tallies yet absent from the ω=0 bill.
    let s = Schedule::alternating(Request::Read, 40);
    let sw1 = run_spec(PolicySpec::SlidingWindow { k: 1 }, &s, model);
    assert!(sw1.counts.delete_request_writes > 0);
    assert!((sw1.total_cost - sw1.counts.data_messages() as f64).abs() < 1e-9);
}

#[test]
fn omega_one_bills_control_like_data() {
    // §3's upper edge ω = 1: a control message costs as much as a data
    // message, so the bill is the total number of messages of either kind.
    let model = CostModel::message(1.0);
    for spec in PolicySpec::roster(&[1, 3, 5], &[2]) {
        for text in ["rwrwrwrwrw", "rrrwwwrrrwwwrrr", "wrrrrwwrwr"] {
            let s: Schedule = text.parse().unwrap();
            let sim = Simulation::run_schedule(spec, &s);
            let reference = run_spec(spec, &s, model);
            assert!(
                (sim.cost(model) - reference.total_cost).abs() < 1e-9,
                "{spec} on {s}: distributed and reference bills diverge"
            );
            let messages = reference.counts.data_messages() + reference.counts.control_messages();
            assert!(
                (reference.total_cost - messages as f64).abs() < 1e-9,
                "{spec} on {s}: the ω=1 bill must equal the total message count"
            );
        }
    }
}

#[test]
fn regression_high_latency_st1_read_write_read() {
    // Pinned from a proptest shrink once recorded in the regression file:
    // spec = ST1, s = "rwr", latency ≈ 1.8858. Serialization (§3) makes the
    // bill latency-independent even when the link is slower than the
    // inter-arrival gap.
    use mobile_replication::sim::{RunLimit, TraceWorkload};
    let s: Schedule = "rwr".parse().unwrap();
    let run = |lat: f64| {
        let Ok(builder) = SimBuilder::new(PolicySpec::St1).and_then(|b| b.latency(lat)) else {
            unreachable!("the pinned latency is valid")
        };
        let mut sim = builder.simulation();
        let mut w = TraceWorkload::new(s.clone(), 0.5);
        sim.run(&mut w, RunLimit::Requests(s.len()))
    };
    let fast = run(0.0);
    let slow = run(1.8857753182245665);
    assert_eq!(fast.counts, slow.counts);
    assert!((fast.cost(CostModel::message(0.3)) - slow.cost(CostModel::message(0.3))).abs() < 1e-9);
    assert!(slow.makespan >= fast.makespan - 1e-9);
}
