//! Cross-crate integration: the closed-form analysis (`mdr-analysis`) must
//! predict what the distributed simulator (`mdr-sim`) actually measures,
//! for every policy family, in both cost models, across the θ range.

use mobile_replication::prelude::*;
use mobile_replication::sim::{estimate_average_cost, estimate_expected_cost, EstimatorConfig};

fn estimator(seed: u64) -> EstimatorConfig {
    EstimatorConfig {
        requests_per_run: 12_000,
        replications: 5,
        seed,
    }
}

#[test]
fn expected_cost_matches_simulation_across_the_grid() {
    let specs = PolicySpec::roster(&[1, 3, 9], &[2, 6]);
    let models = [
        CostModel::Connection,
        CostModel::message(0.35),
        CostModel::message(1.0),
    ];
    for &spec in &specs {
        for &model in &models {
            for &theta in &[0.15, 0.5, 0.85] {
                let analytic = expected_cost(spec, model, theta);
                let sim = estimate_expected_cost(spec, model, theta, estimator(1000));
                assert!(
                    sim.covers(analytic, 0.015),
                    "{spec} {model} θ={theta}: simulated {} ± {} vs analytic {analytic}",
                    sim.mean,
                    sim.ci95
                );
            }
        }
    }
}

#[test]
fn average_cost_matches_drifting_theta_simulation() {
    // The AVG integral (Eq. 1) against its operational meaning: θ redrawn
    // uniformly per period.
    for spec in [
        PolicySpec::St1,
        PolicySpec::St2,
        PolicySpec::SlidingWindow { k: 1 },
        PolicySpec::SlidingWindow { k: 9 },
        PolicySpec::T1 { m: 4 },
    ] {
        for model in [CostModel::Connection, CostModel::message(0.5)] {
            let analytic = average_expected_cost(spec, model);
            let sim = estimate_average_cost(
                spec,
                model,
                2_000,
                25,
                EstimatorConfig {
                    requests_per_run: 0,
                    replications: 5,
                    seed: 2000,
                },
            );
            assert!(
                sim.covers(analytic, 0.02),
                "{spec} {model}: simulated {} ± {} vs analytic {analytic}",
                sim.mean,
                sim.ci95
            );
        }
    }
}

#[test]
fn pi_k_matches_observed_replica_residency() {
    // Eq. 4 is a statement about the stationary replica state: the fraction
    // of requests served with a replica present must equal... (reads served
    // locally happen with probability (1−θ)·π_k).
    let k = 7;
    let theta = 0.4;
    let report = Simulation::run_poisson(PolicySpec::SlidingWindow { k }, theta, 60_000, 77);
    let pi = mobile_replication::analysis::pi_k(k, theta);
    let local_read_fraction = report.counts.local_reads as f64 / report.counts.total() as f64;
    let predicted = (1.0 - theta) * pi;
    assert!(
        (local_read_fraction - predicted).abs() < 0.01,
        "local-read fraction {local_read_fraction} vs (1−θ)π_k = {predicted}"
    );
    // Writes propagated with probability θ·π_k.
    let prop_fraction = (report.counts.propagated_writes + report.counts.deallocating_writes)
        as f64
        / report.counts.total() as f64;
    assert!((prop_fraction - theta * pi).abs() < 0.01);
}

#[test]
fn deallocation_rate_matches_eq_11_transition_term() {
    // The ω-term of Eq. 11 is the per-request deallocation probability;
    // check it against the simulator's deallocation counter.
    for (k, theta) in [(3usize, 0.5), (5, 0.4), (9, 0.55)] {
        let n = 80_000;
        let report = Simulation::run_poisson(PolicySpec::SlidingWindow { k }, theta, n, 5);
        let predicted = mobile_replication::analysis::transition_probability(k, theta);
        let measured = report.deallocations as f64 / n as f64;
        assert!(
            (measured - predicted).abs() < 0.01,
            "k={k} θ={theta}: measured dealloc rate {measured} vs C(2n,n)θ^{{n+1}}(1−θ)^{{n+1}} = {predicted}"
        );
    }
}

#[test]
fn connection_model_cost_equals_message_cost_at_omega_one_for_data_only_policies() {
    // ST2 never sends control messages, so its connection cost equals its
    // message cost at any ω — a cheap consistency check tying the two
    // accounting paths together.
    let report = Simulation::run_poisson(PolicySpec::St2, 0.5, 10_000, 3);
    assert_eq!(
        report.cost(CostModel::Connection),
        report.cost(CostModel::message(0.9))
    );
}
