//! End-to-end workspace test: the full reproduction pipeline, exercised
//! the way a user of the library would drive it, plus a fast-mode run of
//! every experiment in the harness.

use mobile_replication::prelude::*;

#[test]
fn paper_reproduction_pipeline() {
    // 1. A user profiles their workload and finds θ ≈ 0.35 on a packet
    //    network with ω = 0.25.
    let theta = 0.35;
    let omega = 0.25;
    let model = CostModel::message(omega);

    // 2. The Figure 1 lookup recommends a policy for fixed θ…
    use mobile_replication::analysis::dominance::{message_winner, Winner};
    let winner = message_winner(theta, omega);
    assert_eq!(winner, Winner::Sw1, "θ=0.35, ω=0.25 lies in the SW1 band");

    // 3. …and theory predicts its cost.
    let predicted = expected_cost(winner.spec(), model, theta);

    // 4. Running the real distributed protocol confirms the prediction…
    let report = Simulation::run_poisson(winner.spec(), theta, 40_000, 123);
    let measured = report.cost_per_request(model);
    assert!(
        (measured - predicted).abs() < 0.01,
        "measured {measured} vs predicted {predicted}"
    );

    // 5. …and beats both statics on the same seeded workload.
    for other in [PolicySpec::St1, PolicySpec::St2] {
        let other_cost = Simulation::run_poisson(other, theta, 40_000, 123).cost_per_request(model);
        assert!(measured < other_cost, "{other} should lose here");
    }

    // 6. Offline hindsight check: the run stayed within SW1's competitive
    //    envelope on its own schedule.
    let opt = opt_cost(&report.schedule, model);
    let factor = competitive_factor(winner.spec(), model).expect("SW1 is competitive");
    assert!(report.cost(model) <= factor * opt + (1.0 + omega));
}

#[test]
fn all_experiments_reproduce_in_fast_mode() {
    let experiments = mdr_bench::experiments::run_all(mdr_bench::RunCfg { fast: true });
    assert_eq!(experiments.len(), mdr_bench::experiments::ALL_IDS.len());
    for e in &experiments {
        assert!(
            e.all_reproduced(),
            "experiment {} has deviations:\n{}",
            e.id,
            e.render()
        );
        assert!(!e.tables.is_empty(), "{} produced no tables", e.id);
    }
}

#[test]
fn facade_reexports_are_usable() {
    // Types from different crates compose through the facade paths.
    let schedule: Schedule = "rrwwr".parse().expect("valid");
    let out = run_spec(
        PolicySpec::SlidingWindow { k: 3 },
        &schedule,
        CostModel::Connection,
    );
    assert!(out.total_cost >= 0.0);
    let avg = mobile_replication::analysis::connection::avg_swk(9);
    assert!((avg - (0.25 + 1.0 / 44.0)).abs() < 1e-12);
    let profile =
        mobile_replication::multi::OperationProfile::two_objects(5.0, 1.0, 1.0, 1.0, 5.0, 1.0);
    let (best, _) = profile.optimal_allocation();
    assert!(best.0.contains(0));
    let search = mobile_replication::adversary::exhaustive_search(
        PolicySpec::SlidingWindow { k: 1 },
        CostModel::Connection,
        8,
    );
    assert!(search.worst.ratio.expect("positive OPT exists") <= 2.0 + 1e-9);
}
