//! Ledger-digest regression pins for the hot-path rewrite.
//!
//! The calendar event queue, envelope pooling and batched RNG draws in
//! `mdr-sim` are pure mechanical speedups: they must not move a single
//! event, draw, or billed message. These tests pin the FNV-1a ledger
//! digest of every CI sweep preset (E6, E17, E18, E19) to the values the
//! pre-rewrite `BinaryHeap` simulator produced, and re-assert the
//! serial-vs-parallel byte-identity bar on top. Any drift in event
//! ordering, RNG stream consumption, or billing shows up here as a
//! one-word diff.

use mdr_bench::sweep::preset;
use mdr_bench::RunCfg;
use mdr_sim::sweep::{SweepOptions, SweepReport};

fn fast_report(name: &str) -> SweepReport {
    preset(name, RunCfg { fast: true })
        .unwrap_or_else(|| panic!("unknown preset {name}"))
        .run_serial()
}

/// The pre-rewrite digests, captured from the heap-based simulator at
/// the commit that introduced this test. The queue/pool/RNG rewrite must
/// reproduce them bit for bit.
const PINNED: &[(&str, u64)] = &[
    ("e6", 0x7c56_bffb_ee11_e10f),
    ("e17", 0x686f_e07d_53ce_b53e),
    ("e18", 0x734b_ebd2_ed35_1b61),
    ("e19", 0xa150_fd50_486a_3178),
];

#[test]
fn preset_ledger_digests_are_pinned() {
    for &(name, expected) in PINNED {
        let digest = fast_report(name).ledger_digest();
        assert_eq!(
            digest, expected,
            "preset {name}: ledger digest {digest:#018x} drifted from the \
             pinned pre-rewrite value {expected:#018x}"
        );
    }
}

#[test]
fn preset_ledgers_are_thread_count_invariant() {
    for &(name, _) in PINNED {
        let grid = preset(name, RunCfg { fast: true }).expect("known preset");
        let serial = grid.run_serial();
        let parallel = grid.run(SweepOptions {
            threads: 4,
            chunk: 2,
        });
        assert_eq!(
            serial.ledger_lines(),
            parallel.ledger_lines(),
            "preset {name}: serial vs 4-thread ledgers must be byte-identical"
        );
        assert_eq!(serial, parallel, "preset {name}: full reports must agree");
    }
}
