//! # Paper-to-code map
//!
//! Where each part of *Huang, Sistla, Wolfson, "Data Replication for Mobile
//! Computers" (SIGMOD 1994)* lives in this workspace. This module contains
//! no code — it is the annotated index for readers coming from the paper.
//!
//! ## §3 — The model
//!
//! | Paper concept | Implementation |
//! |---|---|
//! | relevant requests (reads at MC, writes at SC) | [`Request`](mdr_core::Request) |
//! | schedule (finite request sequence) | [`Schedule`](mdr_core::Schedule) |
//! | connection cost model | [`CostModel::Connection`](mdr_core::CostModel) |
//! | message cost model, data = 1 / control = ω | [`CostModel::Message`](mdr_core::CostModel) |
//! | request costs per allocation state | [`Action`](mdr_core::Action) + [`CostModel::price`](mdr_core::CostModel::price) |
//! | Poisson reads/writes, θ = λw/(λr+λw) | [`PoissonWorkload`](mdr_sim::PoissonWorkload) |
//! | "some concurrency control mechanism will serialize them" | the FIFO serialization in [`Simulation`](mdr_sim::Simulation) |
//! | expected cost `EXP_A(θ)` | [`expected_cost`](mdr_analysis::expected_cost) |
//! | average expected cost `AVG_A` (Eq. 1) | [`average_expected_cost`](mdr_analysis::average_expected_cost); operationally [`DriftingPoisson`](mdr_sim::DriftingPoisson) |
//! | c-competitiveness vs the offline algorithm M | [`opt_cost`](mdr_adversary::opt_cost) + [`measure`](mdr_adversary::measure) |
//!
//! ## §4 — The sliding-window algorithms
//!
//! | Paper concept | Implementation |
//! |---|---|
//! | the k-bit window ("drops the last bit … adds a bit") | [`RequestWindow`](mdr_core::RequestWindow) |
//! | SWk allocation/deallocation rule | [`SlidingWindow`](mdr_core::SlidingWindow) |
//! | "either the MC or the SC … is in charge" | [`MobileNode`](mdr_sim::MobileNode) / [`StationaryNode`](mdr_sim::StationaryNode) |
//! | piggybacked save-indication + window | [`WireMessage::DataResponse`](mdr_sim::WireMessage) |
//! | deallocating delete-request carrying the window | [`WireMessage::DeleteRequest`](mdr_sim::WireMessage) |
//! | the SW1 optimization (delete instead of data) | `k = 1` branch of [`SlidingWindow`](mdr_core::SlidingWindow) and of the SC node |
//!
//! ## §5 — Connection cost model
//!
//! | Result | Implementation | Reproduced by |
//! |---|---|---|
//! | Eq. 2/3 (statics) | [`connection::exp_st1`](mdr_analysis::connection::exp_st1) … | E1, E2 |
//! | Thm 1 / Eq. 5 (`EXP_SWk`) | [`connection::exp_swk`](mdr_analysis::connection::exp_swk); verified exactly by [`exact::exact_exp_swk`](mdr_analysis::exact::exact_exp_swk) | E1 |
//! | Thm 2 (dominance) | tests on [`connection::optimal_exp`](mdr_analysis::connection::optimal_exp) | E1 |
//! | Thm 3 / Eq. 6 (`AVG_SWk`) + Cor 1 | [`connection::avg_swk`](mdr_analysis::connection::avg_swk) | E2 |
//! | Thm 4 (tightly (k+1)-competitive) | [`competitive::swk_connection_factor`](mdr_analysis::competitive::swk_connection_factor); [`generators::swk_adversarial`](mdr_adversary::generators::swk_adversarial); [`verify_factor`](mdr_adversary::verify_factor) | E3 |
//!
//! ## §6 — Message cost model
//!
//! | Result | Implementation | Reproduced by |
//! |---|---|---|
//! | Eq. 7/8 (statics) | [`message::exp_st1`](mdr_analysis::message::exp_st1) … | E4, E5 |
//! | Thm 5 / Eq. 9 (`EXP_SW1`) | [`message::exp_sw1`](mdr_analysis::message::exp_sw1) | E4 |
//! | Thm 6 / **Figure 1** (regions) | [`dominance::message_winner`](mdr_analysis::dominance::message_winner) | E4 |
//! | Thm 8 / Eq. 11 (`EXP_SWk`, reconstructed) | [`message::exp_swk`](mdr_analysis::message::exp_swk); proved by [`exact`](mdr_analysis::exact) enumeration | E4 |
//! | Thm 9 (SWk dominated) | [`message::optimal_exp`](mdr_analysis::message::optimal_exp) | E4 |
//! | Thm 10 / Eq. 12 + Cors 2–3 | [`message::avg_swk`](mdr_analysis::message::avg_swk) | E5 |
//! | Cor 4 / **Figure 2** (`k₀(ω)`) | [`window_choice::k0_threshold`](mdr_analysis::window_choice::k0_threshold), [`window_choice::min_beneficial_k`](mdr_analysis::window_choice::min_beneficial_k) | E6 |
//! | Thms 11–12 (message-model competitiveness) | [`competitive::sw1_message_factor`](mdr_analysis::competitive::sw1_message_factor), [`competitive::swk_message_factor`](mdr_analysis::competitive::swk_message_factor) | E7 |
//!
//! ## §7 — Extensions
//!
//! | Result | Implementation | Reproduced by |
//! |---|---|---|
//! | §7.1 T1m / T2m | [`T1`](mdr_core::T1), [`T2`](mdr_core::T2); formulas in [`connection`](mdr_analysis::connection) / [`message`](mdr_analysis::message) | E8 |
//! | §7.2 multi-object static optimum | [`OperationProfile::optimal_allocation`](mdr_multi::OperationProfile::optimal_allocation) | E9 |
//! | §7.2 windowed dynamic variant | [`WindowedAllocator`](mdr_multi::WindowedAllocator) | E9, E14 |
//! | §7.2 closing proposal, single object | [`AdaptivePolicy`](mdr_core::AdaptivePolicy) *(extension)* | E11 |
//!
//! ## §9 — Conclusions
//!
//! The quantified guidance (k = 9 within 10% at 10-competitive, k = 15
//! within 6%, the ω ≤ 0.4 rule) is in
//! [`window_choice::recommend_k`](mdr_analysis::window_choice::recommend_k)
//! and reproduced by E10.
//!
//! ## Beyond the paper
//!
//! Adaptation latency (E12), lossy links with ARQ
//! ([`SimBuilder::loss`](mdr_sim::SimBuilder::loss), E13), and the
//! per-object baseline ([`PerObjectWindows`](mdr_multi::PerObjectWindows),
//! E14) — all documented as extensions in DESIGN.md.
