//! # mobile-replication
//!
//! A complete, tested Rust implementation of the data-allocation algorithms
//! from **Yixiu Huang, A. Prasad Sistla, Ouri Wolfson, "Data Replication
//! for Mobile Computers", ACM SIGMOD 1994** — static and dynamic replica
//! allocation between a mobile computer and the stationary computer holding
//! an online database, optimized for wireless communication cost.
//!
//! This facade re-exports the workspace's public API:
//!
//! * [`core`] (from `mdr-core`) — requests, schedules, both cost models,
//!   and the policy families ST1 / ST2 / SWk / SW1 / T1m / T2m;
//! * [`analysis`] (from `mdr-analysis`) — every closed form of the paper:
//!   expected cost, average expected cost, competitiveness factors, the
//!   Figure 1 dominance map and the Figure 2 threshold `k₀(ω)`;
//! * [`sim`] (from `mdr-sim`) — the discrete-event MC/SC protocol
//!   simulator with Poisson workloads and invariant checking;
//! * [`adversary`] (from `mdr-adversary`) — the offline optimum and the
//!   worst-case/competitive-ratio tooling;
//! * [`multi`] (from `mdr-multi`) — the §7.2 multi-object extension.
//!
//! ## Quickstart
//!
//! ```
//! use mobile_replication::prelude::*;
//!
//! // Pick a policy for a workload whose write fraction drifts: §9 says a
//! // sliding window balancing AVG against competitiveness — e.g. k = 9.
//! let spec = PolicySpec::SlidingWindow { k: 9 };
//!
//! // What does theory predict at θ = 0.3 in the connection model?
//! let predicted = expected_cost(spec, CostModel::Connection, 0.3);
//!
//! // Run the actual distributed protocol on a Poisson workload.
//! let report = Simulation::run_poisson(spec, 0.3, 20_000, 7);
//! let measured = report.cost_per_request(CostModel::Connection);
//! assert!((measured - predicted).abs() < 0.02);
//! ```
//!
//! For parameter grids — many policies × θ × fault plans, fanned across
//! threads with byte-identical results at any thread count — see
//! [`sim::sweep::SweepGrid`] and `docs/sweeps.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod paper_map;

/// Core types and policies (re-export of `mdr-core`).
pub mod core {
    pub use mdr_core::*;
}

/// Closed-form analysis (re-export of `mdr-analysis`).
pub mod analysis {
    pub use mdr_analysis::*;
}

/// Discrete-event distributed simulator (re-export of `mdr-sim`).
pub mod sim {
    pub use mdr_sim::*;
}

/// Offline optimum and worst-case tooling (re-export of `mdr-adversary`).
pub mod adversary {
    pub use mdr_adversary::*;
}

/// Multi-object extension (re-export of `mdr-multi`).
pub mod multi {
    pub use mdr_multi::*;
}

/// The names most programs need.
pub mod prelude {
    pub use mdr_adversary::{measure, opt_cost};
    pub use mdr_analysis::{average_expected_cost, competitive_factor, expected_cost};
    pub use mdr_core::{
        run_spec, Action, AdaptivePolicy, AllocationPolicy, CostModel, PolicySpec, Request,
        RunOutcome, Schedule, SlidingWindow, St1, St2, T1, T2,
    };
    pub use mdr_sim::sweep::{SweepGrid, SweepOptions, SweepReport};
    pub use mdr_sim::{PoissonWorkload, RunLimit, SimBuilder, SimConfig, SimReport, Simulation};
}
