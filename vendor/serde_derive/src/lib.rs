//! Offline vendored stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable in the offline build container, so this
//! macro parses the derive input by walking the raw `proc_macro` token
//! stream directly. It supports exactly the item shapes this workspace
//! derives on — non-generic named structs, tuple structs, unit structs,
//! and enums whose variants are unit, named-field, or tuple — and emits
//! impls of the vendored `serde::Serialize` / `serde::Deserialize` traits
//! following the real serde's externally-tagged conventions.
#![deny(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate(&item)
            .parse()
            .expect("derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error is valid Rust"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let keyword = expect_ident(&toks, &mut i)?;
    let name = expect_ident(&toks, &mut i)?;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive (vendored): generics on `{name}` are unsupported"
        ));
    }
    match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: ItemKind::NamedStruct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                name,
                kind: ItemKind::TupleStruct(count_tuple_fields(g.stream())),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                kind: ItemKind::UnitStruct,
            }),
            _ => Err(format!(
                "serde derive (vendored): malformed struct `{name}`"
            )),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: ItemKind::Enum(parse_variants(g.stream())?),
            }),
            _ => Err(format!("serde derive (vendored): malformed enum `{name}`")),
        },
        other => Err(format!(
            "serde derive (vendored): expected struct or enum, found `{other}`"
        )),
    }
}

fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1; // the [...] group
        }
    }
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            toks.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1; // pub(crate) etc.
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!(
            "serde derive (vendored): expected identifier, found {other:?}"
        )),
    }
}

/// Advances past tokens until a comma at angle-bracket depth 0, consuming
/// the comma. `Group` tokens are atomic, so only `<`/`>` need tracking.
fn skip_to_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(tok) = toks.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        fields.push(expect_ident(&toks, &mut i)?);
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err("serde derive (vendored): expected `:` after field name".into()),
        }
        skip_to_comma(&toks, &mut i);
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        count += 1;
        skip_to_comma(&toks, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i)?;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = VariantFields::Named(parse_named_fields(g.stream())?);
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = VariantFields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
        skip_to_comma(&toks, &mut i); // past discriminant (if any) and comma
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn obj_entry(key: &str, value_expr: &str) -> String {
    format!("(::std::string::String::from(\"{key}\"), {value_expr})")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| obj_entry(f, &format!("::serde::Serialize::to_value(&self.{f})")))
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::String(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantFields::Named(fields) => {
                            let binders = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    obj_entry(f, &format!("::serde::Serialize::to_value({f})"))
                                })
                                .collect();
                            let inner = format!(
                                "::serde::Value::Object(::std::vec![{}])",
                                entries.join(", ")
                            );
                            format!(
                                "{name}::{vname} {{ {binders} }} => \
                                 ::serde::Value::Object(::std::vec![{}]),",
                                obj_entry(vname, &inner)
                            )
                        }
                        VariantFields::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => \
                                 ::serde::Value::Object(::std::vec![{}]),",
                                binders.join(", "),
                                obj_entry(vname, &inner)
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(__fields, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "let __fields = ::serde::de_object(value, \"{name}\")?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        ItemKind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        ItemKind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = ::serde::de_array(value, {n}, \"{name}\")?; \
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        ItemKind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => {
                            format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::de_field(__fields, \"{f}\", \
                                         \"{name}::{vname}\")?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{ \
                                   let __fields = \
                                     ::serde::de_object(__content, \"{name}::{vname}\")?; \
                                   ::std::result::Result::Ok({name}::{vname} {{ {} }}) \
                                 }},",
                                inits.join(", ")
                            )
                        }
                        VariantFields::Tuple(1) => format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__content)?)),"
                        ),
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{ \
                                   let __items = ::serde::de_array(__content, {n}, \
                                     \"{name}::{vname}\")?; \
                                   ::std::result::Result::Ok({name}::{vname}({})) \
                                 }},",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (__tag, __content) = ::serde::de_variant(value, \"{name}\")?; \
                 let _ = __content; \
                 match __tag {{ {} __other => \
                   ::std::result::Result::Err(::serde::unknown_variant(__other, \"{name}\")) }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
           fn from_value(value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}
