//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no access to a crates.io registry, so the
//! workspace vendors the *exact* API surface it consumes: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`SeedableRng`]
//! constructor trait, and the [`RngExt`] sampling extension. The generator
//! is xoshiro256++ seeded via SplitMix64 — high-quality enough for the
//! statistical assertions in the simulator tests, and fully deterministic
//! per seed (the property every test in this workspace actually relies on).
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 as recommended by the xoshiro authors.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Extension trait providing typed sampling, mirroring `rand::Rng` /
/// `rand::RngExt`.
pub trait RngExt: RngCore {
    /// Samples a value of type `T` from its standard distribution:
    /// `f64` uniform in `[0, 1)`, integers uniform over their full range,
    /// `bool` fair.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Types samplable from the "standard" distribution (sealed to the
/// primitives this workspace uses).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// (The real `rand::rngs::StdRng` is a ChaCha variant; nothing in this
    /// workspace depends on the concrete stream, only on per-seed
    /// determinism and reasonable uniformity.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let trues = (0..100_000).filter(|_| rng.random::<bool>()).count();
        assert!((trues as f64 / 100_000.0 - 0.5).abs() < 0.01);
    }
}
