//! Offline vendored stand-in for `proptest`.
//!
//! The build container cannot fetch crates, so this crate reimplements the
//! slice of the proptest API the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, `Just`, range and tuple
//! strategies, `prop_oneof!`, `any::<T>()`, `prop::collection::{vec,
//! btree_map}`, `prop::bool::ANY`, the `proptest!` test macro with
//! `#![proptest_config(..)]`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports its inputs (`Debug`) and the
//!   deterministic case number instead of a minimized counterexample.
//! - **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so runs are reproducible without a
//!   `proptest-regressions` directory (which this harness ignores).
//! - **Case count** defaults to 64 and is configurable through
//!   [`test_runner::ProptestConfig::with_cases`].
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.sample(rng))
        }
    }

    /// Uniform choice between boxed alternative strategies — the engine
    /// behind `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union from its (non-empty) alternatives.
        pub fn from_arms(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.arms.len() as u64) as usize;
            self.arms[pick].sample(rng)
        }
    }

    /// Boxes a strategy for storage in a [`Union`].
    pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(strategy)
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    (self.start as u128 + (rng.next_u64() as u128 % span)) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128) - (start as u128) + 1;
                    (start as u128 + (rng.next_u64() as u128 % span)) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            // Unit f64 in [0, 1) scaled into the half-open range.
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            // Unit f64 in [0, 1] (inclusive) scaled into the closed range.
            let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            self.start() + unit * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;

    /// An inclusive size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from a band.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeMap<K, V>`.
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut map = BTreeMap::new();
            // Duplicate keys overwrite, so the result can be smaller than
            // `target` but never smaller than 1 when `target >= 1`.
            for _ in 0..target {
                map.insert(self.keys.sample(rng), self.values.sample(rng));
            }
            map
        }
    }

    /// A `BTreeMap` strategy: up to `size` entries with keys from `keys`
    /// and values from `values`.
    pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding fair booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// A fair boolean.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = ::std::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> ::std::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Runner configuration, RNG, and failure plumbing.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a test case did not succeed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// A `prop_assume!` precondition failed; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An assumption rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic xoshiro256++ generator used for all sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the generator from a test's name so every run of the
        /// suite replays the same cases (no regression files needed).
        pub fn deterministic(test_name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform value in `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that samples inputs and runs the body repeatedly.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __done: u32 = 0;
            let mut __attempts: u32 = 0;
            while __done < __cfg.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __cfg.cases.saturating_mul(20).max(100),
                    "proptest: too many rejected cases in {}",
                    stringify!($name),
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __done += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest case #{} of {} failed: {}\ninputs: {:#?}",
                            __done + 1,
                            stringify!($name),
                            __msg,
                            ($(&$arg,)+),
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                concat!("assertion failed: ", stringify!($cond), ": {}"),
                format!($($fmt)+),
            )));
        }
    };
}

/// `assert_eq!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), __l, __r, format!($($fmt)+),
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            )));
        }
    }};
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::from_arms(::std::vec![
            $( $crate::strategy::boxed($arm) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Color {
        Red,
        Green,
        Blue(u8),
    }

    fn arb_color() -> impl Strategy<Value = Color> {
        prop_oneof![
            Just(Color::Red),
            Just(Color::Green),
            (0u8..200).prop_map(Color::Blue),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..10, b in 0.25f64..=0.75, c in any::<u64>()) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((0.25..=0.75).contains(&b));
            let _ = c;
        }

        #[test]
        fn oneof_and_map_work(color in arb_color(), flag in prop::bool::ANY) {
            if let Color::Blue(v) = color {
                prop_assert!(v < 200);
            }
            prop_assume!(flag || !flag);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u32..5, 2..=6),
            m in prop::collection::btree_map(0u32..100, 0.0f64..1.0, 1..10),
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            prop_assert!(!m.is_empty() && m.len() < 10);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(m.len(), 0);
        }
    }

    #[test]
    fn deterministic_rng_replays() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
