//! Offline vendored stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal serde-shaped (de)serialization layer. Instead of the real
//! serde's visitor architecture, everything goes through one generic
//! in-memory tree, [`Value`]: `Serialize` converts *to* a `Value`,
//! `Deserialize` converts *from* one, and `serde_json` (also vendored)
//! maps `Value` to and from JSON text. The `derive` feature re-exports the
//! vendored `serde_derive` proc-macros, which generate impls following the
//! real serde's externally-tagged conventions (newtype structs unwrap,
//! unit enum variants become strings, struct variants become
//! `{"Variant": {...}}` objects).
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The generic data-model tree all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer (serialized without a decimal point).
    UInt(u64),
    /// A negative integer (serialized without a decimal point).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Object(Vec<(String, Value)>),
}

/// A `Value::Null` with a `'static` address, for use as a default lookup
/// result.
pub const NULL_VALUE: Value = Value::Null;

impl Value {
    /// A short human name for the value's kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] does not match the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the generic data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the generic data model.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, found {}", got.kind())))
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match *value {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => return type_err("a non-negative integer", other),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match *value {
                    Value::Int(i) => i,
                    Value::UInt(u) if u <= i64::MAX as u64 => u as i64,
                    Value::Float(f)
                        if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
                    {
                        f as i64
                    }
                    ref other => return type_err("an integer", other),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Float(f) => Ok(f),
            Value::UInt(u) => Ok(u as f64),
            Value::Int(i) => Ok(i as f64),
            ref other => type_err("a number", other),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Bool(b) => Ok(b),
            ref other => type_err("a boolean", other),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(Error(format!("expected a one-character string, got {s:?}"))),
                }
            }
            other => type_err("a one-character string", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => type_err("a string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("an array", other),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_err("an object", other),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = [$(stringify!($t)),+].len();
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(Error(format!(
                        "expected an array of {LEN} elements, found {}",
                        items.len()
                    ))),
                    other => type_err("an array", other),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

// ---------------------------------------------------------------------------
// Support routines used by the generated derive code.
// ---------------------------------------------------------------------------

/// Views `value` as an object's field list (derive support).
pub fn de_object<'v>(value: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
    match value {
        Value::Object(pairs) => Ok(pairs),
        other => Err(Error(format!(
            "expected an object for {ty}, found {}",
            other.kind()
        ))),
    }
}

/// Views `value` as an array of exactly `len` elements (derive support).
pub fn de_array<'v>(value: &'v Value, len: usize, ty: &str) -> Result<&'v [Value], Error> {
    match value {
        Value::Array(items) if items.len() == len => Ok(items),
        Value::Array(items) => Err(Error(format!(
            "expected {len} elements for {ty}, found {}",
            items.len()
        ))),
        other => Err(Error(format!(
            "expected an array for {ty}, found {}",
            other.kind()
        ))),
    }
}

/// Looks up and deserializes one named field; a missing key deserializes
/// from `null` so `Option` fields tolerate omission (derive support).
pub fn de_field<T: Deserialize>(
    fields: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, Error> {
    let value = fields
        .iter()
        .find(|(k, _)| k == name)
        .map_or(&NULL_VALUE, |(_, v)| v);
    T::from_value(value).map_err(|e| Error(format!("field `{ty}.{name}`: {e}")))
}

/// Splits an externally-tagged enum value into `(variant_name, content)`:
/// a bare string is a unit variant (content `null`), a single-key object is
/// a data-carrying variant (derive support).
pub fn de_variant<'v>(value: &'v Value, ty: &str) -> Result<(&'v str, &'v Value), Error> {
    match value {
        Value::String(tag) => Ok((tag, &NULL_VALUE)),
        Value::Object(pairs) if pairs.len() == 1 => Ok((&pairs[0].0, &pairs[0].1)),
        other => Err(Error(format!(
            "expected a variant tag for {ty}, found {}",
            other.kind()
        ))),
    }
}

/// Error for an unknown enum variant tag (derive support).
pub fn unknown_variant(tag: &str, ty: &str) -> Error {
    Error(format!("unknown variant `{tag}` for {ty}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&7u64.to_value()), Ok(7));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&String::from("hi").to_value()),
            Ok(String::from("hi"))
        );
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()),
            Ok(vec![1, 2])
        );
    }

    #[test]
    fn integer_range_checks() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert_eq!(u64::from_value(&Value::Float(3.0)), Ok(3));
        assert!(u64::from_value(&Value::Float(3.5)).is_err());
    }

    #[test]
    fn map_and_tuple_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert(String::from("a"), 1.5f64);
        assert_eq!(BTreeMap::<String, f64>::from_value(&m.to_value()), Ok(m));
        let t = (1u32, 2.5f64);
        assert_eq!(<(u32, f64)>::from_value(&t.to_value()), Ok(t));
    }

    #[test]
    fn missing_field_is_null_for_option() {
        let fields: Vec<(String, Value)> = vec![];
        let v: Option<f64> = de_field(&fields, "ratio", "T").unwrap();
        assert_eq!(v, None);
        assert!(de_field::<f64>(&fields, "ratio", "T").is_err());
    }

    #[test]
    fn variant_splitting() {
        let (tag, content) = de_variant(&Value::String("St1".into()), "PolicySpec").unwrap();
        assert_eq!((tag, content), ("St1", &Value::Null));
        let obj = Value::Object(vec![("Sw".into(), Value::UInt(3))]);
        let (tag, content) = de_variant(&obj, "PolicySpec").unwrap();
        assert_eq!((tag, content), ("Sw", &Value::UInt(3)));
    }
}
