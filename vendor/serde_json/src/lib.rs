//! Offline vendored stand-in for `serde_json`.
//!
//! Maps JSON text to and from the vendored `serde::Value` data model: a
//! recursive-descent parser ([`from_str`]) and compact/pretty printers
//! ([`to_string`], [`to_string_pretty`]). Covers the full JSON grammar
//! (escapes, surrogate pairs, exponent notation); numbers parse to
//! integers when they are written without a fraction or exponent.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by JSON parsing or (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep floats recognizably floating-point, as serde_json does.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Infinity
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, v, d| {
                write_value(o, v, indent, d)
            })
        }
        Value::Object(pairs) => write_seq(
            out,
            pairs.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, v), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, v, indent, d);
            },
        ),
    }
}

fn write_seq<I, T>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(brackets.0);
    let len = items.len();
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a \uXXXX low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // parse_hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unexpected end"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn parses_profile_maps() {
        let m: BTreeMap<String, f64> =
            from_str(r#"{ "r.0": 4.0, "w.01": 2, "r.012": 0.5 }"#).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m["r.0"], 4.0);
        assert_eq!(m["w.01"], 2.0);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(from_str::<BTreeMap<String, f64>>("{ \"a\": }").is_err());
        assert!(from_str::<BTreeMap<String, f64>>("{} trailing").is_err());
        assert!(from_str::<BTreeMap<String, f64>>("{ \"a\": \"x\" }").is_err());
    }

    #[test]
    fn value_roundtrips_through_text() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("q\"uo\\te\n".into())),
            ("count".into(), Value::UInt(12)),
            ("neg".into(), Value::Int(-3)),
            ("ratio".into(), Value::Float(0.25)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "items".into(),
                Value::Array(vec![Value::UInt(1), Value::Float(2.5)]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for text in [
            to_string(&Wrapper(v.clone())).unwrap(),
            to_string_pretty(&Wrapper(v.clone())).unwrap(),
        ] {
            let mut p = Parser {
                bytes: text.as_bytes(),
                pos: 0,
            };
            p.skip_ws();
            let back = p.parse_value().unwrap();
            assert_eq!(back, v, "text was: {text}");
        }
    }

    #[test]
    fn floats_stay_floats_in_text() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&7u64).unwrap(), "7");
    }

    #[test]
    fn unicode_escapes() {
        let s: Vec<String> = from_str(r#"["é", "😀"]"#).unwrap();
        assert_eq!(s, vec!["é".to_string(), "😀".to_string()]);
    }

    struct Wrapper(Value);
    impl Serialize for Wrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
