//! Offline vendored stand-in for the `criterion` benchmark harness.
//!
//! The build container cannot fetch crates, so this crate provides the
//! subset of the criterion API the workspace's `benches/` use — groups,
//! throughput annotation, parameterized ids, `Bencher::iter` — with a
//! deliberately simple measurement loop: each benchmark runs a short
//! fixed-iteration warm-up and timed pass and prints a mean per-iteration
//! time. There is no statistical machinery; the point is that `cargo bench`
//! (and `cargo clippy --all-targets`) build and run.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation attached to a benchmark group (reported verbatim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id that is only a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to every benchmark closure; [`Bencher::iter`] runs the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up pass (untimed).
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the sample count (accepted for API compatibility; the stub
    /// always runs a fixed short loop).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, self.throughput, input, f);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        self.criterion
            .run_one(&full, self.throughput, &(), |b, ()| f(b));
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// One completed measurement, kept for the optional JSON report.
struct Measurement {
    name: String,
    ns_per_iter: u128,
    elements: Option<u64>,
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    iters: u64,
    measurements: Vec<Measurement>,
}

impl Criterion {
    fn run_one<I: ?Sized, F>(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters: self.iters.max(1),
            elapsed: Duration::ZERO,
        };
        f(&mut bencher, input);
        let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters);
        let rate = match throughput {
            Some(Throughput::Elements(n)) if per_iter > 0 => {
                format!(" ({:.1} Melem/s)", n as f64 * 1e3 / per_iter as f64)
            }
            _ => String::new(),
        };
        println!("bench {name:<60} {per_iter:>12} ns/iter{rate}");
        self.measurements.push(Measurement {
            name: name.to_string(),
            ns_per_iter: per_iter,
            elements: match throughput {
                Some(Throughput::Elements(n)) => Some(n),
                _ => None,
            },
        });
    }

    /// Renders the recorded measurements as a JSON array (names are
    /// escaped for quotes and backslashes; ids never need more).
    fn json_report(&self) -> String {
        let rows: Vec<String> = self
            .measurements
            .iter()
            .map(|m| {
                let name: String = m
                    .name
                    .chars()
                    .flat_map(|c| match c {
                        '"' | '\\' => vec!['\\', c],
                        _ => vec![c],
                    })
                    .collect();
                let elements = m
                    .elements
                    .map_or_else(|| "null".to_string(), |n| n.to_string());
                format!(
                    "  {{\"name\": \"{name}\", \"ns_per_iter\": {}, \"elements\": {elements}}}",
                    m.ns_per_iter
                )
            })
            .collect();
        format!("[\n{}\n]\n", rows.join(",\n"))
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, None, &(), |b, ()| f(b));
        self
    }
}

/// Entry point used by the `criterion_main!` expansion.
///
/// When the `CRITERION_JSON` environment variable names a path, the
/// per-benchmark results are additionally written there as a JSON array
/// of `{name, ns_per_iter, elements}` objects — CI uploads that file as
/// the bench artifact.
pub fn runner(groups: &[&dyn Fn(&mut Criterion)]) {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    let mut criterion = Criterion {
        iters: 3,
        measurements: Vec::new(),
    };
    for group in groups {
        group(&mut criterion);
    }
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            match std::fs::write(&path, criterion.json_report()) {
                Ok(()) => println!("bench results written to {path}"),
                Err(err) => eprintln!("could not write {path}: {err}"),
            }
        }
    }
}

/// Declares a benchmark group: `criterion_group!(name, fn_a, fn_b, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main` function over one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::runner(&[$(&$group),+]);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion {
            iters: 2,
            measurements: Vec::new(),
        };
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(10)).sample_size(5);
            g.bench_with_input(BenchmarkId::new("f", 1), &3u32, |b, &x| {
                b.iter(|| x * 2);
                runs += 1;
            });
            g.bench_function("plain", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("p=0.5").id, "p=0.5");
    }

    #[test]
    fn json_report_escapes_and_lists_every_row() {
        let c = Criterion {
            iters: 1,
            measurements: vec![
                Measurement {
                    name: "g/\"quoted\"".to_string(),
                    ns_per_iter: 42,
                    elements: Some(7),
                },
                Measurement {
                    name: "g/plain".to_string(),
                    ns_per_iter: 9,
                    elements: None,
                },
            ],
        };
        let json = c.json_report();
        assert!(json.contains("\"name\": \"g/\\\"quoted\\\"\""));
        assert!(json.contains("\"ns_per_iter\": 42"));
        assert!(json.contains("\"elements\": 7"));
        assert!(json.contains("\"elements\": null"));
        assert!(json.starts_with("[\n") && json.ends_with("\n]\n"));
    }
}
