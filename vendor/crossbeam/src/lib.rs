//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! Only [`scope`] is provided — the one entry point this workspace uses —
//! implemented on top of `std::thread::scope` (stable since Rust 1.63,
//! which post-dates crossbeam's scoped threads and makes the real crate
//! unnecessary here). Panics in spawned threads propagate on join, exactly
//! like `crossbeam::scope(..).expect(..)` behaves at the call sites.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::any::Any;

/// A scope handle passed to [`scope`]'s closure; lets it spawn threads that
/// may borrow from the enclosing stack frame.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again (the
    /// crossbeam signature) so nested spawns are possible.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which borrowed-data threads can be spawned; all
/// spawned threads are joined before this returns.
///
/// Matches crossbeam's `Result`-returning signature. A panic in a spawned
/// thread propagates when the scope joins it (std behaviour), so the `Err`
/// arm is never constructed — call sites that `.expect(..)` observe the
/// same outcomes as with the real crate.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_can_borrow_and_mutate() {
        let mut slots = [0u32; 4];
        super::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *slot = i as u32 + 1;
                });
            }
        })
        .expect("no worker panicked");
        assert_eq!(slots, [1, 2, 3, 4]);
    }

    #[test]
    fn scope_returns_closure_value() {
        let out = super::scope(|_| 7).expect("no panic");
        assert_eq!(out, 7);
    }
}
