//! `mdr-verify` — run the bounded model checker across the policy roster.
//!
//! ```text
//! mdr-verify [--depth N] [--policy SPEC] [--lossless-only]
//!            [--faults [DEPTH]] [--arq [DEPTH]]
//! ```
//!
//! Explores every interleaving of arrivals, deliveries and losses to the
//! requested depth for each roster policy, printing one row per run.
//! With `--faults`, two more passes per policy additionally interleave
//! disconnections, volatile/stable MC crashes and the reconnection
//! handshake — once bare, and once with the ARQ transport's timeout
//! firings, budget-bounded retransmissions and escalations woven in; the
//! optional `DEPTH` bounds those passes separately (faulty exploration is
//! denser — epoch bumps defeat cross-fault dedup — so it defaults to
//! `min(depth, 12)`). With `--arq`, one pass per policy explores the ARQ
//! transitions alone. Exits non-zero if any run finds a counterexample.

use mdr_verify::{check, default_roster, CheckConfig};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: mdr-verify [--depth N] [--policy sw1|sw3|sw5|st1|st2|t1|t2] [--lossless-only] [--faults [DEPTH]] [--arq [DEPTH]]"
    );
    std::process::exit(2);
}

/// One checker run, printed as a table row; returns (states, verified).
fn run_one(config: &CheckConfig, mode: &str) -> (usize, bool) {
    let report = check(config);
    let result = if report.verified() {
        "ok".to_string()
    } else {
        format!("VIOLATION: {}", report.violations[0])
    };
    println!(
        "{:<12} {:<9} {:>12} {:>12}  {result}",
        report.policy.to_string(),
        mode,
        report.states,
        report.transitions
    );
    (report.states, report.verified())
}

fn main() -> ExitCode {
    let mut depth = 18usize;
    let mut only_policy = None;
    let mut lossless_only = false;
    let mut faults: Option<usize> = None;
    let mut arq: Option<usize> = None;

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--depth" => {
                let Some(value) = args.next() else { usage() };
                let Ok(value) = value.parse() else { usage() };
                depth = value;
            }
            "--policy" => {
                let Some(value) = args.next() else { usage() };
                only_policy = Some(value);
            }
            "--lossless-only" => lossless_only = true,
            "--faults" => {
                // Optional depth operand: `--faults 10` or bare `--faults`.
                match args.peek().and_then(|v| v.parse().ok()) {
                    Some(value) => {
                        args.next();
                        faults = Some(value);
                    }
                    None => faults = Some(depth.min(12)),
                }
            }
            "--arq" => {
                // Optional depth operand: `--arq 10` or bare `--arq`.
                match args.peek().and_then(|v| v.parse().ok()) {
                    Some(value) => {
                        args.next();
                        arq = Some(value);
                    }
                    None => arq = Some(depth.min(12)),
                }
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let roster: Vec<_> = default_roster()
        .into_iter()
        .filter(|spec| match &only_policy {
            None => true,
            Some(name) => spec
                .to_string()
                .to_lowercase()
                .replace(['(', ')', ' ', '='], "")
                .starts_with(&name.to_lowercase()),
        })
        .collect();
    if roster.is_empty() {
        usage();
    }

    println!(
        "{:<12} {:<9} {:>12} {:>12}  result",
        "policy", "mode", "states", "transitions"
    );
    let mut total_states = 0usize;
    let mut failed = false;
    for policy in roster {
        let modes: &[bool] = if lossless_only {
            &[false]
        } else {
            &[false, true]
        };
        for &lossy in modes {
            let mut config = CheckConfig::new(policy, depth);
            if lossy {
                config = config.lossy();
            }
            let (states, ok) = run_one(&config, if lossy { "lossy" } else { "lossless" });
            total_states += states;
            failed |= !ok;
        }
        if let Some(arq_depth) = arq {
            let config = CheckConfig::new(policy, arq_depth).arq();
            let (states, ok) = run_one(&config, "arq");
            total_states += states;
            failed |= !ok;
        }
        if let Some(fault_depth) = faults {
            let config = CheckConfig::new(policy, fault_depth).faulty();
            let (states, ok) = run_one(&config, "faulty");
            total_states += states;
            failed |= !ok;
            let config = CheckConfig::new(policy, fault_depth).faulty().arq();
            let (states, ok) = run_one(&config, "arq+faulty");
            total_states += states;
            failed |= !ok;
        }
    }
    println!("total deduplicated states at depth {depth}: {total_states}");
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
