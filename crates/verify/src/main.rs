//! `mdr-verify` — run the bounded model checker across the policy roster.
//!
//! ```text
//! mdr-verify [--depth N] [--policy SPEC] [--lossless-only]
//!            [--faults [DEPTH]] [--arq [DEPTH]] [--handoff [DEPTH]]
//!            [--kill-suite]
//! ```
//!
//! Explores every interleaving of arrivals, deliveries and losses to the
//! requested depth for each roster policy, printing one row per run.
//! With `--faults`, two more passes per policy additionally interleave
//! disconnections, volatile/stable MC crashes and the reconnection
//! handshake — once bare, and once with the ARQ transport's timeout
//! firings, budget-bounded retransmissions and escalations woven in; the
//! optional `DEPTH` bounds those passes separately (faulty exploration is
//! denser — epoch bumps defeat cross-fault dedup — so it defaults to
//! `min(depth, 12)`). With `--arq`, one pass per policy explores the ARQ
//! transitions alone. With `--handoff`, the multi-cell mobility layer is
//! model-checked separately: migration interleaved with backbone loss,
//! duplicated/reordered commits, deadline aborts and crash/reconnect
//! cycles, judged against single-owner-across-cells, no-lost-window and
//! the handoff billing identity (see `docs/topology.md`). Exits non-zero
//! if any run finds a counterexample.
//!
//! `--kill-suite` instead runs the fast mutation-detection battery that
//! `cargo xtask mutate` uses to judge mutants (see
//! `docs/static-analysis.md`): clean checks that must verify, injected
//! faults that must be *caught* (so a weakened invariant fails the
//! suite, not just a broken protocol), and the protocol-vs-reference
//! cost-equivalence sweep.

use mdr_core::{run_spec, CostModel, PolicySpec, Schedule};
use mdr_sim::Simulation;
use mdr_verify::{
    check, check_handoff, default_roster, handoff_sweep, CheckConfig, Fault, HandoffConfig,
    HandoffFault, HandoffInvariant, Invariant,
};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: mdr-verify [--depth N] [--policy sw1|sw3|sw5|st1|st2|t1|t2] [--lossless-only] [--faults [DEPTH]] [--arq [DEPTH]] [--handoff [DEPTH]] [--kill-suite]"
    );
    std::process::exit(2);
}

/// The checker modes a kill-suite entry can run in.
#[derive(Clone, Copy)]
enum SuiteMode {
    /// Arrivals/deliveries (+losses) only.
    Plain,
    /// ARQ transport transitions woven in.
    Arq,
    /// Disconnection/crash/reconnection transitions woven in.
    Faulty,
}

/// One must-catch row: name, policy, seeded fault, checker mode, depth,
/// and the invariant expected to flag it (`None` = any violation).
type CatchCase = (
    &'static str,
    PolicySpec,
    Fault,
    SuiteMode,
    usize,
    Option<Invariant>,
);

/// The fast battery `cargo xtask mutate` runs against every mutant.
///
/// Three layers, every one of which must hold:
/// 1. *must-verify*: clean checks over representative policies — a
///    mutant that breaks the protocol or the checker's exploration
///    fails here;
/// 2. *must-catch*: seeded protocol faults whose detection is asserted,
///    including the expected invariant — a mutant that weakens an
///    invariant (the classic vacuous-checker failure) fails here even
///    though every clean check still passes;
/// 3. *equivalence*: the full simulator against the §3 reference policy
///    fold on fixed schedules, exact in the connection model — a mutant
///    that perturbs either cost ledger fails here.
fn kill_suite() -> ExitCode {
    let sw3 = PolicySpec::SlidingWindow { k: 3 };
    let sw1 = PolicySpec::SlidingWindow { k: 1 };
    let mut failed = false;
    let mut entry = |name: &str, ok: bool| {
        println!("{:<44} {}", name, if ok { "ok" } else { "FAILED" });
        failed |= !ok;
    };

    // Layer 1: must-verify.
    for (name, spec) in [
        ("verify sw3", sw3),
        ("verify st2", PolicySpec::St2),
        ("verify t2(2)", PolicySpec::T2 { m: 2 }),
    ] {
        let report = check(&CheckConfig::new(spec, 8));
        entry(name, report.verified() && report.states > 1);
    }
    entry(
        "verify sw3 lossy",
        check(&CheckConfig::new(sw3, 8).lossy()).verified(),
    );
    entry(
        "verify sw3 arq",
        check(&CheckConfig::new(sw3, 8).arq()).verified(),
    );
    entry(
        "verify sw3 faulty",
        check(&CheckConfig::new(sw3, 8).faulty()).verified(),
    );

    // Layer 2: must-catch (fault, mode, depth, expected invariant).
    let catches: &[CatchCase] = &[
        (
            "catch skip-allocation-handoff",
            sw3,
            Fault::SkipAllocationHandoff,
            SuiteMode::Plain,
            12,
            Some(Invariant::ReplicaAgreement),
        ),
        (
            "catch skip-window-handoff",
            sw3,
            Fault::SkipWindowHandoff,
            SuiteMode::Plain,
            12,
            Some(Invariant::SingleWindowOwner),
        ),
        (
            "catch drop-delete-request",
            sw1,
            Fault::DropDeleteRequest,
            SuiteMode::Plain,
            12,
            Some(Invariant::NoDeadlock),
        ),
        (
            "catch skip-ack-billing",
            sw3,
            Fault::SkipAckBilling,
            SuiteMode::Arq,
            10,
            Some(Invariant::LedgerEqualsReplay),
        ),
        (
            "catch free-retransmit",
            sw3,
            Fault::FreeRetransmit,
            SuiteMode::Arq,
            10,
            Some(Invariant::LedgerEqualsReplay),
        ),
        (
            "catch lie-about-replica",
            sw3,
            Fault::LieAboutReplicaOnReconnect,
            SuiteMode::Faulty,
            10,
            None,
        ),
    ];
    for &(name, spec, fault, mode, depth, expected) in catches {
        let mut config = CheckConfig::new(spec, depth).with_fault(fault);
        config = match mode {
            SuiteMode::Plain => config,
            SuiteMode::Arq => config.arq(),
            SuiteMode::Faulty => config.faulty(),
        };
        let report = check(&config);
        let caught = !report.verified()
            && match expected {
                None => true,
                Some(inv) => report
                    .violations
                    .first()
                    .is_some_and(|v| v.invariant == inv),
            };
        entry(name, caught);
    }

    // Layer 3: protocol-vs-reference equivalence on fixed schedules.
    let schedules = ["rrrwwwrrr", "rwrwrwrwrw", "wwwwwrrrrrwwwww", "r", "w"];
    let mut equivalent = true;
    for spec in PolicySpec::roster(&[1, 3, 5], &[2]) {
        for s in schedules {
            let Ok(sched) = s.parse::<Schedule>() else {
                equivalent = false;
                continue;
            };
            let report = Simulation::run_schedule(spec, &sched);
            let reference = run_spec(spec, &sched, CostModel::Connection);
            if report.counts != reference.counts {
                equivalent = false;
            }
            // Bit-exact on purpose (and bit-compared so the float-eq lint
            // holds): the connection-model ledger is integral counts.
            let exact =
                report.cost(CostModel::Connection).to_bits() == reference.total_cost.to_bits();
            let model = CostModel::message(0.3);
            let priced = run_spec(spec, &sched, model);
            let close = (report.cost(model) - priced.total_cost).abs() < 1e-9;
            if !(exact && close) {
                equivalent = false;
            }
        }
    }
    // Handoff layer: must-verify, then the seeded mutants that must be
    // caught by the expected invariant.
    entry(
        "verify handoff 3-cell faulty+ghosts",
        check_handoff(&HandoffConfig::new(3, 12).lossy().faulty().ghosts()).verified(),
    );
    let handoff_catches: &[(&str, HandoffConfig, &[HandoffInvariant])] = &[
        (
            "catch handoff skip-epoch-fence",
            HandoffConfig::new(3, 14)
                .faulty()
                .ghosts()
                .with_fault(HandoffFault::SkipEpochFence),
            &[
                HandoffInvariant::NoLostWindow,
                HandoffInvariant::SingleOwnerAcrossCells,
            ],
        ),
        (
            "catch handoff skip-rollback",
            HandoffConfig::new(2, 8)
                .faulty()
                .with_fault(HandoffFault::SkipRollback),
            &[HandoffInvariant::SingleOwnerAcrossCells],
        ),
        (
            "catch handoff commit-without-transfer",
            HandoffConfig::new(2, 8).with_fault(HandoffFault::CommitWithoutTransfer),
            &[HandoffInvariant::NoLostWindow],
        ),
        (
            "catch handoff skip-invalidation",
            HandoffConfig::new(3, 10).with_fault(HandoffFault::SkipInvalidation),
            &[HandoffInvariant::BillingIdentity],
        ),
        (
            "catch handoff free-leg",
            HandoffConfig::new(2, 6).with_fault(HandoffFault::FreeHandoffLeg),
            &[HandoffInvariant::BillingIdentity],
        ),
    ];
    for (name, config, expected) in handoff_catches {
        let report = check_handoff(config);
        let caught = !report.verified()
            && report
                .violations
                .first()
                .is_some_and(|v| expected.contains(&v.invariant));
        entry(name, caught);
    }

    entry("protocol equals reference on schedules", equivalent);

    // The Poisson path with the oracle on asserts step equivalence
    // internally; reaching here without a panic plus the exact request
    // count is the check.
    let report = Simulation::run_poisson(sw3, 0.4, 2_000, 11);
    entry("poisson oracle run", report.counts.total() == 2_000);

    if failed {
        println!("kill-suite: FAILED");
        ExitCode::FAILURE
    } else {
        println!("kill-suite: ok");
        ExitCode::SUCCESS
    }
}

/// One checker run, printed as a table row; returns (states, verified).
fn run_one(config: &CheckConfig, mode: &str) -> (usize, bool) {
    let report = check(config);
    let result = if report.verified() {
        "ok".to_string()
    } else {
        format!("VIOLATION: {}", report.violations[0])
    };
    println!(
        "{:<12} {:<9} {:>12} {:>12}  {result}",
        report.policy.to_string(),
        mode,
        report.states,
        report.transitions
    );
    (report.states, report.verified())
}

/// Runs the multi-cell handoff sweep, printed as a table; returns
/// success iff every run verified.
fn run_handoff(depth: usize) -> ExitCode {
    println!(
        "{:<12} {:<24} {:>12} {:>12}  result",
        "cells", "mode", "states", "transitions"
    );
    let mut total_states = 0usize;
    let mut failed = false;
    for report in handoff_sweep(depth) {
        let mode = match (report.lossy, report.faulty, report.ghosts) {
            (false, false, false) => "migrate",
            (true, false, false) => "lossy",
            (false, true, false) => "faulty",
            (false, true, true) => "faulty+ghosts",
            (true, true, true) => "lossy+faulty+ghosts",
            _ => "mixed",
        };
        let result = if report.verified() {
            "ok".to_string()
        } else {
            format!("VIOLATION: {}", report.violations[0])
        };
        println!(
            "{:<12} {:<24} {:>12} {:>12}  {result}",
            report.cells, mode, report.states, report.transitions
        );
        total_states += report.states;
        failed |= !report.verified();
    }
    println!("total deduplicated handoff states at depth {depth}: {total_states}");
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mut depth = 18usize;
    let mut only_policy = None;
    let mut lossless_only = false;
    let mut faults: Option<usize> = None;
    let mut arq: Option<usize> = None;

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--kill-suite" => return kill_suite(),
            "--handoff" => {
                // Optional depth operand: `--handoff 12` or bare
                // `--handoff` (denser than the wireless checker — the
                // flight/ghost product defeats dedup — so it defaults
                // lower).
                let handoff_depth = match args.peek().and_then(|v| v.parse().ok()) {
                    Some(value) => {
                        args.next();
                        value
                    }
                    None => depth.min(14),
                };
                return run_handoff(handoff_depth);
            }
            "--depth" => {
                let Some(value) = args.next() else { usage() };
                let Ok(value) = value.parse() else { usage() };
                depth = value;
            }
            "--policy" => {
                let Some(value) = args.next() else { usage() };
                only_policy = Some(value);
            }
            "--lossless-only" => lossless_only = true,
            "--faults" => {
                // Optional depth operand: `--faults 10` or bare `--faults`.
                match args.peek().and_then(|v| v.parse().ok()) {
                    Some(value) => {
                        args.next();
                        faults = Some(value);
                    }
                    None => faults = Some(depth.min(12)),
                }
            }
            "--arq" => {
                // Optional depth operand: `--arq 10` or bare `--arq`.
                match args.peek().and_then(|v| v.parse().ok()) {
                    Some(value) => {
                        args.next();
                        arq = Some(value);
                    }
                    None => arq = Some(depth.min(12)),
                }
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let roster: Vec<_> = default_roster()
        .into_iter()
        .filter(|spec| match &only_policy {
            None => true,
            Some(name) => spec
                .to_string()
                .to_lowercase()
                .replace(['(', ')', ' ', '='], "")
                .starts_with(&name.to_lowercase()),
        })
        .collect();
    if roster.is_empty() {
        usage();
    }

    println!(
        "{:<12} {:<9} {:>12} {:>12}  result",
        "policy", "mode", "states", "transitions"
    );
    let mut total_states = 0usize;
    let mut failed = false;
    for policy in roster {
        let modes: &[bool] = if lossless_only {
            &[false]
        } else {
            &[false, true]
        };
        for &lossy in modes {
            let mut config = CheckConfig::new(policy, depth);
            if lossy {
                config = config.lossy();
            }
            let (states, ok) = run_one(&config, if lossy { "lossy" } else { "lossless" });
            total_states += states;
            failed |= !ok;
        }
        if let Some(arq_depth) = arq {
            let config = CheckConfig::new(policy, arq_depth).arq();
            let (states, ok) = run_one(&config, "arq");
            total_states += states;
            failed |= !ok;
        }
        if let Some(fault_depth) = faults {
            let config = CheckConfig::new(policy, fault_depth).faulty();
            let (states, ok) = run_one(&config, "faulty");
            total_states += states;
            failed |= !ok;
            let config = CheckConfig::new(policy, fault_depth).faulty().arq();
            let (states, ok) = run_one(&config, "arq+faulty");
            total_states += states;
            failed |= !ok;
        }
    }
    println!("total deduplicated states at depth {depth}: {total_states}");
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
