//! The bounded model checker: exhaustive DFS over every interleaving of
//! request arrivals, message deliveries and link-loss events, with
//! state-hash deduplication.
//!
//! The state space is the product of the [`ProtocolState`] transition
//! relation (both nodes, the wire, the ledger) with the arrival queue and
//! the billing counters. Transitions:
//!
//! * **arrival at the MC** — a read arrives: begins service immediately if
//!   the protocol is idle, otherwise queues FIFO (§3 serialization);
//! * **arrival at the SC** — a write arrives, likewise;
//! * **message delivery** — the in-flight envelope reaches its endpoint;
//! * **message loss + ARQ retransmit** (lossy mode) — a transmission
//!   attempt is lost and billed again; the protocol state is unchanged,
//!   which is exactly the §3 claim that loss inflates the bill without
//!   changing the actions.
//!
//! Every reached state passes the full [`invariants`](crate::invariants)
//! suite. Deduplication merges states with identical protocol
//! configuration, queue and bill: the abstract policy's replay state is a
//! function of the node states for every family in the paper (window
//! contents for SWk, streak counters for T1m/T2m, nothing for the statics),
//! so merging is sound for the ledger invariant too.

use crate::invariants::{check_state, StateView, Violation};
use mdr_core::{Action, CostModel, PolicySpec, Request};
use mdr_sim::{MessageClass, ProtocolState, StepOutcome, WireMessage};
use std::collections::{HashSet, VecDeque};

/// Deliberate protocol mutations for the checker's self-test: each fault is
/// seeded into in-flight messages and must be caught by an invariant (never
/// by a crash), demonstrating the suite has teeth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Strip the §4 save-the-copy indication (and the piggybacked window)
    /// from allocating data responses: the SC commits to propagate but the
    /// MC never caches.
    SkipAllocationHandoff,
    /// Strip the window from deallocating MC → SC delete-requests: the
    /// replica drops but the window hand-off is skipped, leaving no owner.
    SkipWindowHandoff,
    /// Silently discard an in-flight delete-request (an unrecovered loss,
    /// as if the link-layer ARQ were broken).
    DropDeleteRequest,
}

/// One bounded-exploration job: a policy, a depth bound, and the modes.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// The policy family to explore.
    pub policy: PolicySpec,
    /// Exploration depth: number of transitions along any path.
    pub depth: usize,
    /// Whether loss + ARQ retransmit transitions are explored.
    pub lossy: bool,
    /// Cost models under which every quiescent ledger is priced (§5/§6).
    pub models: Vec<CostModel>,
    /// Bound on the FIFO arrival queue (arrivals beyond it are not
    /// explored; §3 serialization makes longer queues redundant — service
    /// order, not arrival time, determines cost).
    pub max_pending: usize,
    /// Maximum loss events explored along one path (lossy mode).
    pub max_losses: u8,
    /// Optional seeded mutation (checker self-test).
    pub fault: Option<Fault>,
}

impl CheckConfig {
    /// A lossless exploration of `policy` to `depth`, pricing under both
    /// cost models (connection, and message at ω = ½).
    pub fn new(policy: PolicySpec, depth: usize) -> Self {
        CheckConfig {
            policy,
            depth,
            lossy: false,
            models: vec![CostModel::Connection, CostModel::message(0.5)],
            max_pending: 2,
            max_losses: 2,
            fault: None,
        }
    }

    /// Enables loss + ARQ retransmit transitions.
    #[must_use]
    pub fn lossy(mut self) -> Self {
        self.lossy = true;
        self
    }

    /// Seeds a deliberate protocol mutation.
    #[must_use]
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// What one bounded exploration found.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// The explored policy.
    pub policy: PolicySpec,
    /// The depth bound used.
    pub depth: usize,
    /// Whether loss transitions were explored.
    pub lossy: bool,
    /// Deduplicated states reached (including the initial state).
    pub states: usize,
    /// Transitions applied (including ones into already-seen states).
    pub transitions: usize,
    /// Counterexamples found; empty means the run verified.
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// Whether the exploration finished without a counterexample.
    pub fn verified(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The full checker state: protocol configuration × arrival queue ×
/// billing counters. Equality/hashing over all of it drives deduplication.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    protocol: ProtocolState,
    pending: VecDeque<Request>,
    billed_data: u64,
    billed_control: u64,
    retrans_data: u64,
    retrans_control: u64,
    losses_left: u8,
}

impl State {
    fn initial(config: &CheckConfig) -> Self {
        State {
            protocol: ProtocolState::new(config.policy),
            pending: VecDeque::new(),
            billed_data: 0,
            billed_control: 0,
            retrans_data: 0,
            retrans_control: 0,
            losses_left: config.max_losses,
        }
    }

    fn bill(&mut self, class: MessageClass) {
        match class {
            MessageClass::Data => self.billed_data += 1,
            MessageClass::Control => self.billed_control += 1,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transition {
    Arrive(Request),
    Deliver,
    Lose,
}

fn enabled(config: &CheckConfig, state: &State) -> Vec<Transition> {
    let mut transitions = Vec::with_capacity(4);
    if !state.protocol.wire().is_empty() {
        transitions.push(Transition::Deliver);
        if config.lossy && state.losses_left > 0 {
            transitions.push(Transition::Lose);
        }
    }
    if state.protocol.idle() || state.pending.len() < config.max_pending {
        transitions.push(Transition::Arrive(Request::Read));
        transitions.push(Transition::Arrive(Request::Write));
    }
    transitions
}

/// Applies `transition`, appending served requests to `schedule` and
/// completed actions to `actions`; returns how many entries each gained so
/// the DFS can backtrack.
fn apply(
    config: &CheckConfig,
    state: &mut State,
    transition: Transition,
    schedule: &mut Vec<Request>,
    actions: &mut Vec<Action>,
) -> (usize, usize) {
    let (mut served, mut completed) = (0, 0);
    match transition {
        Transition::Arrive(request) => {
            if state.protocol.idle() {
                debug_assert!(state.pending.is_empty(), "queue drains at completion");
                schedule.push(request);
                served += 1;
                match state.protocol.submit(request) {
                    StepOutcome::Completed(action) => {
                        actions.push(action);
                        completed += 1;
                    }
                    StepOutcome::Sent(envelope) => state.bill(envelope.message.class()),
                }
            } else {
                state.pending.push_back(request);
            }
        }
        Transition::Deliver => match state.protocol.deliver(0) {
            StepOutcome::Sent(envelope) => state.bill(envelope.message.class()),
            StepOutcome::Completed(action) => {
                actions.push(action);
                completed += 1;
                // Drain the queue exactly as the event loop does: inline
                // completions must not stall it.
                while state.protocol.idle() {
                    let Some(next) = state.pending.pop_front() else {
                        break;
                    };
                    schedule.push(next);
                    served += 1;
                    match state.protocol.submit(next) {
                        StepOutcome::Completed(action) => {
                            actions.push(action);
                            completed += 1;
                        }
                        StepOutcome::Sent(envelope) => state.bill(envelope.message.class()),
                    }
                }
            }
        },
        Transition::Lose => {
            debug_assert!(state.losses_left > 0);
            state.losses_left -= 1;
            let class = state.protocol.wire()[0].message.class();
            state.bill(class);
            match class {
                MessageClass::Data => state.retrans_data += 1,
                MessageClass::Control => state.retrans_control += 1,
            }
        }
    }
    inject_fault(config, state);
    (served, completed)
}

/// Seeds the configured fault into the in-flight message, if it matches.
fn inject_fault(config: &CheckConfig, state: &mut State) {
    let Some(fault) = config.fault else { return };
    if state.protocol.wire().is_empty() {
        return;
    }
    match fault {
        Fault::SkipAllocationHandoff => state.protocol.tamper_in_flight(0, |envelope| {
            if let WireMessage::DataResponse {
                allocate, window, ..
            } = &mut envelope.message
            {
                *allocate = false;
                *window = None;
            }
        }),
        Fault::SkipWindowHandoff => state.protocol.tamper_in_flight(0, |envelope| {
            if let WireMessage::DeleteRequest { window } = &mut envelope.message {
                *window = None;
            }
        }),
        Fault::DropDeleteRequest => {
            if matches!(
                state.protocol.wire()[0].message,
                WireMessage::DeleteRequest { .. }
            ) {
                let _ = state.protocol.drop_in_flight(0);
            }
        }
    }
}

/// Runs one bounded exploration.
pub fn check(config: &CheckConfig) -> CheckReport {
    let mut report = CheckReport {
        policy: config.policy,
        depth: config.depth,
        lossy: config.lossy,
        states: 1,
        transitions: 0,
        violations: Vec::new(),
    };
    let initial = State::initial(config);
    let mut seen = HashSet::new();
    let mut schedule = Vec::new();
    let mut actions = Vec::new();
    verify_state(config, &initial, &schedule, &actions, &mut report);
    seen.insert(initial.clone());
    dfs(
        config,
        &initial,
        0,
        &mut seen,
        &mut schedule,
        &mut actions,
        &mut report,
    );
    report
}

fn verify_state(
    config: &CheckConfig,
    state: &State,
    schedule: &[Request],
    actions: &[Action],
    report: &mut CheckReport,
) {
    let view = StateView {
        protocol: &state.protocol,
        schedule,
        actions,
        billed_data: state.billed_data,
        billed_control: state.billed_control,
        retrans_data: state.retrans_data,
        retrans_control: state.retrans_control,
        models: &config.models,
    };
    if let Err(violation) = check_state(&view) {
        report.violations.push(violation);
    }
}

fn dfs(
    config: &CheckConfig,
    state: &State,
    depth: usize,
    seen: &mut HashSet<State>,
    schedule: &mut Vec<Request>,
    actions: &mut Vec<Action>,
    report: &mut CheckReport,
) {
    if depth == config.depth || !report.violations.is_empty() {
        return;
    }
    for transition in enabled(config, state) {
        let mut child = state.clone();
        let (served, completed) = apply(config, &mut child, transition, schedule, actions);
        report.transitions += 1;
        verify_state(config, &child, schedule, actions, report);
        if report.violations.is_empty() && seen.insert(child.clone()) {
            report.states += 1;
            dfs(config, &child, depth + 1, seen, schedule, actions, report);
        }
        schedule.truncate(schedule.len() - served);
        actions.truncate(actions.len() - completed);
        if !report.violations.is_empty() {
            return;
        }
    }
}

/// The acceptance roster: the policy families the paper analyzes —
/// SW1 (§4's optimized write), SWk for k ∈ {3, 5}, the statics ST1/ST2
/// (§2), and the competitive statics T1m/T2m (§7.1).
pub fn default_roster() -> Vec<PolicySpec> {
    vec![
        PolicySpec::SlidingWindow { k: 1 },
        PolicySpec::SlidingWindow { k: 3 },
        PolicySpec::SlidingWindow { k: 5 },
        PolicySpec::St1,
        PolicySpec::St2,
        PolicySpec::T1 { m: 2 },
        PolicySpec::T2 { m: 2 },
    ]
}

/// Explores every roster policy, lossless and lossy, to `depth`; returns
/// one report per run.
pub fn sweep(depth: usize) -> Vec<CheckReport> {
    let mut reports = Vec::new();
    for policy in default_roster() {
        reports.push(check(&CheckConfig::new(policy, depth)));
        reports.push(check(&CheckConfig::new(policy, depth).lossy()));
    }
    reports
}
