//! The bounded model checker: exhaustive DFS over every interleaving of
//! request arrivals, message deliveries, link-loss events and — in faulty
//! mode — disconnections, MC crashes and reconnection handshakes, with
//! state-hash deduplication.
//!
//! The state space is the product of the [`ProtocolState`] transition
//! relation (both nodes, the wire, the ledger) with the arrival queue and
//! the billing counters. Transitions:
//!
//! * **arrival at the MC** — a read arrives: begins service immediately if
//!   the protocol is idle, otherwise queues FIFO (§3 serialization);
//! * **arrival at the SC** — a write arrives, likewise;
//! * **message delivery** — the in-flight envelope reaches its endpoint;
//! * **message loss + ARQ retransmit** (lossy mode) — a transmission
//!   attempt is lost and billed again; the protocol state is unchanged,
//!   which is exactly the §3 claim that loss inflates the bill without
//!   changing the actions;
//! * **retransmission timeout** (ARQ mode) — the sender's retry timer
//!   fires: while the per-exchange retry budget lasts, the attempt is
//!   retransmitted and billed again (as a loss above, but bounded); once
//!   the budget is exhausted the timeout *escalates* to a declared
//!   partition — the exchange rolls back exactly as under a doze and is
//!   retried under the new epoch. ARQ mode also bills one control-class
//!   acknowledgement per completed exchange and per reconciliation,
//!   mirroring the simulator's transport;
//! * **doze** (faulty mode) — the link drops and comes back: any exchange
//!   in flight is rolled back to its checkpoint and retried under the new
//!   epoch, its billed attempts written off as aborted;
//! * **MC crash, volatile or stable** (faulty mode) — as a doze, but the
//!   aborted request parks in a retry slot while the reconnection
//!   handshake (`Reconnect`/`ReconnectAck`) re-validates the replica; a
//!   volatile crash additionally destroys the MC's replica and
//!   window/streak bookkeeping, which the ledger invariant replays via
//!   [`on_replica_lost`](mdr_core::AllocationPolicy::on_replica_lost).
//!
//! Every reached state passes the full [`invariants`](crate::invariants)
//! suite. Deduplication merges states with identical protocol
//! configuration, queue, retry slot and bill: the abstract policy's replay
//! state is a function of the node states for every family in the paper
//! (window contents for SWk, streak counters for T1m/T2m, nothing for the
//! statics), so merging is sound for the ledger invariant too.

use crate::invariants::{check_state, StateView, Violation};
use mdr_core::{Action, CostModel, PolicySpec, Request};
use mdr_sim::{MessageClass, ProtocolState, StepOutcome, WireMessage};
use std::collections::{HashSet, VecDeque};

/// Deliberate protocol mutations for the checker's self-test: each fault is
/// seeded into in-flight messages and must be caught by an invariant (never
/// by a crash), demonstrating the suite has teeth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Strip the §4 save-the-copy indication (and the piggybacked window)
    /// from allocating data responses: the SC commits to propagate but the
    /// MC never caches.
    SkipAllocationHandoff,
    /// Strip the window from deallocating MC → SC delete-requests: the
    /// replica drops but the window hand-off is skipped, leaving no owner.
    SkipWindowHandoff,
    /// Silently discard an in-flight delete-request (an unrecovered loss,
    /// as if the link-layer ARQ were broken).
    DropDeleteRequest,
    /// Make the MC report its replica lost on reconnection even when it
    /// survived in stable storage: the SC retracts its commitment and
    /// reconstructs the window while the MC still holds both.
    LieAboutReplicaOnReconnect,
    /// Strip the re-shipped item from the reconnection acknowledgement
    /// (ST2 recovery): the SC stays committed to a replica the MC never
    /// re-caches.
    SkipRecoveryRefresh,
    /// Silently discard an in-flight reconnection announcement: the
    /// handshake dangles with nothing to advance it.
    DropReconnect,
    /// Deliver the completion acknowledgement without billing it (ARQ
    /// mode): the transport's ack traffic silently stops appearing in the
    /// per-class bill.
    SkipAckBilling,
    /// Retransmit on timeout without billing the repeated attempt (ARQ
    /// mode): retransmissions ride the wire for free.
    FreeRetransmit,
    /// Escalate an exhausted retry budget to a declared partition but
    /// "forget" the rollback: the aborted request is never resubmitted and
    /// an interrupted handshake is never restarted.
    EscalateWithoutRollback,
}

/// One bounded-exploration job: a policy, a depth bound, and the modes.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// The policy family to explore.
    pub policy: PolicySpec,
    /// Exploration depth: number of transitions along any path.
    pub depth: usize,
    /// Whether loss + ARQ retransmit transitions are explored.
    pub lossy: bool,
    /// Whether timeout-driven ARQ transitions are explored: bounded
    /// retransmissions, budget-exhaustion escalation to a declared
    /// partition, and billed completion acknowledgements.
    pub arq: bool,
    /// Retransmission attempts per exchange before a timeout escalates
    /// (ARQ mode).
    pub retry_budget: u8,
    /// Cost models under which every quiescent ledger is priced (§5/§6).
    pub models: Vec<CostModel>,
    /// Bound on the FIFO arrival queue (arrivals beyond it are not
    /// explored; §3 serialization makes longer queues redundant — service
    /// order, not arrival time, determines cost).
    pub max_pending: usize,
    /// Maximum loss events explored along one path (lossy mode).
    pub max_losses: u8,
    /// Maximum disconnection/crash events explored along one path (zero
    /// disables the fault transitions).
    pub max_faults: u8,
    /// Optional seeded mutation (checker self-test).
    pub fault: Option<Fault>,
}

impl CheckConfig {
    /// A lossless, fault-free exploration of `policy` to `depth`, pricing
    /// under both cost models (connection, and message at ω = ½).
    pub fn new(policy: PolicySpec, depth: usize) -> Self {
        CheckConfig {
            policy,
            depth,
            lossy: false,
            arq: false,
            retry_budget: 2,
            models: vec![CostModel::Connection, CostModel::message(0.5)],
            max_pending: 2,
            max_losses: 2,
            max_faults: 0,
            fault: None,
        }
    }

    /// Enables loss + ARQ retransmit transitions.
    #[must_use]
    pub fn lossy(mut self) -> Self {
        self.lossy = true;
        self
    }

    /// Enables timeout-driven ARQ transitions (bounded retransmission,
    /// escalation, billed acks), raising the per-path timeout bound far
    /// enough that budget exhaustion is reachable.
    #[must_use]
    pub fn arq(mut self) -> Self {
        self.arq = true;
        self.max_losses = self.max_losses.max(self.retry_budget + 1);
        self
    }

    /// Enables disconnection, crash and reconnection-handshake transitions
    /// (up to two faults per path).
    #[must_use]
    pub fn faulty(mut self) -> Self {
        self.max_faults = 2;
        self
    }

    /// Seeds a deliberate protocol mutation.
    #[must_use]
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// What one bounded exploration found.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// The explored policy.
    pub policy: PolicySpec,
    /// The depth bound used.
    pub depth: usize,
    /// Whether loss transitions were explored.
    pub lossy: bool,
    /// Whether timeout-driven ARQ transitions were explored.
    pub arq: bool,
    /// Whether disconnect/crash transitions were explored.
    pub faulty: bool,
    /// Deduplicated states reached (including the initial state).
    pub states: usize,
    /// Transitions applied (including ones into already-seen states).
    pub transitions: usize,
    /// Counterexamples found; empty means the run verified.
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// Whether the exploration finished without a counterexample.
    pub fn verified(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The full checker state: protocol configuration × arrival queue × retry
/// slot × billing counters. Equality/hashing over all of it drives
/// deduplication.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    protocol: ProtocolState,
    pending: VecDeque<Request>,
    /// A request whose exchange an MC crash aborted, awaiting resubmission
    /// once the reconnection handshake completes. It keeps its original
    /// schedule slot — the retry serves the same serialized request.
    retry: Option<Request>,
    billed_data: u64,
    billed_control: u64,
    retrans_data: u64,
    retrans_control: u64,
    /// Billed attempts that belonged to exchanges a fault later aborted.
    aborted_data: u64,
    aborted_control: u64,
    /// Billed reconnection-handshake attempts (serve no request).
    recon_data: u64,
    recon_control: u64,
    /// Billed transport acknowledgements (ARQ mode; always control-class).
    acks: u64,
    /// Transmission attempts of the envelope currently in flight (ARQ
    /// mode): 1 + the timeouts that have fired on it.
    attempts: u8,
    /// At-risk tally for the exchange in flight: attempts billed so far
    /// (and how many of them were ARQ retransmissions), moved to the
    /// aborted bucket if a fault kills the exchange, discharged at
    /// completion.
    exch_data: u64,
    exch_control: u64,
    exch_retrans_data: u64,
    exch_retrans_control: u64,
    losses_left: u8,
    faults_left: u8,
}

impl State {
    fn initial(config: &CheckConfig) -> Self {
        State {
            protocol: ProtocolState::new(config.policy),
            pending: VecDeque::new(),
            retry: None,
            billed_data: 0,
            billed_control: 0,
            retrans_data: 0,
            retrans_control: 0,
            aborted_data: 0,
            aborted_control: 0,
            recon_data: 0,
            recon_control: 0,
            acks: 0,
            attempts: 0,
            exch_data: 0,
            exch_control: 0,
            exch_retrans_data: 0,
            exch_retrans_control: 0,
            losses_left: config.max_losses,
            faults_left: config.max_faults,
        }
    }

    /// Bills one exchange transmission attempt (tracked at-risk until the
    /// exchange completes or aborts).
    fn bill_exchange(&mut self, class: MessageClass) {
        match class {
            MessageClass::Data => {
                self.billed_data += 1;
                self.exch_data += 1;
            }
            MessageClass::Control => {
                self.billed_control += 1;
                self.exch_control += 1;
            }
            // The backbone class never enters the MC/SC wireless protocol
            // this checker models (it has its own model in `handoff`).
            MessageClass::Invalidation => {
                unreachable!("invalidation-class traffic in the wireless checker")
            }
        }
    }

    /// Bills one reconnection-handshake transmission attempt.
    fn bill_recon(&mut self, class: MessageClass) {
        match class {
            MessageClass::Data => {
                self.billed_data += 1;
                self.recon_data += 1;
            }
            MessageClass::Control => {
                self.billed_control += 1;
                self.recon_control += 1;
            }
            // See `bill_exchange`: the backbone class never reaches here.
            MessageClass::Invalidation => {
                unreachable!("invalidation-class traffic in the wireless checker")
            }
        }
    }

    /// Bills a message in the right bucket for the protocol phase: the
    /// handshake's replies are handshake traffic, everything else belongs
    /// to the exchange in flight.
    fn bill_sent(&mut self, class: MessageClass) {
        if self.protocol.recovering() {
            self.bill_recon(class);
        } else {
            self.bill_exchange(class);
        }
    }

    /// Discharges the at-risk tally: the exchange completed, so its
    /// attempts are accounted for by the ledger (plus the retransmission
    /// counters, which already hold the lost ones).
    fn settle_exchange(&mut self) {
        self.exch_data = 0;
        self.exch_control = 0;
        self.exch_retrans_data = 0;
        self.exch_retrans_control = 0;
    }

    /// Writes the at-risk tally off as aborted: the retry will bill its own
    /// messages, and the lost attempts leave the retransmission counters
    /// (they are aborted traffic now, not ledger inflation).
    fn abort_exchange_billing(&mut self) {
        self.aborted_data += self.exch_data;
        self.aborted_control += self.exch_control;
        self.retrans_data -= self.exch_retrans_data;
        self.retrans_control -= self.exch_retrans_control;
        self.settle_exchange();
    }

    /// Whether an arrival can begin service inline: the protocol is idle,
    /// no handshake is in progress, and no aborted request is waiting for
    /// its retry (FIFO: the retry is the oldest request).
    fn can_submit(&self) -> bool {
        self.protocol.idle() && !self.protocol.recovering() && self.retry.is_none()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transition {
    Arrive(Request),
    Deliver,
    Lose,
    /// The sender's retry timer fires (ARQ mode): retransmit while the
    /// budget lasts, escalate to a declared partition once it is spent.
    ArqTimeout,
    /// The link drops and immediately recovers: abort + rollback + retry.
    Doze,
    /// The MC crashes and reboots; reconnection runs the handshake.
    Crash {
        volatile: bool,
    },
}

fn enabled(config: &CheckConfig, state: &State) -> Vec<Transition> {
    let mut transitions = Vec::with_capacity(7);
    if !state.protocol.wire().is_empty() {
        transitions.push(Transition::Deliver);
        if config.lossy && state.losses_left > 0 {
            transitions.push(Transition::Lose);
        }
        if config.arq && state.losses_left > 0 {
            transitions.push(Transition::ArqTimeout);
        }
    }
    if state.can_submit() || state.pending.len() < config.max_pending {
        transitions.push(Transition::Arrive(Request::Read));
        transitions.push(Transition::Arrive(Request::Write));
    }
    if state.faults_left > 0 {
        transitions.push(Transition::Doze);
        transitions.push(Transition::Crash { volatile: false });
        transitions.push(Transition::Crash { volatile: true });
    }
    transitions
}

/// How many trace entries one [`apply`] call appended, so the DFS can
/// backtrack.
#[derive(Debug, Clone, Copy, Default)]
struct Applied {
    served: usize,
    completed: usize,
    resets: usize,
}

/// Submits `request` to an idle protocol, billing a sent message or
/// recording an inline completion.
fn submit(state: &mut State, request: Request, actions: &mut Vec<Action>, applied: &mut Applied) {
    match state.protocol.submit(request) {
        StepOutcome::Completed(action) => {
            actions.push(action);
            applied.completed += 1;
            state.attempts = 0;
        }
        StepOutcome::Sent(envelope) => {
            state.attempts = 1;
            state.bill_exchange(envelope.message.class());
        }
        StepOutcome::Reconciled => unreachable!("submit never reconciles"),
    }
}

/// Drains the FIFO queue while the protocol stays idle, exactly as the
/// simulator's event loop does: inline completions must not stall it.
fn drain_queue(
    state: &mut State,
    schedule: &mut Vec<Request>,
    actions: &mut Vec<Action>,
    applied: &mut Applied,
) {
    while state.can_submit() {
        let Some(next) = state.pending.pop_front() else {
            break;
        };
        schedule.push(next);
        applied.served += 1;
        submit(state, next, actions, applied);
    }
}

/// Applies `transition`, appending served requests to `schedule`, completed
/// actions to `actions` and volatile-crash points to `resets`; returns how
/// many entries each gained so the DFS can backtrack.
fn apply(
    config: &CheckConfig,
    state: &mut State,
    transition: Transition,
    schedule: &mut Vec<Request>,
    actions: &mut Vec<Action>,
    resets: &mut Vec<usize>,
) -> Applied {
    let mut applied = Applied::default();
    match transition {
        Transition::Arrive(request) => {
            if state.can_submit() {
                debug_assert!(state.pending.is_empty(), "queue drains at completion");
                schedule.push(request);
                applied.served += 1;
                submit(state, request, actions, &mut applied);
            } else {
                state.pending.push_back(request);
            }
        }
        Transition::Deliver => match state.protocol.deliver(0) {
            StepOutcome::Sent(envelope) => {
                state.attempts = 1;
                state.bill_sent(envelope.message.class());
            }
            StepOutcome::Completed(action) => {
                actions.push(action);
                applied.completed += 1;
                state.attempts = 0;
                bill_ack(config, state);
                state.settle_exchange();
                drain_queue(state, schedule, actions, &mut applied);
            }
            StepOutcome::Reconciled => {
                state.attempts = 0;
                bill_ack(config, state);
                // The handshake completed: the aborted request (if any)
                // resumes first — it keeps its original schedule slot — and
                // then the queue drains.
                if let Some(request) = state.retry.take() {
                    submit(state, request, actions, &mut applied);
                }
                drain_queue(state, schedule, actions, &mut applied);
            }
        },
        Transition::Lose => {
            debug_assert!(state.losses_left > 0);
            state.losses_left -= 1;
            let class = state.protocol.wire()[0].message.class();
            if state.protocol.recovering() {
                // A lost handshake attempt is retransmitted and billed as
                // more handshake traffic.
                state.bill_recon(class);
            } else {
                state.bill_exchange(class);
                match class {
                    MessageClass::Data => {
                        state.retrans_data += 1;
                        state.exch_retrans_data += 1;
                    }
                    MessageClass::Control => {
                        state.retrans_control += 1;
                        state.exch_retrans_control += 1;
                    }
                    MessageClass::Invalidation => {
                        unreachable!("invalidation-class traffic in the wireless checker")
                    }
                }
            }
        }
        Transition::ArqTimeout => {
            debug_assert!(state.losses_left > 0);
            state.losses_left -= 1;
            if state.attempts <= config.retry_budget {
                // The timer fired with budget to spare: the retransmission
                // bills exactly like an instant loss, but the attempt count
                // on this envelope grows toward the budget.
                state.attempts += 1;
                let class = state.protocol.wire()[0].message.class();
                if state.protocol.recovering() {
                    state.bill_recon(class);
                } else {
                    if config.fault != Some(Fault::FreeRetransmit) {
                        state.bill_exchange(class);
                    }
                    match class {
                        MessageClass::Data => {
                            state.retrans_data += 1;
                            state.exch_retrans_data += 1;
                        }
                        MessageClass::Control => {
                            state.retrans_control += 1;
                            state.exch_retrans_control += 1;
                        }
                        MessageClass::Invalidation => {
                            unreachable!("invalidation-class traffic in the wireless checker")
                        }
                    }
                }
            } else {
                // The budget is exhausted: the timeout escalates to a
                // declared partition — abort, rollback, retry under the new
                // epoch, exactly as a doze.
                state.attempts = 0;
                let aborted = state.protocol.disconnect();
                state.protocol.reconnect();
                if aborted.is_some() {
                    state.abort_exchange_billing();
                }
                if config.fault == Some(Fault::EscalateWithoutRollback) {
                    // Mutant: the partition is declared but the recovery is
                    // forgotten — nothing resumes the aborted work.
                } else if state.protocol.recovering() {
                    restart_handshake(state, false);
                } else if let Some(request) = aborted {
                    submit(state, request, actions, &mut applied);
                    drain_queue(state, schedule, actions, &mut applied);
                }
            }
        }
        Transition::Doze => {
            debug_assert!(state.faults_left > 0);
            state.faults_left -= 1;
            state.attempts = 0;
            let aborted = state.protocol.disconnect();
            state.protocol.reconnect();
            if aborted.is_some() {
                state.abort_exchange_billing();
            }
            if state.protocol.recovering() {
                // The doze destroyed an in-flight handshake: restart it
                // under the new epoch (any volatile loss was already
                // applied when the handshake began).
                restart_handshake(state, false);
            } else if let Some(request) = aborted {
                // Retry the rolled-back request under the new epoch; it
                // keeps its original schedule slot.
                submit(state, request, actions, &mut applied);
                drain_queue(state, schedule, actions, &mut applied);
            }
        }
        Transition::Crash { volatile } => {
            debug_assert!(state.faults_left > 0);
            state.faults_left -= 1;
            state.attempts = 0;
            if let Some(request) = state.protocol.disconnect() {
                state.abort_exchange_billing();
                debug_assert!(state.retry.is_none(), "at most one exchange in flight");
                state.retry = Some(request);
            }
            state.protocol.reconnect();
            if volatile {
                // The replay oracle loses its volatile state at exactly
                // this many completed actions (see the ledger invariant).
                resets.push(actions.len());
                applied.resets += 1;
            }
            restart_handshake(state, volatile);
        }
    }
    inject_fault(config, state);
    applied
}

/// Starts (or restarts) the reconnection handshake and bills the announce.
fn restart_handshake(state: &mut State, volatile: bool) {
    match state.protocol.begin_reconciliation(volatile) {
        StepOutcome::Sent(envelope) => {
            state.attempts = 1;
            state.bill_recon(envelope.message.class());
        }
        _ => unreachable!("the reconnection announce always goes on the wire"),
    }
}

/// Bills the transport acknowledgement that (in ARQ mode) confirms a
/// completed exchange or reconciliation — control-class, never
/// retransmitted, never acknowledged itself. The [`Fault::SkipAckBilling`]
/// mutant delivers the ack without billing it.
fn bill_ack(config: &CheckConfig, state: &mut State) {
    if !config.arq {
        return;
    }
    state.acks += 1;
    if config.fault != Some(Fault::SkipAckBilling) {
        state.billed_control += 1;
    }
}

/// Seeds the configured fault into the in-flight message, if it matches.
fn inject_fault(config: &CheckConfig, state: &mut State) {
    let Some(fault) = config.fault else { return };
    if state.protocol.wire().is_empty() {
        return;
    }
    match fault {
        Fault::SkipAllocationHandoff => state.protocol.tamper_in_flight(0, |envelope| {
            if let WireMessage::DataResponse {
                allocate, window, ..
            } = &mut envelope.message
            {
                *allocate = false;
                *window = None;
            }
        }),
        Fault::SkipWindowHandoff => state.protocol.tamper_in_flight(0, |envelope| {
            if let WireMessage::DeleteRequest { window } = &mut envelope.message {
                *window = None;
            }
        }),
        Fault::DropDeleteRequest => {
            if matches!(
                state.protocol.wire()[0].message,
                WireMessage::DeleteRequest { .. }
            ) {
                let _ = state.protocol.drop_in_flight(0);
                state.attempts = 0;
            }
        }
        Fault::LieAboutReplicaOnReconnect => state.protocol.tamper_in_flight(0, |envelope| {
            if let WireMessage::Reconnect { cached_version, .. } = &mut envelope.message {
                *cached_version = None;
            }
        }),
        Fault::SkipRecoveryRefresh => state.protocol.tamper_in_flight(0, |envelope| {
            if let WireMessage::ReconnectAck { refresh, .. } = &mut envelope.message {
                *refresh = None;
            }
        }),
        Fault::DropReconnect => {
            if matches!(
                state.protocol.wire()[0].message,
                WireMessage::Reconnect { .. }
            ) {
                let _ = state.protocol.drop_in_flight(0);
                state.attempts = 0;
            }
        }
        // The transport mutants act inside the ARQ transitions themselves,
        // not on in-flight messages.
        Fault::SkipAckBilling | Fault::FreeRetransmit | Fault::EscalateWithoutRollback => {}
    }
}

/// Runs one bounded exploration.
pub fn check(config: &CheckConfig) -> CheckReport {
    let mut report = CheckReport {
        policy: config.policy,
        depth: config.depth,
        lossy: config.lossy,
        arq: config.arq,
        faulty: config.max_faults > 0,
        states: 1,
        transitions: 0,
        violations: Vec::new(),
    };
    let initial = State::initial(config);
    let mut seen = HashSet::new();
    let mut schedule = Vec::new();
    let mut actions = Vec::new();
    let mut resets = Vec::new();
    verify_state(config, &initial, &schedule, &actions, &resets, &mut report);
    seen.insert(initial.clone());
    dfs(
        config,
        &initial,
        0,
        &mut seen,
        &mut schedule,
        &mut actions,
        &mut resets,
        &mut report,
    );
    report
}

fn verify_state(
    config: &CheckConfig,
    state: &State,
    schedule: &[Request],
    actions: &[Action],
    resets: &[usize],
    report: &mut CheckReport,
) {
    let view = StateView {
        protocol: &state.protocol,
        schedule,
        actions,
        resets,
        billed_data: state.billed_data,
        billed_control: state.billed_control,
        retrans_data: state.retrans_data,
        retrans_control: state.retrans_control,
        aborted_data: state.aborted_data,
        aborted_control: state.aborted_control,
        recon_data: state.recon_data,
        recon_control: state.recon_control,
        acks: state.acks,
        models: &config.models,
    };
    if let Err(violation) = check_state(&view) {
        report.violations.push(violation);
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    config: &CheckConfig,
    state: &State,
    depth: usize,
    seen: &mut HashSet<State>,
    schedule: &mut Vec<Request>,
    actions: &mut Vec<Action>,
    resets: &mut Vec<usize>,
    report: &mut CheckReport,
) {
    if depth == config.depth || !report.violations.is_empty() {
        return;
    }
    for transition in enabled(config, state) {
        let mut child = state.clone();
        let applied = apply(config, &mut child, transition, schedule, actions, resets);
        report.transitions += 1;
        verify_state(config, &child, schedule, actions, resets, report);
        if report.violations.is_empty() && seen.insert(child.clone()) {
            report.states += 1;
            dfs(
                config,
                &child,
                depth + 1,
                seen,
                schedule,
                actions,
                resets,
                report,
            );
        }
        schedule.truncate(schedule.len() - applied.served);
        actions.truncate(actions.len() - applied.completed);
        resets.truncate(resets.len() - applied.resets);
        if !report.violations.is_empty() {
            return;
        }
    }
}

/// The acceptance roster: the policy families the paper analyzes —
/// SW1 (§4's optimized write), SWk for k ∈ {3, 5}, the statics ST1/ST2
/// (§2), and the competitive statics T1m/T2m (§7.1).
pub fn default_roster() -> Vec<PolicySpec> {
    vec![
        PolicySpec::SlidingWindow { k: 1 },
        PolicySpec::SlidingWindow { k: 3 },
        PolicySpec::SlidingWindow { k: 5 },
        PolicySpec::St1,
        PolicySpec::St2,
        PolicySpec::T1 { m: 2 },
        PolicySpec::T2 { m: 2 },
    ]
}

/// Explores every roster policy, lossless and lossy, to `depth`; returns
/// one report per run.
pub fn sweep(depth: usize) -> Vec<CheckReport> {
    let mut reports = Vec::new();
    for policy in default_roster() {
        reports.push(check(&CheckConfig::new(policy, depth)));
        reports.push(check(&CheckConfig::new(policy, depth).lossy()));
    }
    reports
}

/// Explores every roster policy with disconnect/crash/reconnect
/// transitions enabled, to `depth`; returns one report per policy. Kept
/// separate from [`sweep`] because the fault transitions multiply the
/// state space (epoch bumps defeat deduplication across fault counts), so
/// faulty runs use a smaller depth in practice.
pub fn faulty_sweep(depth: usize) -> Vec<CheckReport> {
    default_roster()
        .into_iter()
        .map(|policy| check(&CheckConfig::new(policy, depth).faulty()))
        .collect()
}

/// Explores every roster policy with timeout-driven ARQ transitions
/// enabled — bounded retransmissions, budget-exhaustion escalations and
/// billed acknowledgements woven into every interleaving — to `depth`;
/// returns one report per policy.
pub fn arq_sweep(depth: usize) -> Vec<CheckReport> {
    default_roster()
        .into_iter()
        .map(|policy| check(&CheckConfig::new(policy, depth).arq()))
        .collect()
}
