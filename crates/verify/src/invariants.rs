//! The invariant suite checked in every state the bounded model checker
//! reaches.
//!
//! The paper's correctness claims for the §4 protocol are *quiescent-state*
//! claims: between exchanges, exactly one side is in charge of the window,
//! the SC's replication commitment agrees with the MC's cache, the replica
//! is fresh, and the distributed execution has cost exactly equal to the
//! abstract policy's. A model checker, however, also visits *transient*
//! states — a message is on the wire, ownership is mid-handoff — so each
//! invariant below is stated in a transient-aware form that degenerates to
//! the paper's claim when the wire is empty:
//!
//! * **Window ownership** (§4): the window has exactly one logical owner.
//!   A windowed message in flight *is* an owner (the window travels with
//!   the allocating data response or the deallocating delete-request); an
//!   MC whose replica is being revoked by an in-flight SC → MC
//!   delete-request (SW1's optimized write, T1m's phase-ending write) no
//!   longer counts as an owner, because the SC reconstructed the window
//!   when it issued the revocation.
//! * **Replica agreement** (§4): the SC's commitment to propagate writes
//!   (`mc_has_copy`) differs from the MC's actual cache state exactly while
//!   one ownership-transfer message is in flight.
//! * **Freshness** (§3's consistency requirement): the replica never runs
//!   ahead of the primary, and is exactly current when the wire is empty.
//! * **Ledger = replay** (§3/§5/§6): at every quiescent state the action
//!   ledger, the per-class message bill and both cost models' totals equal
//!   a replay of the serialized schedule through the abstract
//!   [`AllocationPolicy`](mdr_core::AllocationPolicy) — with the oracle's
//!   [`on_replica_lost`](mdr_core::AllocationPolicy::on_replica_lost) hook
//!   applied at every recorded volatile-crash point, and the bill allowing
//!   exactly the aborted and reconnection-handshake traffic the faults
//!   caused.
//! * **No deadlock**: an exchange or reconnection handshake in progress
//!   always has a message in flight to advance it. Loss is repaired by the
//!   ARQ transport's timeout-driven retransmissions — and when the retry
//!   budget runs out, the timeout must escalate to a declared partition
//!   that rolls the exchange back and retries it; an exchange left
//!   dangling with nothing in flight (an unrecovered loss, a forgotten
//!   escalation rollback) is a transport bug and must be detected.
//!
//! The fault extension adds one more transient to each structural
//! invariant: while a reconnection handshake is re-validating a replica a
//! volatile crash destroyed, the SC's stale commitment stands in for the
//! lost replica (agreement) and for the lost window charge (ownership)
//! until the handshake retracts or refreshes it.

use mdr_core::{approx_eq, Action, ActionCounts, CostModel, PolicySpec, Request};
use mdr_sim::{Endpoint, Envelope, ProtocolState, WireMessage};
use std::fmt;

/// The invariant classes the checker enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// Exactly one logical owner of the request window (§4).
    SingleWindowOwner,
    /// SC replication commitment ⇔ MC cache, modulo one in-flight transfer.
    ReplicaAgreement,
    /// The replica never runs ahead of, and quiescently equals, the primary.
    ReplicaFreshness,
    /// Ledger, bill and costs equal the abstract policy replay (§3).
    LedgerEqualsReplay,
    /// An in-progress exchange always has a message in flight.
    NoDeadlock,
    /// Requests are serialized (§3): at most one message on the wire.
    SerializedWire,
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Invariant::SingleWindowOwner => "single-window-owner",
            Invariant::ReplicaAgreement => "replica-agreement",
            Invariant::ReplicaFreshness => "replica-freshness",
            Invariant::LedgerEqualsReplay => "ledger-equals-replay",
            Invariant::NoDeadlock => "no-deadlock",
            Invariant::SerializedWire => "serialized-wire",
        };
        write!(f, "{name}")
    }
}

/// A counterexample: which invariant failed, why, and the serialized
/// request prefix that reached the bad state.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated invariant.
    pub invariant: Invariant,
    /// Human-readable description of the bad state.
    pub detail: String,
    /// The serialized schedule prefix that led here.
    pub schedule: Vec<Request>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violated after [", self.invariant)?;
        for r in &self.schedule {
            write!(f, "{r}")?;
        }
        write!(f, "]: {}", self.detail)
    }
}

/// Everything the invariant suite needs to judge one reached state.
#[derive(Debug, Clone, Copy)]
pub struct StateView<'a> {
    /// The protocol configuration reached.
    pub protocol: &'a ProtocolState,
    /// The serialized request order so far (service order, §3).
    pub schedule: &'a [Request],
    /// The actions the protocol completed, in order.
    pub actions: &'a [Action],
    /// Volatile-crash points: for each, the number of completed actions at
    /// the moment the crash destroyed the MC's volatile state. The replay
    /// oracle applies
    /// [`on_replica_lost`](mdr_core::AllocationPolicy::on_replica_lost) at
    /// exactly these indices. Ascending.
    pub resets: &'a [usize],
    /// Data-message transmission attempts billed so far.
    pub billed_data: u64,
    /// Control-message transmission attempts billed so far.
    pub billed_control: u64,
    /// Billed data-message attempts that were lost and repeated (ARQ).
    pub retrans_data: u64,
    /// Billed control-message attempts that were lost and repeated (ARQ).
    pub retrans_control: u64,
    /// Billed data-message attempts on exchanges a fault aborted.
    pub aborted_data: u64,
    /// Billed control-message attempts on exchanges a fault aborted.
    pub aborted_control: u64,
    /// Billed data-message attempts of reconnection handshakes.
    pub recon_data: u64,
    /// Billed control-message attempts of reconnection handshakes.
    pub recon_control: u64,
    /// Billed transport acknowledgements (ARQ mode; always control-class,
    /// never retransmitted or acknowledged themselves).
    pub acks: u64,
    /// The cost models under which the ledger is priced and compared.
    pub models: &'a [CostModel],
}

/// Whether this in-flight message transfers replica ownership between the
/// two sides (the §4 handoff messages).
fn transfers_ownership(envelope: &Envelope) -> bool {
    matches!(
        envelope.message,
        WireMessage::DataResponse { allocate: true, .. } | WireMessage::DeleteRequest { .. }
    )
}

/// Whether this in-flight message carries the request window (§4's
/// piggyback), making the message itself the window's logical owner.
fn carries_window(envelope: &Envelope) -> bool {
    matches!(
        envelope.message,
        WireMessage::DataResponse {
            window: Some(_),
            ..
        } | WireMessage::DeleteRequest { window: Some(_) }
    )
}

/// Whether this in-flight message revokes the MC's replica from the SC side
/// (SW1's optimized write, T1m's phase-ending write): the SC has already
/// retaken the window, so the MC's charge no longer counts.
fn revokes_mc(envelope: &Envelope) -> bool {
    envelope.to == Endpoint::Mobile && matches!(envelope.message, WireMessage::DeleteRequest { .. })
}

/// Checks the full invariant suite against one reached state.
///
/// # Errors
///
/// Returns the first [`Violation`] found, with the serialized schedule
/// prefix attached as the counterexample trace.
pub fn check_state(view: &StateView<'_>) -> Result<(), Violation> {
    let p = view.protocol;
    let violation = |invariant: Invariant, detail: String| Violation {
        invariant,
        detail,
        schedule: view.schedule.to_vec(),
    };

    // Serialization (§3): the protocol never has more than one message in
    // flight, and a message in flight implies an exchange in progress.
    if p.wire().len() > 1 {
        return Err(violation(
            Invariant::SerializedWire,
            format!("{} messages in flight", p.wire().len()),
        ));
    }

    // Deadlock-freedom: an exchange or handshake mid-flight must have a
    // message to advance it (only an unrecovered loss can break this).
    if (p.serving().is_some() || p.recovering()) && p.wire().is_empty() {
        return Err(violation(
            Invariant::NoDeadlock,
            format!(
                "{} dangling with nothing in flight",
                if p.recovering() {
                    "reconnection handshake".to_owned()
                } else {
                    format!("exchange for {:?}", p.serving())
                }
            ),
        ));
    }

    // Replica agreement: the sides disagree exactly while one ownership
    // transfer is in flight — or while a reconnection handshake is
    // retracting (or refreshing) the SC's commitment to a replica a
    // volatile crash destroyed.
    let transfers = p.wire().iter().filter(|e| transfers_ownership(e)).count();
    let retracting = p.recovering() && p.sc().mc_has_copy() && !p.mc().has_copy();
    let agree = p.sc().mc_has_copy() == p.mc().has_copy();
    if agree != (transfers == 0 && !retracting) {
        return Err(violation(
            Invariant::ReplicaAgreement,
            format!(
                "SC commitment {} vs MC cache {} with {} transfer(s) in flight (recovering {})",
                p.sc().mc_has_copy(),
                p.mc().has_copy(),
                transfers,
                p.recovering()
            ),
        ));
    }

    // Single window owner (window policies only, §4). During a
    // reconnection handshake, a commitment awaiting retraction stands in
    // for the window charge the crash destroyed: the SC reconstructs the
    // §4 cold-start window the moment the announce arrives.
    if matches!(p.policy(), PolicySpec::SlidingWindow { .. }) {
        let revoked = p.wire().iter().any(revokes_mc);
        let mc_owns = p.mc().in_charge() && !revoked;
        let in_flight_owners = p.wire().iter().filter(|e| carries_window(e)).count();
        let recovery_owner = p.recovering() && p.sc().mc_has_copy() && !p.mc().in_charge();
        let owners = usize::from(p.sc().in_charge())
            + usize::from(mc_owns)
            + in_flight_owners
            + usize::from(recovery_owner);
        if owners != 1 {
            return Err(violation(
                Invariant::SingleWindowOwner,
                format!(
                    "{owners} logical window owners (SC {}, MC {}, revoked {}, in flight {}, \
                     recovery {})",
                    p.sc().in_charge(),
                    p.mc().in_charge(),
                    revoked,
                    in_flight_owners,
                    recovery_owner
                ),
            ));
        }
    }

    // Freshness: the replica never runs ahead of the primary; with an empty
    // wire it is exactly current.
    if let Some(v) = p.mc().cached_version() {
        if v > p.sc().version() {
            return Err(violation(
                Invariant::ReplicaFreshness,
                format!("replica version {v} ahead of primary {}", p.sc().version()),
            ));
        }
        if p.wire().is_empty() && v != p.sc().version() {
            return Err(violation(
                Invariant::ReplicaFreshness,
                format!(
                    "replica version {v} stale behind primary {} at quiescence",
                    p.sc().version()
                ),
            ));
        }
    }

    // Ledger = replay (quiescent states only: mid-exchange the in-flight
    // request is in the schedule but not yet in the ledger, and
    // mid-handshake an aborted request may be parked for retry).
    if p.serving().is_none() && p.wire().is_empty() && !p.recovering() {
        check_ledger(view).map_err(|(invariant, detail)| violation(invariant, detail))?;
    }

    Ok(())
}

/// The quiescent-state accounting checks: replay the serialized schedule
/// through the abstract policy — applying the volatile-crash hook at every
/// recorded reset point — and compare actions, allocation state, the
/// per-class message bill, and both cost models' totals.
fn check_ledger(view: &StateView<'_>) -> Result<(), (Invariant, String)> {
    let p = view.protocol;
    if view.schedule.len() != view.actions.len() {
        return Err((
            Invariant::LedgerEqualsReplay,
            format!(
                "{} requests serialized but {} actions completed",
                view.schedule.len(),
                view.actions.len()
            ),
        ));
    }

    let mut oracle = p.policy().build();
    let mut replayed = ActionCounts::default();
    let mut resets = view.resets.iter().peekable();
    for (i, (&req, &action)) in view.schedule.iter().zip(view.actions).enumerate() {
        while resets.next_if(|&&at| at <= i).is_some() {
            oracle.on_replica_lost();
        }
        let expected = oracle.on_request(req);
        replayed.record(expected);
        if action != expected {
            return Err((
                Invariant::LedgerEqualsReplay,
                format!("request {i} ({req:?}): protocol did {action}, policy does {expected}"),
            ));
        }
    }
    // Crashes after the last completed action still reset the oracle.
    for _ in resets {
        oracle.on_replica_lost();
    }
    if oracle.has_copy() != p.mc().has_copy() {
        return Err((
            Invariant::LedgerEqualsReplay,
            format!(
                "allocation state diverged: policy {}, protocol {}",
                oracle.has_copy(),
                p.mc().has_copy()
            ),
        ));
    }
    let counts = p.counts();
    if counts != replayed {
        return Err((
            Invariant::LedgerEqualsReplay,
            format!("ledger {counts:?} differs from replay {replayed:?}"),
        ));
    }
    // The message bill equals the ledger-derived count plus the ARQ
    // retransmissions (loss inflates the bill without changing actions),
    // the attempts faults aborted, the reconnection-handshake traffic, and
    // the transport's control-class acknowledgements.
    if view.billed_data
        != counts.data_messages() + view.retrans_data + view.aborted_data + view.recon_data
        || view.billed_control
            != counts.control_messages()
                + view.retrans_control
                + view.aborted_control
                + view.recon_control
                + view.acks
    {
        return Err((
            Invariant::LedgerEqualsReplay,
            format!(
                "bill {}d+{}c differs from ledger {}d+{}c plus retransmissions {}d+{}c, \
                 aborted {}d+{}c, handshakes {}d+{}c and acks {}c",
                view.billed_data,
                view.billed_control,
                counts.data_messages(),
                counts.control_messages(),
                view.retrans_data,
                view.retrans_control,
                view.aborted_data,
                view.aborted_control,
                view.recon_data,
                view.recon_control,
                view.acks
            ),
        ));
    }
    // Both cost models price the ledger exactly as they price the replay.
    for model in view.models {
        let ledger_cost = model.price_counts(&counts);
        let replay_cost = model.price_all(view.actions.iter().copied());
        if !approx_eq(ledger_cost, replay_cost) {
            return Err((
                Invariant::LedgerEqualsReplay,
                format!("{model}: ledger cost {ledger_cost} vs replay cost {replay_cost}"),
            ));
        }
    }
    Ok(())
}
