//! # mdr-verify — bounded model checking for the window-ownership protocol
//!
//! The fourth verification layer of this workspace (after the simulator's
//! oracle mode, the property tests, and the exhaustive short-schedule
//! sweeps; see `DESIGN.md`): an explicit-state bounded model checker for
//! the §4 protocol of **Huang, Sistla, Wolfson, "Data Replication for
//! Mobile Computers" (SIGMOD 1994)**.
//!
//! The checker drives the same [`ProtocolState`](mdr_sim::ProtocolState)
//! transition relation the discrete-event simulator uses — not a model of
//! the protocol but the protocol itself — and exhaustively explores every
//! interleaving of request arrivals at both nodes, message deliveries,
//! (in lossy mode) link-loss events with instant retransmission, (in ARQ
//! mode) retransmission-timeout firings — budget-bounded retransmits,
//! escalations to declared partitions and billed acknowledgements — and
//! (in faulty mode) disconnections, MC crashes — volatile and stable — and
//! the reconnection handshake that re-validates the replica, deduplicating
//! by full state hash. Every reached state is judged by the transient-aware
//! invariant suite ([`check_state`], [`Invariant`]); see
//! `src/invariants.rs` for the exact formulations.
//!
//! ```
//! use mdr_core::PolicySpec;
//! use mdr_verify::{check, CheckConfig};
//!
//! let report = check(&CheckConfig::new(PolicySpec::SlidingWindow { k: 3 }, 8));
//! assert!(report.verified());
//! assert!(report.states > 100);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod checker;
mod handoff;
mod invariants;

pub use checker::{
    arq_sweep, check, default_roster, faulty_sweep, sweep, CheckConfig, CheckReport, Fault,
};
pub use handoff::{
    check_handoff, handoff_sweep, HandoffConfig, HandoffFault, HandoffInvariant, HandoffReport,
    HandoffViolation,
};
pub use invariants::{check_state, Invariant, StateView, Violation};

#[cfg(test)]
mod tests {
    use super::*;
    use mdr_core::PolicySpec;

    /// The acceptance bar: every policy family in the roster, lossless and
    /// lossy, explored to depth 18 (comfortably past the required ≥ 12)
    /// with zero violations and at least 10⁵ deduplicated states in total.
    #[test]
    fn full_sweep_verifies_at_depth_18() {
        let reports = sweep(18);
        let mut total_states = 0;
        for report in &reports {
            assert!(
                report.verified(),
                "{:?} (lossy: {}) found violations: {:?}",
                report.policy,
                report.lossy,
                report.violations
            );
            assert!(report.states > 1, "{:?} explored nothing", report.policy);
            total_states += report.states;
        }
        assert_eq!(reports.len(), 14, "7 policies × {{lossless, lossy}}");
        assert!(
            total_states >= 100_000,
            "acceptance floor not met: {total_states} deduplicated states"
        );
    }

    /// Mutation self-test: stripping the save-the-copy indication from the
    /// allocating data response must be caught as a replica-agreement
    /// violation (the SC commits to propagate but the MC never caches).
    #[test]
    fn skipped_allocation_handoff_is_caught() {
        let config = CheckConfig::new(PolicySpec::SlidingWindow { k: 3 }, 12)
            .with_fault(Fault::SkipAllocationHandoff);
        let report = check(&config);
        assert!(
            !report.verified(),
            "mutation survived {} states",
            report.states
        );
        assert_eq!(report.violations[0].invariant, Invariant::ReplicaAgreement);
    }

    /// Mutation self-test: stripping the window from the deallocating
    /// delete-request must be caught as a window-ownership violation (the
    /// hand-off is skipped and the window has no owner).
    #[test]
    fn skipped_window_handoff_is_caught() {
        let config = CheckConfig::new(PolicySpec::SlidingWindow { k: 3 }, 12)
            .with_fault(Fault::SkipWindowHandoff);
        let report = check(&config);
        assert!(
            !report.verified(),
            "mutation survived {} states",
            report.states
        );
        assert_eq!(report.violations[0].invariant, Invariant::SingleWindowOwner);
    }

    /// Mutation self-test: an unrecovered loss of a delete-request (broken
    /// link-layer ARQ) must be caught as a deadlock — the exchange dangles
    /// with nothing in flight.
    #[test]
    fn dropped_delete_request_is_caught() {
        let config = CheckConfig::new(PolicySpec::SlidingWindow { k: 1 }, 12)
            .with_fault(Fault::DropDeleteRequest);
        let report = check(&config);
        assert!(
            !report.verified(),
            "mutation survived {} states",
            report.states
        );
        assert_eq!(report.violations[0].invariant, Invariant::NoDeadlock);
    }

    /// Counterexample traces carry the serialized schedule prefix so a
    /// violation is reproducible by hand.
    #[test]
    fn counterexamples_carry_a_schedule() {
        let config = CheckConfig::new(PolicySpec::SlidingWindow { k: 3 }, 12)
            .with_fault(Fault::SkipAllocationHandoff);
        let report = check(&config);
        let violation = &report.violations[0];
        assert!(
            !violation.schedule.is_empty(),
            "a violation needs at least one serialized request"
        );
        // The trace renders as a runnable schedule string.
        let rendered = violation.to_string();
        assert!(rendered.contains("replica-agreement"), "{rendered}");
    }

    /// Lossy exploration strictly enlarges the state space: the retransmit
    /// bill distinguishes otherwise-identical protocol states.
    #[test]
    fn loss_transitions_enlarge_the_state_space() {
        let policy = PolicySpec::SlidingWindow { k: 3 };
        let lossless = check(&CheckConfig::new(policy, 10));
        let lossy = check(&CheckConfig::new(policy, 10).lossy());
        assert!(lossless.verified() && lossy.verified());
        assert!(
            lossy.states > lossless.states,
            "lossy {} vs lossless {}",
            lossy.states,
            lossless.states
        );
    }

    /// The statics never allocate, so their reachable space is much smaller
    /// than the adaptive families' — a sanity check on the dedup.
    #[test]
    fn static_policies_have_smaller_state_spaces() {
        let st1 = check(&CheckConfig::new(PolicySpec::St1, 10));
        let sw3 = check(&CheckConfig::new(PolicySpec::SlidingWindow { k: 3 }, 10));
        assert!(st1.verified() && sw3.verified());
        assert!(st1.states < sw3.states);
    }

    /// Fault acceptance: every roster policy — SW1 and SW3 included —
    /// verifies all invariants under both cost models when disconnections,
    /// volatile/stable MC crashes and reconnection handshakes are woven
    /// into every interleaving.
    #[test]
    fn faulty_sweep_verifies_at_depth_12() {
        let reports = faulty_sweep(12);
        assert_eq!(reports.len(), 7);
        for report in &reports {
            assert!(report.faulty);
            assert!(
                report.verified(),
                "{:?} under faults found violations: {:?}",
                report.policy,
                report.violations
            );
            assert!(
                report.states > 1_000,
                "{:?} explored too little",
                report.policy
            );
        }
    }

    /// Fault transitions strictly enlarge the state space: epoch bumps,
    /// retry slots and the aborted/handshake bill distinguish
    /// otherwise-identical protocol states.
    #[test]
    fn fault_transitions_enlarge_the_state_space() {
        let policy = PolicySpec::SlidingWindow { k: 3 };
        let clean = check(&CheckConfig::new(policy, 10));
        let faulty = check(&CheckConfig::new(policy, 10).faulty());
        assert!(clean.verified() && faulty.verified());
        assert!(
            faulty.states > clean.states,
            "faulty {} vs clean {}",
            faulty.states,
            clean.states
        );
    }

    /// Mutation self-test: an MC that reports its replica lost on
    /// reconnection while it actually survived makes the SC retract a
    /// commitment that is still live — caught as a replica-agreement
    /// violation.
    #[test]
    fn lying_reconnect_announce_is_caught() {
        let config = CheckConfig::new(PolicySpec::SlidingWindow { k: 3 }, 10)
            .faulty()
            .with_fault(Fault::LieAboutReplicaOnReconnect);
        let report = check(&config);
        assert!(
            !report.verified(),
            "mutation survived {} states",
            report.states
        );
        assert_eq!(report.violations[0].invariant, Invariant::ReplicaAgreement);
    }

    /// Mutation self-test: stripping the re-shipped item from ST2's
    /// recovery acknowledgement leaves the SC committed to a replica the
    /// MC never re-caches — caught as a replica-agreement violation at the
    /// first post-recovery quiescence.
    #[test]
    fn skipped_recovery_refresh_is_caught() {
        let config = CheckConfig::new(PolicySpec::St2, 10)
            .faulty()
            .with_fault(Fault::SkipRecoveryRefresh);
        let report = check(&config);
        assert!(
            !report.verified(),
            "mutation survived {} states",
            report.states
        );
        assert_eq!(report.violations[0].invariant, Invariant::ReplicaAgreement);
    }

    /// ARQ acceptance: every roster policy verifies all invariants when
    /// timeout firings, budget-bounded retransmissions, escalations to
    /// declared partitions and billed acknowledgements are woven into
    /// every interleaving.
    #[test]
    fn arq_sweep_verifies_at_depth_12() {
        let reports = arq_sweep(12);
        assert_eq!(reports.len(), 7);
        for report in &reports {
            assert!(report.arq);
            assert!(
                report.verified(),
                "{:?} under ARQ found violations: {:?}",
                report.policy,
                report.violations
            );
            assert!(
                report.states > 1_000,
                "{:?} explored too little",
                report.policy
            );
        }
    }

    /// ARQ and fault transitions compose: timeout escalations interleave
    /// with injected dozes, crashes and reconnection handshakes, and every
    /// invariant still holds.
    #[test]
    fn arq_composes_with_fault_transitions() {
        for policy in [PolicySpec::SlidingWindow { k: 3 }, PolicySpec::St2] {
            let report = check(&CheckConfig::new(policy, 10).faulty().arq());
            assert!(report.arq && report.faulty);
            assert!(
                report.verified(),
                "{policy:?} under ARQ + faults found violations: {:?}",
                report.violations
            );
        }
    }

    /// ARQ transitions strictly enlarge the state space: attempt counters
    /// and the ack bill distinguish otherwise-identical protocol states.
    #[test]
    fn arq_transitions_enlarge_the_state_space() {
        let policy = PolicySpec::SlidingWindow { k: 3 };
        let clean = check(&CheckConfig::new(policy, 10));
        let arq = check(&CheckConfig::new(policy, 10).arq());
        assert!(clean.verified() && arq.verified());
        assert!(
            arq.states > clean.states,
            "arq {} vs clean {}",
            arq.states,
            clean.states
        );
    }

    /// Mutation self-test: delivering the completion acknowledgement
    /// without billing it must be caught by the ledger identity — the
    /// per-class bill no longer covers the transport's ack traffic.
    #[test]
    fn skipped_ack_billing_is_caught() {
        let config = CheckConfig::new(PolicySpec::SlidingWindow { k: 3 }, 10)
            .arq()
            .with_fault(Fault::SkipAckBilling);
        let report = check(&config);
        assert!(
            !report.verified(),
            "mutation survived {} states",
            report.states
        );
        assert_eq!(
            report.violations[0].invariant,
            Invariant::LedgerEqualsReplay
        );
    }

    /// Mutation self-test: retransmitting on timeout without billing the
    /// repeated attempt must be caught by the ledger identity — the
    /// retransmission counters outrun the bill.
    #[test]
    fn free_retransmit_is_caught() {
        let config = CheckConfig::new(PolicySpec::SlidingWindow { k: 3 }, 10)
            .arq()
            .with_fault(Fault::FreeRetransmit);
        let report = check(&config);
        assert!(
            !report.verified(),
            "mutation survived {} states",
            report.states
        );
        assert_eq!(
            report.violations[0].invariant,
            Invariant::LedgerEqualsReplay
        );
    }

    /// Mutation self-test: escalating an exhausted retry budget without
    /// rolling the exchange back (or restarting the interrupted handshake)
    /// strands the aborted work — caught as a dangling protocol state.
    #[test]
    fn escalation_without_rollback_is_caught() {
        let config = CheckConfig::new(PolicySpec::SlidingWindow { k: 3 }, 10)
            .arq()
            .with_fault(Fault::EscalateWithoutRollback);
        let report = check(&config);
        assert!(
            !report.verified(),
            "mutation survived {} states",
            report.states
        );
        assert!(
            matches!(
                report.violations[0].invariant,
                Invariant::LedgerEqualsReplay | Invariant::NoDeadlock
            ),
            "unexpected invariant: {}",
            report.violations[0].invariant
        );
    }

    /// Mutation self-test: silently dropping the reconnection announce
    /// leaves the handshake dangling — caught as a deadlock.
    #[test]
    fn dropped_reconnect_announce_is_caught() {
        let config = CheckConfig::new(PolicySpec::SlidingWindow { k: 1 }, 10)
            .faulty()
            .with_fault(Fault::DropReconnect);
        let report = check(&config);
        assert!(
            !report.verified(),
            "mutation survived {} states",
            report.states
        );
        assert_eq!(report.violations[0].invariant, Invariant::NoDeadlock);
    }

    /// Handoff acceptance: migration interleaved with backbone loss,
    /// duplicated commits, deadline aborts and crash/reconnect cycles,
    /// over 2 and 3 cells, verifies single-owner-across-cells,
    /// no-lost-window and the billing identity with zero violations.
    #[test]
    fn handoff_sweep_verifies_at_depth_14() {
        let reports = handoff_sweep(14);
        assert_eq!(reports.len(), 10, "2 cell counts × 5 modes");
        let mut total_states = 0;
        for report in &reports {
            assert!(
                report.verified(),
                "{} cells (lossy {}, faulty {}, ghosts {}) found violations: {:?}",
                report.cells,
                report.lossy,
                report.faulty,
                report.ghosts,
                report.violations
            );
            assert!(report.states > 1, "explored nothing");
            total_states += report.states;
        }
        assert!(
            total_states >= 10_000,
            "acceptance floor not met: {total_states} deduplicated states"
        );
    }

    /// Handoff fault/ghost transitions strictly enlarge the state space.
    #[test]
    fn handoff_fault_transitions_enlarge_the_state_space() {
        let clean = check_handoff(&HandoffConfig::new(3, 10));
        let faulty = check_handoff(&HandoffConfig::new(3, 10).lossy().faulty().ghosts());
        assert!(clean.verified() && faulty.verified());
        assert!(
            faulty.states > clean.states,
            "faulty {} vs clean {}",
            faulty.states,
            clean.states
        );
    }

    /// Mutation self-test: applying a stale commit ghost without the
    /// epoch fence re-commits a finished handoff — caught when the window
    /// state is no longer where the re-committed owner sits.
    #[test]
    fn skipped_epoch_fence_is_caught() {
        let config = HandoffConfig::new(3, 14)
            .faulty()
            .ghosts()
            .with_fault(HandoffFault::SkipEpochFence);
        let report = check_handoff(&config);
        assert!(
            !report.verified(),
            "mutation survived {} states",
            report.states
        );
        assert!(matches!(
            report.violations[0].invariant,
            HandoffInvariant::NoLostWindow | HandoffInvariant::SingleOwnerAcrossCells
        ));
    }

    /// Mutation self-test: aborting a handoff without rolling ownership
    /// back to the origin leaves the window with no owner.
    #[test]
    fn skipped_rollback_is_caught() {
        let config = HandoffConfig::new(2, 8)
            .faulty()
            .with_fault(HandoffFault::SkipRollback);
        let report = check_handoff(&config);
        assert!(
            !report.verified(),
            "mutation survived {} states",
            report.states
        );
        assert_eq!(
            report.violations[0].invariant,
            HandoffInvariant::SingleOwnerAcrossCells
        );
    }

    /// Mutation self-test: committing before the state transfer lands
    /// makes the target own a window it never received — caught at the
    /// first post-commit quiescence.
    #[test]
    fn commit_without_transfer_is_caught() {
        let config = HandoffConfig::new(2, 8).with_fault(HandoffFault::CommitWithoutTransfer);
        let report = check_handoff(&config);
        assert!(
            !report.verified(),
            "mutation survived {} states",
            report.states
        );
        assert_eq!(
            report.violations[0].invariant,
            HandoffInvariant::NoLostWindow
        );
    }

    /// Mutation self-test: skipping the invalidation fan-out on commit
    /// leaves the invalidation bill short of what the stale-replica
    /// bookkeeping demands.
    #[test]
    fn skipped_invalidation_is_caught() {
        let config = HandoffConfig::new(3, 10).with_fault(HandoffFault::SkipInvalidation);
        let report = check_handoff(&config);
        assert!(
            !report.verified(),
            "mutation survived {} states",
            report.states
        );
        assert_eq!(
            report.violations[0].invariant,
            HandoffInvariant::BillingIdentity
        );
    }

    /// Mutation self-test: a handoff leg that rides the backbone without
    /// being billed breaks billed = settled + aborted + in-flight.
    #[test]
    fn free_handoff_leg_is_caught() {
        let config = HandoffConfig::new(2, 6).with_fault(HandoffFault::FreeHandoffLeg);
        let report = check_handoff(&config);
        assert!(
            !report.verified(),
            "mutation survived {} states",
            report.states
        );
        assert_eq!(
            report.violations[0].invariant,
            HandoffInvariant::BillingIdentity
        );
    }
}
