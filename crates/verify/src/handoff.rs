//! Bounded model checking of the multi-cell handoff protocol.
//!
//! The mobility layer (see `docs/topology.md`) migrates SWk window
//! ownership between stationary cells with a three-leg flight —
//! HandoffRequest → StateTransfer → HandoffCommit — fenced by a
//! monotonically increasing epoch and rolled back to the origin cell on
//! timeout or crash. This module explores every interleaving of cell
//! migrations, leg deliveries, backbone losses with retransmission,
//! duplicated/reordered commit legs, deadline aborts and MC
//! crash/reconnect cycles, deduplicating by full state hash, and judges
//! each reached state against three invariants:
//!
//! * **single owner across cells** — exactly one cell considers itself
//!   in charge of the window at every reachable state; an aborted
//!   handoff rolls ownership back to the origin, a committed one moves
//!   it to the target, and a stale (epoch-fenced) commit ghost moves
//!   nothing;
//! * **no lost window** — whenever no handoff is in flight, the cell
//!   that owns the window also *holds* it: the state snapshot shipped by
//!   the transfer leg is never orphaned by a commit that outran it or an
//!   abort that forgot the rollback;
//! * **billing identity** — every billed handoff leg is settled by a
//!   commit, written off by an abort, or still in flight
//!   (`billed == settled + aborted + in_flight`), and the invalidation
//!   traffic billed on commits equals what the stale-replica bookkeeping
//!   demands (`invalidation_billed == invalidation_expected`).
//!
//! The checker is deliberately *not* built on the simulator's event
//! queue: it is a small, self-contained transition relation over the
//! ownership/billing facts the simulator's
//! [`TopologyConfig`](mdr_sim::TopologyConfig) runs maintain, so the two
//! implementations can disagree and the disagreement be caught by the
//! shared invariant statements. Seeded [`HandoffFault`] mutants prove
//! the suite has teeth.

use mdr_sim::HandoffLeg;
use std::collections::HashSet;
use std::fmt;

/// Deliberate handoff-protocol mutations for the checker's self-test:
/// each must be caught by a [`HandoffInvariant`], demonstrating the
/// suite would catch the corresponding implementation bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoffFault {
    /// Apply a duplicated/reordered HandoffCommit without checking its
    /// epoch against the current flight: a stale ghost re-commits a
    /// finished handoff and moves ownership to a cell that no longer
    /// holds the window.
    SkipEpochFence,
    /// On a deadline abort, "forget" the rollback to the origin cell:
    /// the origin already relinquished, the target never committed, and
    /// the window has no owner.
    SkipRollback,
    /// Send the HandoffCommit straight after the HandoffRequest, before
    /// the StateTransfer has landed: the target becomes the owner of a
    /// window it never received.
    CommitWithoutTransfer,
    /// Skip the invalidation fan-out on commit: non-owner cells keep
    /// serving stale replicas and the invalidation bill falls short of
    /// what the stale-replica bookkeeping demands.
    SkipInvalidation,
    /// Put a handoff leg on the backbone without billing it: the
    /// settled/aborted accounting outruns the bill.
    FreeHandoffLeg,
}

/// The invariant classes the handoff checker enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HandoffInvariant {
    /// Exactly one cell owns the window at every reachable state.
    SingleOwnerAcrossCells,
    /// At quiescence the owning cell holds the transferred window state.
    NoLostWindow,
    /// Billed legs = settled + aborted + in flight, and the invalidation
    /// bill matches the stale-replica bookkeeping.
    BillingIdentity,
}

impl fmt::Display for HandoffInvariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            HandoffInvariant::SingleOwnerAcrossCells => "single-owner-across-cells",
            HandoffInvariant::NoLostWindow => "no-lost-window",
            HandoffInvariant::BillingIdentity => "billing-identity",
        };
        write!(f, "{name}")
    }
}

/// A counterexample: which invariant failed, why, and the transition
/// path that reached the bad state.
#[derive(Debug, Clone)]
pub struct HandoffViolation {
    /// The violated invariant.
    pub invariant: HandoffInvariant,
    /// Human-readable description of the bad state.
    pub detail: String,
    /// The transition names along the failing path.
    pub trace: Vec<String>,
}

impl fmt::Display for HandoffViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violated after [{}]: {}",
            self.invariant,
            self.trace.join(" "),
            self.detail
        )
    }
}

/// One bounded handoff exploration: cell count, depth, per-path fault
/// budgets, and an optional seeded mutation.
#[derive(Debug, Clone)]
pub struct HandoffConfig {
    /// Number of stationary cells (≥ 2 for any migration to exist).
    pub cells: u8,
    /// Exploration depth: number of transitions along any path.
    pub depth: usize,
    /// Maximum cell migrations explored along one path.
    pub max_migrations: u8,
    /// Maximum backbone leg losses (each retransmitted and re-billed)
    /// along one path.
    pub max_losses: u8,
    /// Maximum deadline aborts plus MC crash/reconnect cycles along one
    /// path (both abort the in-flight handoff and re-initiate).
    pub max_faults: u8,
    /// Maximum duplicated (ghost) commit legs along one path.
    pub max_dups: u8,
    /// Optional seeded mutation (checker self-test).
    pub fault: Option<HandoffFault>,
}

impl HandoffConfig {
    /// A lossless, fault-free exploration of migrations over `cells`
    /// cells to `depth`.
    pub fn new(cells: u8, depth: usize) -> Self {
        HandoffConfig {
            cells: cells.max(2),
            depth,
            max_migrations: 3,
            max_losses: 0,
            max_faults: 0,
            max_dups: 0,
            fault: None,
        }
    }

    /// Enables backbone loss + retransmission transitions.
    #[must_use]
    pub fn lossy(mut self) -> Self {
        self.max_losses = 2;
        self
    }

    /// Enables deadline-abort and MC crash/reconnect transitions.
    #[must_use]
    pub fn faulty(mut self) -> Self {
        self.max_faults = 2;
        self
    }

    /// Enables duplicated/reordered commit-ghost transitions.
    #[must_use]
    pub fn ghosts(mut self) -> Self {
        self.max_dups = 1;
        self
    }

    /// Seeds a deliberate handoff mutation.
    #[must_use]
    pub fn with_fault(mut self, fault: HandoffFault) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// What one bounded handoff exploration found.
#[derive(Debug, Clone)]
pub struct HandoffReport {
    /// The cell count explored.
    pub cells: u8,
    /// The depth bound used.
    pub depth: usize,
    /// Whether backbone-loss transitions were explored.
    pub lossy: bool,
    /// Whether abort/crash transitions were explored.
    pub faulty: bool,
    /// Whether commit-ghost transitions were explored.
    pub ghosts: bool,
    /// Deduplicated states reached (including the initial state).
    pub states: usize,
    /// Transitions applied (including ones into already-seen states).
    pub transitions: usize,
    /// Counterexamples found; empty means the run verified.
    pub violations: Vec<HandoffViolation>,
}

impl HandoffReport {
    /// Whether the exploration finished without a counterexample.
    pub fn verified(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The handoff flight in progress: which leg is on the backbone, under
/// which epoch, and how many billed legs are at risk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Flight {
    origin: u8,
    target: u8,
    epoch: u8,
    leg: HandoffLeg,
    /// Billed legs of this flight, settled on commit or written off on
    /// abort.
    messages: u64,
    /// Whether the StateTransfer leg has landed at the target.
    transfer_landed: bool,
}

/// A duplicated HandoffCommit still wandering the backbone: the epoch it
/// was fenced with and the target it would re-commit to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Ghost {
    epoch: u8,
    target: u8,
}

/// The full checker state: ownership facts × flight × ghost × billing ×
/// remaining budgets. Equality/hashing over all of it drives
/// deduplication.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    /// The cell the MC currently resides in.
    mc_cell: u8,
    /// Bitmask of cells that consider themselves in charge of the window.
    owner_mask: u8,
    /// The cell physically holding the current window state.
    window_at: u8,
    /// Bitmask of cells retaining a stale replica awaiting invalidation.
    stale_mask: u8,
    /// Current handoff epoch (bumped at every initiation).
    epoch: u8,
    flight: Option<Flight>,
    ghost: Option<Ghost>,
    billed: u64,
    settled: u64,
    aborted: u64,
    invalidation_billed: u64,
    invalidation_expected: u64,
    migrations_left: u8,
    losses_left: u8,
    faults_left: u8,
    dups_left: u8,
}

impl State {
    fn initial(config: &HandoffConfig) -> Self {
        State {
            mc_cell: 0,
            owner_mask: 1,
            window_at: 0,
            stale_mask: 0,
            epoch: 0,
            flight: None,
            ghost: None,
            billed: 0,
            settled: 0,
            aborted: 0,
            invalidation_billed: 0,
            invalidation_expected: 0,
            migrations_left: config.max_migrations,
            losses_left: config.max_losses,
            faults_left: config.max_faults,
            dups_left: config.max_dups,
        }
    }

    /// Bills one backbone leg onto the current flight. The
    /// [`HandoffFault::FreeHandoffLeg`] mutant puts the leg on the wire
    /// without billing it.
    fn bill_leg(&mut self, config: &HandoffConfig) {
        if config.fault != Some(HandoffFault::FreeHandoffLeg) {
            self.billed += 1;
        }
        if let Some(flight) = &mut self.flight {
            flight.messages += 1;
        }
    }

    /// Starts a new handoff flight from the owner cell toward the MC's
    /// current cell, under a fresh epoch, billing the request leg.
    fn initiate(&mut self, config: &HandoffConfig) {
        debug_assert!(self.flight.is_none(), "one flight at a time");
        let origin = self.owner_mask.trailing_zeros() as u8;
        self.epoch = self.epoch.wrapping_add(1);
        self.flight = Some(Flight {
            origin,
            target: self.mc_cell,
            epoch: self.epoch,
            leg: HandoffLeg::Request,
            messages: 0,
            transfer_landed: false,
        });
        self.bill_leg(config);
    }

    /// Applies the commit effects for `target`: ownership moves, the
    /// origin's replica goes stale, and the invalidation fan-out is
    /// billed (or, under [`HandoffFault::SkipInvalidation`], silently
    /// skipped while the bookkeeping still demands it).
    fn commit(&mut self, config: &HandoffConfig, origin: u8, target: u8, transfer_landed: bool) {
        self.owner_mask = 1 << target;
        if transfer_landed {
            self.window_at = target;
        }
        if origin != target {
            self.stale_mask |= 1 << origin;
        }
        self.stale_mask &= !(1 << target);
        let stale = u64::from(self.stale_mask.count_ones());
        self.invalidation_expected += stale;
        if config.fault != Some(HandoffFault::SkipInvalidation) {
            self.invalidation_billed += stale;
            self.stale_mask = 0;
        }
    }

    /// Aborts the in-flight handoff: its billed legs are written off and
    /// ownership rolls back to the origin cell — unless the
    /// [`HandoffFault::SkipRollback`] mutant forgets that step.
    fn abort(&mut self, config: &HandoffConfig) {
        let Some(flight) = self.flight.take() else {
            return;
        };
        self.aborted += flight.messages;
        if flight.transfer_landed {
            // The target holds a snapshot that never became
            // authoritative: a stale replica awaiting invalidation.
            self.stale_mask |= 1 << flight.target;
            self.stale_mask &= !self.owner_mask;
        }
        if config.fault == Some(HandoffFault::SkipRollback) {
            // Mutant: the origin already relinquished the window, but the
            // commit never happened — nobody owns it.
            self.owner_mask &= !(1 << flight.origin);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transition {
    /// The MC moves to another cell; an in-flight handoff aborts and a
    /// new one starts toward the new cell.
    Migrate(u8),
    /// The leg on the backbone lands at the target.
    DeliverLeg,
    /// The leg on the backbone is lost and retransmitted (re-billed).
    LoseLeg,
    /// The handoff deadline fires: abort, roll back, re-initiate.
    DeadlineAbort,
    /// The MC crashes and reconnects: the in-flight handoff aborts and
    /// reconnection re-initiates it if the MC is away from the owner.
    CrashReconnect,
    /// The backbone duplicates the in-flight commit leg.
    DuplicateCommit,
    /// A duplicated (possibly long-delayed, reordered past later
    /// handoffs) commit ghost lands.
    DeliverGhost,
}

impl Transition {
    fn name(self) -> String {
        match self {
            Transition::Migrate(cell) => format!("migrate({cell})"),
            Transition::DeliverLeg => "deliver".to_owned(),
            Transition::LoseLeg => "lose".to_owned(),
            Transition::DeadlineAbort => "deadline".to_owned(),
            Transition::CrashReconnect => "crash".to_owned(),
            Transition::DuplicateCommit => "dup".to_owned(),
            Transition::DeliverGhost => "ghost".to_owned(),
        }
    }
}

fn enabled(config: &HandoffConfig, state: &State) -> Vec<Transition> {
    let mut transitions = Vec::with_capacity(8);
    if state.flight.is_some() {
        transitions.push(Transition::DeliverLeg);
        if state.losses_left > 0 {
            transitions.push(Transition::LoseLeg);
        }
        if state.faults_left > 0 {
            transitions.push(Transition::DeadlineAbort);
        }
    }
    if state.migrations_left > 0 {
        for cell in 0..config.cells {
            if cell != state.mc_cell {
                transitions.push(Transition::Migrate(cell));
            }
        }
    }
    if state.faults_left > 0 {
        transitions.push(Transition::CrashReconnect);
    }
    if state.dups_left > 0
        && state.ghost.is_none()
        && state.flight.is_some_and(|f| f.leg == HandoffLeg::Commit)
    {
        transitions.push(Transition::DuplicateCommit);
    }
    if state.ghost.is_some() {
        transitions.push(Transition::DeliverGhost);
    }
    transitions
}

fn apply(config: &HandoffConfig, state: &mut State, transition: Transition) {
    match transition {
        Transition::Migrate(cell) => {
            debug_assert!(state.migrations_left > 0);
            state.migrations_left -= 1;
            state.mc_cell = cell;
            state.abort(config);
            if state.owner_mask != 1 << state.mc_cell && state.owner_mask != 0 {
                state.initiate(config);
            }
        }
        Transition::DeliverLeg => {
            let Some(flight) = state.flight else {
                unreachable!("deliver is enabled only with a flight")
            };
            match flight.leg {
                HandoffLeg::Request => {
                    // The request landed; the origin ships the next leg —
                    // the state transfer, or (mutant) the commit straight
                    // away.
                    let next = if config.fault == Some(HandoffFault::CommitWithoutTransfer) {
                        HandoffLeg::Commit
                    } else {
                        HandoffLeg::Transfer
                    };
                    if let Some(f) = &mut state.flight {
                        f.leg = next;
                    }
                    state.bill_leg(config);
                }
                HandoffLeg::Transfer => {
                    if let Some(f) = &mut state.flight {
                        f.transfer_landed = true;
                        f.leg = HandoffLeg::Commit;
                    }
                    state.bill_leg(config);
                }
                HandoffLeg::Commit => {
                    let Some(f) = state.flight.take() else {
                        unreachable!("commit leg implies a flight")
                    };
                    state.settled += f.messages;
                    state.commit(config, f.origin, f.target, f.transfer_landed);
                }
            }
        }
        Transition::LoseLeg => {
            debug_assert!(state.losses_left > 0);
            state.losses_left -= 1;
            // The backbone ARQ retransmits the lost leg; the repeat
            // attempt is billed like the original.
            state.bill_leg(config);
        }
        Transition::DeadlineAbort => {
            debug_assert!(state.faults_left > 0);
            state.faults_left -= 1;
            state.abort(config);
            if state.owner_mask != 1 << state.mc_cell && state.owner_mask != 0 {
                state.initiate(config);
            }
        }
        Transition::CrashReconnect => {
            debug_assert!(state.faults_left > 0);
            state.faults_left -= 1;
            state.abort(config);
            // Reconnection re-initiates the migration-in-progress if the
            // MC came back up away from the owner cell.
            if state.owner_mask != 1 << state.mc_cell && state.owner_mask != 0 {
                state.initiate(config);
            }
        }
        Transition::DuplicateCommit => {
            debug_assert!(state.dups_left > 0);
            state.dups_left -= 1;
            let Some(flight) = state.flight else {
                unreachable!("dup is enabled only with a commit in flight")
            };
            // Ghost copies are duplicates of an already-billed attempt:
            // they ride free and must be fenced at delivery.
            state.ghost = Some(Ghost {
                epoch: flight.epoch,
                target: flight.target,
            });
        }
        Transition::DeliverGhost => {
            let Some(ghost) = state.ghost.take() else {
                unreachable!("ghost delivery is enabled only with a ghost")
            };
            let fresh = state
                .flight
                .is_some_and(|f| f.epoch == ghost.epoch && f.leg == HandoffLeg::Commit);
            if fresh {
                // The ghost overtook the original: it commits the live
                // flight (exactly-once is per epoch, not per copy).
                let Some(f) = state.flight.take() else {
                    unreachable!("fresh ghost implies a flight")
                };
                state.settled += f.messages;
                state.commit(config, f.origin, f.target, f.transfer_landed);
            } else if config.fault == Some(HandoffFault::SkipEpochFence) {
                // Mutant: the stale ghost is applied as if current,
                // re-committing a finished handoff.
                let origin = state.owner_mask.trailing_zeros().min(7) as u8;
                state.commit(config, origin, ghost.target, false);
            }
            // Correct behavior: the epoch fence discards the stale ghost;
            // nothing changes.
        }
    }
}

/// Judges one reached state against the three handoff invariants.
fn verify_state(state: &State, trace: &[Transition]) -> Result<(), HandoffViolation> {
    let violation = |invariant: HandoffInvariant, detail: String| HandoffViolation {
        invariant,
        detail,
        trace: trace.iter().map(|t| t.name()).collect(),
    };
    let owners = state.owner_mask.count_ones();
    if owners != 1 {
        return Err(violation(
            HandoffInvariant::SingleOwnerAcrossCells,
            format!(
                "{owners} cells own the window (mask {:#04b})",
                state.owner_mask
            ),
        ));
    }
    if state.flight.is_none() && state.owner_mask != 1 << state.window_at {
        return Err(violation(
            HandoffInvariant::NoLostWindow,
            format!(
                "owner mask {:#04b} but the window state sits at cell {}",
                state.owner_mask, state.window_at
            ),
        ));
    }
    let in_flight = state.flight.map_or(0, |f| f.messages);
    if state.billed != state.settled + state.aborted + in_flight {
        return Err(violation(
            HandoffInvariant::BillingIdentity,
            format!(
                "billed {} != settled {} + aborted {} + in-flight {}",
                state.billed, state.settled, state.aborted, in_flight
            ),
        ));
    }
    if state.invalidation_billed != state.invalidation_expected {
        return Err(violation(
            HandoffInvariant::BillingIdentity,
            format!(
                "invalidation billed {} != expected {}",
                state.invalidation_billed, state.invalidation_expected
            ),
        ));
    }
    Ok(())
}

/// Runs one bounded handoff exploration.
pub fn check_handoff(config: &HandoffConfig) -> HandoffReport {
    let mut report = HandoffReport {
        cells: config.cells,
        depth: config.depth,
        lossy: config.max_losses > 0,
        faulty: config.max_faults > 0,
        ghosts: config.max_dups > 0,
        states: 1,
        transitions: 0,
        violations: Vec::new(),
    };
    let initial = State::initial(config);
    let mut trace = Vec::new();
    if let Err(v) = verify_state(&initial, &trace) {
        report.violations.push(v);
        return report;
    }
    let mut seen = HashSet::new();
    seen.insert(initial.clone());
    dfs(config, &initial, 0, &mut seen, &mut trace, &mut report);
    report
}

fn dfs(
    config: &HandoffConfig,
    state: &State,
    depth: usize,
    seen: &mut HashSet<State>,
    trace: &mut Vec<Transition>,
    report: &mut HandoffReport,
) {
    if depth == config.depth || !report.violations.is_empty() {
        return;
    }
    for transition in enabled(config, state) {
        let mut child = state.clone();
        trace.push(transition);
        apply(config, &mut child, transition);
        report.transitions += 1;
        if let Err(v) = verify_state(&child, trace) {
            report.violations.push(v);
        }
        if report.violations.is_empty() && seen.insert(child.clone()) {
            report.states += 1;
            dfs(config, &child, depth + 1, seen, trace, report);
        }
        trace.pop();
        if !report.violations.is_empty() {
            return;
        }
    }
}

/// Explores the handoff protocol in all four modes — bare migrations,
/// lossy backbone, abort/crash faults, commit ghosts — and the full
/// composition, over 2 and 3 cells; returns one report per run.
pub fn handoff_sweep(depth: usize) -> Vec<HandoffReport> {
    let mut reports = Vec::new();
    for cells in [2u8, 3] {
        reports.push(check_handoff(&HandoffConfig::new(cells, depth)));
        reports.push(check_handoff(&HandoffConfig::new(cells, depth).lossy()));
        reports.push(check_handoff(&HandoffConfig::new(cells, depth).faulty()));
        reports.push(check_handoff(
            &HandoffConfig::new(cells, depth).faulty().ghosts(),
        ));
        reports.push(check_handoff(
            &HandoffConfig::new(cells, depth).lossy().faulty().ghosts(),
        ));
    }
    reports
}
