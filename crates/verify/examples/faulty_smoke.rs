//! Quick manual probe of the faulty-mode checker: state counts, timing and
//! mutation catches at a given depth. Not part of the test suite.

use mdr_core::PolicySpec;
use mdr_verify::{check, CheckConfig, Fault};

fn main() {
    let depth: usize = std::env::args()
        .nth(1)
        .and_then(|d| d.parse().ok())
        .unwrap_or(12);
    for spec in [
        PolicySpec::SlidingWindow { k: 1 },
        PolicySpec::SlidingWindow { k: 3 },
        PolicySpec::St2,
        PolicySpec::T2 { m: 2 },
    ] {
        let start = std::time::Instant::now();
        let report = check(&CheckConfig::new(spec, depth).faulty());
        println!(
            "{spec:?}: states={} transitions={} verified={} in {:?}",
            report.states,
            report.transitions,
            report.verified(),
            start.elapsed()
        );
        if !report.verified() {
            println!("  FIRST: {}", report.violations[0]);
        }
    }
    for fault in [
        Fault::LieAboutReplicaOnReconnect,
        Fault::SkipRecoveryRefresh,
        Fault::DropReconnect,
    ] {
        let spec = if fault == Fault::SkipRecoveryRefresh {
            PolicySpec::St2
        } else {
            PolicySpec::SlidingWindow { k: 3 }
        };
        let report = check(&CheckConfig::new(spec, depth).faulty().with_fault(fault));
        match report.violations.first() {
            Some(v) => println!("{fault:?} on {spec:?}: caught as {}", v.invariant),
            None => println!(
                "{fault:?} on {spec:?}: NOT CAUGHT ({} states)",
                report.states
            ),
        }
    }
}
