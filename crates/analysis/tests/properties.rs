//! Property-based tests of the closed-form analysis.

use mdr_analysis::{
    average_expected_cost, competitive_factor, connection, expected_cost, integrate::integrate,
    message, pi_k, transition_probability,
};
use mdr_core::{CostModel, PolicySpec};
use proptest::prelude::*;

fn arb_odd_k() -> impl Strategy<Value = usize> {
    (0usize..60).prop_map(|n| 2 * n + 1)
}

fn arb_theta() -> impl Strategy<Value = f64> {
    0.0f64..=1.0
}

fn arb_omega() -> impl Strategy<Value = f64> {
    0.0f64..=1.0
}

fn arb_spec() -> impl Strategy<Value = PolicySpec> {
    prop_oneof![
        Just(PolicySpec::St1),
        Just(PolicySpec::St2),
        arb_odd_k().prop_map(|k| PolicySpec::SlidingWindow { k }),
        (1usize..20).prop_map(|m| PolicySpec::T1 { m }),
        (1usize..20).prop_map(|m| PolicySpec::T2 { m }),
    ]
}

proptest! {
    /// π_k is a probability, decreasing in θ, with the read/write symmetry.
    #[test]
    fn pi_k_is_a_symmetric_decreasing_probability(k in arb_odd_k(), theta in arb_theta()) {
        let p = pi_k(k, theta);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((pi_k(k, 1.0 - theta) - (1.0 - p)).abs() < 1e-9);
        let eps = 0.01;
        if theta + eps <= 1.0 {
            prop_assert!(pi_k(k, theta + eps) <= p + 1e-9);
        }
    }

    /// The Eq. 11 transition term is a probability bounded by both the
    /// allocation opportunities: it can never exceed min(θ, 1−θ).
    #[test]
    fn transition_probability_is_bounded(k in arb_odd_k(), theta in arb_theta()) {
        let t = transition_probability(k, theta);
        prop_assert!(t >= 0.0);
        prop_assert!(t <= theta.min(1.0 - theta) + 1e-12, "{t}");
    }

    /// Expected costs are well-formed everywhere: finite, non-negative, and
    /// never above the per-request maximum 1 + ω.
    #[test]
    fn expected_costs_are_well_formed(
        spec in arb_spec(),
        theta in arb_theta(),
        omega in arb_omega(),
    ) {
        for model in [CostModel::Connection, CostModel::message(omega)] {
            let e = expected_cost(spec, model, theta);
            prop_assert!(e.is_finite() && e >= -1e-12);
            let cap = match model { CostModel::Connection => 1.0, CostModel::Message { omega } => 1.0 + omega };
            prop_assert!(e <= cap + 1e-9, "{spec} {model} θ={theta}: {e} > {cap}");
        }
    }

    /// Theorem 2 for arbitrary (k, θ): the window never beats the static
    /// envelope in the connection model.
    #[test]
    fn theorem_2_everywhere(k in arb_odd_k(), theta in arb_theta()) {
        prop_assert!(connection::exp_swk(k, theta) >= connection::optimal_exp(theta) - 1e-9);
    }

    /// Theorem 9 for arbitrary (k, θ, ω): SWk (k > 1) never beats the
    /// ST1/ST2/SW1 envelope in the message model.
    #[test]
    fn theorem_9_everywhere(k in arb_odd_k(), theta in arb_theta(), omega in arb_omega()) {
        prop_assume!(k > 1);
        prop_assert!(message::exp_swk(k, theta, omega) >= message::optimal_exp(theta, omega) - 1e-9);
    }

    /// Eq. 1 as a property: AVG is the integral of EXP for every policy
    /// and model (quadrature tolerance 1e-5).
    #[test]
    fn avg_is_integral_of_exp(spec in arb_spec(), omega in arb_omega()) {
        for model in [CostModel::Connection, CostModel::message(omega)] {
            let quad = integrate(|t| expected_cost(spec, model, t), 0.0, 1.0, 1e-9);
            let avg = average_expected_cost(spec, model);
            prop_assert!((quad - avg).abs() < 1e-5, "{spec} {model}: {quad} vs {avg}");
        }
    }

    /// Competitive factors: at least 1 where defined, monotone in k for the
    /// window family, and reducing to the connection factor at ω = 0 for
    /// k > 1.
    #[test]
    fn factors_are_sane(k in arb_odd_k(), omega in arb_omega()) {
        let spec = PolicySpec::SlidingWindow { k };
        for model in [CostModel::Connection, CostModel::message(omega)] {
            let f = competitive_factor(spec, model).expect("SWk is competitive");
            prop_assert!(f >= 1.0);
        }
        if k > 1 {
            let f0 = competitive_factor(spec, CostModel::message(0.0)).unwrap();
            prop_assert!((f0 - (k as f64 + 1.0)).abs() < 1e-12);
            let next = PolicySpec::SlidingWindow { k: k + 2 };
            prop_assert!(
                competitive_factor(next, CostModel::message(omega)).unwrap()
                    > competitive_factor(spec, CostModel::message(omega)).unwrap()
            );
        }
    }

    /// The dominance winner really has the (weakly) lowest expected cost
    /// among the three §6 candidates.
    #[test]
    fn dominance_winner_is_minimal(theta in arb_theta(), omega in arb_omega()) {
        use mdr_analysis::dominance::message_winner;
        let w = message_winner(theta, omega);
        let model = CostModel::message(omega);
        let win_cost = expected_cost(w.spec(), model, theta);
        for cand in [PolicySpec::St1, PolicySpec::St2, PolicySpec::SlidingWindow { k: 1 }] {
            prop_assert!(win_cost <= expected_cost(cand, model, theta) + 1e-9);
        }
    }

    /// AVG of SWk is monotone decreasing in k in both models (Corollaries
    /// 1 and 2).
    #[test]
    fn avg_monotone_in_k(k in arb_odd_k(), omega in arb_omega()) {
        prop_assume!(k > 1);
        prop_assert!(connection::avg_swk(k + 2) < connection::avg_swk(k));
        prop_assert!(message::avg_swk(k + 2, omega) < message::avg_swk(k, omega));
    }
}
