//! # mdr-analysis — closed-form analysis of the SIGMOD 1994 algorithms
//!
//! Implements every analytical result of **Huang, Sistla, Wolfson, "Data
//! Replication for Mobile Computers" (SIGMOD 1994)**: the expected cost
//! `EXP_A(θ)`, the average expected cost `AVG_A = ∫₀¹ EXP_A(θ)dθ`, the
//! competitiveness factors, the message-model dominance map (Figure 1) and
//! the window-size threshold `k₀(ω)` (Figure 2).
//!
//! Organisation:
//!
//! * [`connection`] — §5 results (Eqs. 2–6, T1m/T2m);
//! * [`message`] — §6 results (Eqs. 7–12);
//! * [`competitive`] — §5.3/§6.4 worst-case factors (Thms 4, 11, 12);
//! * [`dominance`] — Theorem 6 regions / Figure 1;
//! * [`window_choice`] — Corollaries 3–4 / Figure 2 / §9 guidance;
//! * [`pi`] — the window-majority probability π_k (Eq. 4);
//! * [`exact`] — exact 2^k state-space enumeration that verifies Eqs. 5/9/11
//!   against the real policy to machine precision;
//! * [`variance`] — marginal per-request cost variance (second-moment
//!   extension, enumeration-verified);
//! * [`special`], [`integrate`] — numerics (log-space binomials, adaptive
//!   Simpson used to cross-check every closed form).
//!
//! The top level re-exports uniform dispatchers keyed by
//! [`mdr_core::PolicySpec`] and [`mdr_core::CostModel`]:
//!
//! ```
//! use mdr_core::{CostModel, PolicySpec};
//! use mdr_analysis::{average_expected_cost, expected_cost};
//!
//! let sw9 = PolicySpec::SlidingWindow { k: 9 };
//! let exp = expected_cost(sw9, CostModel::Connection, 0.3);
//! let avg = average_expected_cost(sw9, CostModel::Connection);
//! assert!(exp > 0.0 && avg < 0.5);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

/// Competitiveness factors (§5.3, §6.4, §7.1).
pub mod competitive;
/// Closed forms in the connection cost model (§5).
pub mod connection;
/// Expected-cost dominance regions (Theorems 2 & 6, Figure 1).
pub mod dominance;
/// Exact SWk verification by enumerating §4 window states (§5, §6).
pub mod exact;
/// Quadrature for the Eq. 1 AVG integral.
pub mod integrate;
/// Closed forms in the message cost model (§6).
pub mod message;
/// The window-majority probability π_k (Eq. 4) and Eq. 11's rate term.
pub mod pi;
/// Stable special functions behind the Eq. 4 binomial sums.
pub mod special;
/// Cost variance — second moments beyond the paper's §5/§6 means.
pub mod variance;
/// Window-size guidance (Corollaries 3 & 4, §9).
pub mod window_choice;

pub use competitive::competitive_factor;
pub use pi::{pi_k, transition_probability};

use mdr_core::{CostModel, PolicySpec};

/// `EXP_A(θ)`: the expected communication cost per relevant request of
/// policy `spec` under `model` when the write fraction is `theta` — the
/// §5/§6 EXP measure, dispatched over all policies and both cost models.
pub fn expected_cost(spec: PolicySpec, model: CostModel, theta: f64) -> f64 {
    match model {
        CostModel::Connection => match spec {
            PolicySpec::St1 => connection::exp_st1(theta),
            PolicySpec::St2 => connection::exp_st2(theta),
            PolicySpec::SlidingWindow { k } => connection::exp_swk(k, theta),
            PolicySpec::T1 { m } => connection::exp_t1(m, theta),
            PolicySpec::T2 { m } => connection::exp_t2(m, theta),
        },
        CostModel::Message { omega } => match spec {
            PolicySpec::St1 => message::exp_st1(theta, omega),
            PolicySpec::St2 => message::exp_st2(theta, omega),
            PolicySpec::SlidingWindow { k } => message::exp_swk(k, theta, omega),
            PolicySpec::T1 { m } => message::exp_t1(m, theta, omega),
            PolicySpec::T2 { m } => message::exp_t2(m, theta, omega),
        },
    }
}

/// `AVG_A = ∫₀¹ EXP_A(θ) dθ` (Eq. 1): the average expected cost of `spec`
/// under `model` when θ is unknown or drifts uniformly.
pub fn average_expected_cost(spec: PolicySpec, model: CostModel) -> f64 {
    match model {
        CostModel::Connection => match spec {
            PolicySpec::St1 => connection::avg_st1(),
            PolicySpec::St2 => connection::avg_st2(),
            PolicySpec::SlidingWindow { k } => connection::avg_swk(k),
            PolicySpec::T1 { m } => connection::avg_t1(m),
            PolicySpec::T2 { m } => connection::avg_t2(m),
        },
        CostModel::Message { omega } => match spec {
            PolicySpec::St1 => message::avg_st1(omega),
            PolicySpec::St2 => message::avg_st2(omega),
            PolicySpec::SlidingWindow { k } => message::avg_swk(k, omega),
            // No closed form was derived for the T policies in the message
            // model; integrate the (derived, closed-form) EXP.
            PolicySpec::T1 { m } => {
                integrate::integrate(|t| message::exp_t1(m, t, omega), 0.0, 1.0, 1e-10)
            }
            PolicySpec::T2 { m } => {
                integrate::integrate(|t| message::exp_t2(m, t, omega), 0.0, 1.0, 1e-10)
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_matches_modules() {
        assert_eq!(
            expected_cost(PolicySpec::St1, CostModel::Connection, 0.3),
            connection::exp_st1(0.3)
        );
        assert_eq!(
            expected_cost(
                PolicySpec::SlidingWindow { k: 5 },
                CostModel::message(0.5),
                0.3
            ),
            message::exp_swk(5, 0.3, 0.5)
        );
        assert_eq!(
            average_expected_cost(PolicySpec::SlidingWindow { k: 9 }, CostModel::Connection),
            connection::avg_swk(9)
        );
    }

    #[test]
    fn every_policy_has_finite_costs_everywhere() {
        for spec in PolicySpec::roster(&[1, 3, 15, 95], &[1, 5, 15]) {
            for model in [
                CostModel::Connection,
                CostModel::message(0.0),
                CostModel::message(1.0),
            ] {
                for i in 0..=10 {
                    let theta = f64::from(i) / 10.0;
                    let e = expected_cost(spec, model, theta);
                    assert!(e.is_finite() && e >= 0.0, "{spec} {model} θ={theta}: {e}");
                    assert!(
                        e <= 2.0 + 1e-12,
                        "per-request cost can never exceed 1+ω ≤ 2"
                    );
                }
                let avg = average_expected_cost(spec, model);
                assert!(
                    avg.is_finite() && (0.0..=1.0).contains(&avg),
                    "{spec} {model}: {avg}"
                );
            }
        }
    }

    #[test]
    fn avg_is_the_integral_of_exp_for_every_policy() {
        // Eq. 1 as an executable identity, for all families and both models.
        for spec in PolicySpec::roster(&[1, 3, 9], &[2, 7]) {
            for model in [CostModel::Connection, CostModel::message(0.35)] {
                let quad = integrate::integrate(|t| expected_cost(spec, model, t), 0.0, 1.0, 1e-10);
                let avg = average_expected_cost(spec, model);
                assert!((quad - avg).abs() < 1e-6, "{spec} {model}: {quad} vs {avg}");
            }
        }
    }
}
