//! Numerically stable special functions used by the closed-form analysis.
//!
//! The probabilistic analysis of SWk needs binomial tail probabilities
//! (Eq. 4) for window sizes that can reach the hundreds (Figure 2 plots up
//! to k = 95), where naive `C(k, j) θ^j (1-θ)^{k-j}` evaluation overflows
//! the binomial coefficient and underflows the powers. Everything here works
//! in log space.

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9 coefficients; |relative error| < 1e-13 for x > 0) —
/// backs the Eq. 4 binomial tails.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)` — building block of the Eq. 4 binomial coefficients.
pub fn ln_factorial(n: u64) -> f64 {
    // Exact for small n (cheap and bit-accurate in tests), Lanczos beyond.
    const SMALL: usize = 21;
    if (n as usize) < SMALL {
        let mut f = 1.0f64;
        for i in 2..=n {
            f *= i as f64;
        }
        f.ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)` (the Eq. 4 coefficient, in log space); `-inf` when
/// `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// The Eq. 4 binomial coefficient `C(n, k)` as an `f64` (may round for
/// n ≳ 60).
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    ln_binomial(n, k).exp()
}

/// Binomial probability mass `C(n, j) p^j (1-p)^{n-j}` — the Eq. 4
/// window-state term — stable in log space;
/// handles the p ∈ {0, 1} edge cases exactly.
pub fn binomial_pmf(n: u64, j: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    if j > n {
        return 0.0;
    }
    if p.total_cmp(&0.0).is_eq() {
        return if j == 0 { 1.0 } else { 0.0 };
    }
    if p.total_cmp(&1.0).is_eq() {
        return if j == n { 1.0 } else { 0.0 };
    }
    let ln = ln_binomial(n, j) + j as f64 * p.ln() + (n - j) as f64 * (1.0 - p).ln();
    ln.exp()
}

/// Lower binomial CDF `P(X ≤ j)` for `X ~ Bin(n, p)` via stable term
/// recurrence seeded from the largest retained term — evaluates the Eq. 4
/// majority sums.
pub fn binomial_cdf(n: u64, j: u64, p: f64) -> f64 {
    if j >= n {
        return 1.0;
    }
    if p.total_cmp(&0.0).is_eq() {
        return 1.0;
    }
    if p.total_cmp(&1.0).is_eq() {
        return 0.0;
    }
    // Sum pmf terms from 0..=j. Work downward from term j using the
    // recurrence pmf(i-1) = pmf(i) · i (1-p) / ((n-i+1) p), which keeps every
    // factor finite; the first term is computed in log space.
    let mut term = binomial_pmf(n, j, p);
    let mut sum = term;
    let mut i = j;
    while i > 0 && term > 0.0 {
        term *= (i as f64) * (1.0 - p) / (((n - i + 1) as f64) * p);
        sum += term;
        i -= 1;
    }
    sum.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * b.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n+1) = n!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            assert_close(ln_gamma(n as f64 + 1.0), f64::ln(f), 1e-12);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        assert_close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(0.25)Γ(0.75) = π / sin(π/4).
        let lhs = ln_gamma(0.25) + ln_gamma(0.75);
        let rhs = (std::f64::consts::PI / (std::f64::consts::FRAC_PI_4).sin()).ln();
        assert_close(lhs, rhs, 1e-12);
    }

    #[test]
    fn ln_factorial_continuity_at_table_boundary() {
        // The exact table hands over to Lanczos at n = 21.
        for n in 18..25u64 {
            let direct: f64 = (2..=n).map(|i| (i as f64).ln()).sum();
            assert_close(ln_factorial(n), direct, 1e-12);
        }
    }

    #[test]
    fn binomial_small_values_exact() {
        assert_eq!(binomial(5, 0).round(), 1.0);
        assert_eq!(binomial(5, 2).round(), 10.0);
        assert_eq!(binomial(10, 5).round(), 252.0);
        assert_eq!(binomial(3, 7), 0.0);
    }

    #[test]
    fn binomial_large_does_not_overflow() {
        let b = binomial(1000, 500);
        assert!(b.is_finite() || b == f64::INFINITY);
        // ln C(1000, 500) ≈ 1000 ln 2 − ½ ln(500π)
        let expected = 1000.0 * std::f64::consts::LN_2 - 0.5 * (500.0 * std::f64::consts::PI).ln();
        assert_close(ln_binomial(1000, 500), expected, 1e-3);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &p in &[0.1, 0.5, 0.77] {
            for &n in &[1u64, 5, 17, 64] {
                let total: f64 = (0..=n).map(|j| binomial_pmf(n, j, p)).sum();
                assert_close(total, 1.0, 1e-10);
            }
        }
    }

    #[test]
    fn pmf_edge_probabilities() {
        assert_eq!(binomial_pmf(7, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(7, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(7, 7, 1.0), 1.0);
        assert_eq!(binomial_pmf(7, 6, 1.0), 0.0);
        assert_eq!(binomial_pmf(3, 9, 0.5), 0.0);
    }

    #[test]
    fn cdf_matches_term_sum() {
        for &p in &[0.2, 0.5, 0.9] {
            for &n in &[3u64, 11, 41] {
                for j in 0..n {
                    let direct: f64 = (0..=j).map(|i| binomial_pmf(n, i, p)).sum();
                    assert_close(binomial_cdf(n, j, p), direct, 1e-9);
                }
            }
        }
    }

    #[test]
    fn cdf_edges() {
        assert_eq!(binomial_cdf(5, 5, 0.3), 1.0);
        assert_eq!(binomial_cdf(5, 9, 0.3), 1.0);
        assert_eq!(binomial_cdf(5, 2, 0.0), 1.0);
        assert_eq!(binomial_cdf(5, 2, 1.0), 0.0);
    }

    #[test]
    fn cdf_is_monotone_in_j_and_p() {
        let n = 31;
        for j in 0..n - 1 {
            assert!(binomial_cdf(n, j, 0.4) <= binomial_cdf(n, j + 1, 0.4) + 1e-12);
        }
        for j in [5u64, 15, 25] {
            assert!(binomial_cdf(n, j, 0.3) >= binomial_cdf(n, j, 0.6) - 1e-12);
        }
    }

    #[test]
    fn cdf_stable_for_large_n() {
        // P(X ≤ n/2) for X ~ Bin(2001, 0.5) must be ≈ 0.5 (plus half the
        // central term), not NaN/0 — the regime where naive evaluation dies.
        let v = binomial_cdf(2001, 1000, 0.5);
        assert!((v - 0.5).abs() < 0.02, "{v}");
        // Far tail underflows gracefully to ~0, never NaN.
        let tail = binomial_cdf(2001, 100, 0.9);
        assert!((0.0..1e-100).contains(&tail));
    }
}
