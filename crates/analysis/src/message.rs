//! Closed-form analysis in the **message cost model** (§6).
//!
//! `ω ∈ [0, 1]` is the control-message/data-message cost ratio. Results:
//!
//! | algorithm | EXP(θ, ω) | AVG(ω) |
//! |---|---|---|
//! | ST1 | `(1+ω)(1−θ)` (Eq. 7) | `(1+ω)/2` (Eq. 8) |
//! | ST2 | `θ` (Eq. 7) | `1/2` (Eq. 8) |
//! | SW1 | `θ(1−θ)(1+2ω)` (Thm 5 / Eq. 9) | `(1+2ω)/6` (Thm 7 / Eq. 10) |
//! | SWk, k>1 | `π_k·θ + (1−π_k)(1−θ)(1+ω) + ω·C(2n,n)θ^{n+1}(1−θ)^{n+1}` (Thm 8 / Eq. 11) | `1/4 + 1/(4(k+2)) + ω[1/8 + 3/(8(k+2)) + 1/(4k(k+2))]` (Thm 10 / Eq. 12) |
//!
//! The Eq. 11 reconstruction (the OCR of the paper garbles it) is validated
//! by the fact that its integral over θ reproduces Eq. 12 *exactly* — see
//! `avg_swk_matches_quadrature_of_exp` below and DESIGN.md §2.

use crate::pi::{pi_k, transition_probability};

fn check_theta(theta: f64) {
    assert!((0.0..=1.0).contains(&theta), "θ out of range: {theta}");
}

fn check_omega(omega: f64) {
    assert!((0.0..=1.0).contains(&omega), "ω out of range: {omega}");
}

fn check_odd(k: usize) {
    assert!(k >= 1 && k % 2 == 1, "window size must be odd, got {k}");
}

/// `EXP_ST1(θ, ω) = (1+ω)(1−θ)` (Eq. 7): every read needs a control request
/// plus a data response.
pub fn exp_st1(theta: f64, omega: f64) -> f64 {
    check_theta(theta);
    check_omega(omega);
    (1.0 + omega) * (1.0 - theta)
}

/// `EXP_ST2(θ, ω) = θ` (Eq. 7): every write is one data message.
pub fn exp_st2(theta: f64, _omega: f64) -> f64 {
    check_theta(theta);
    theta
}

/// `AVG_ST1 = (1+ω)/2` (Eq. 8).
pub fn avg_st1(omega: f64) -> f64 {
    check_omega(omega);
    (1.0 + omega) / 2.0
}

/// `AVG_ST2 = 1/2` (Eq. 8).
pub fn avg_st2(_omega: f64) -> f64 {
    0.5
}

/// `EXP_SW1(θ, ω) = θ(1−θ)(1+2ω)` (Theorem 5 / Eq. 9).
///
/// Stationary argument: the replica is present iff the previous request was
/// a read (probability 1−θ). A read arriving without the replica
/// (probability θ(1−θ) by independence) costs `1+ω`; a write arriving with
/// the replica (probability θ(1−θ)) costs `ω` (delete-request only).
pub fn exp_sw1(theta: f64, omega: f64) -> f64 {
    check_theta(theta);
    check_omega(omega);
    theta * (1.0 - theta) * (1.0 + 2.0 * omega)
}

/// `AVG_SW1 = (1+2ω)/6` (Theorem 7 / Eq. 10).
pub fn avg_sw1(omega: f64) -> f64 {
    check_omega(omega);
    (1.0 + 2.0 * omega) / 6.0
}

/// `EXP_SWk(θ, ω)` for `k = 2n+1 > 1` (Theorem 8 / Eq. 11):
///
/// ```text
/// π_k·θ·1                       propagated writes (replica present)
/// + (1−π_k)(1−θ)(1+ω)           remote reads (replica absent)
/// + ω·C(2n,n)θ^{n+1}(1−θ)^{n+1} deallocations (delete-request after the
///                               majority-flipping write)
/// ```
///
/// Allocations ride the read response for free; deallocations pay one extra
/// control message.
pub fn exp_swk(k: usize, theta: f64, omega: f64) -> f64 {
    check_odd(k);
    check_theta(theta);
    check_omega(omega);
    if k == 1 {
        return exp_sw1(theta, omega);
    }
    let pi = pi_k(k, theta);
    pi * theta
        + (1.0 - pi) * (1.0 - theta) * (1.0 + omega)
        + omega * transition_probability(k, theta)
}

/// `AVG_SWk(ω)` for `k > 1` (Theorem 10 / Eq. 12):
/// `1/4 + 1/(4(k+2)) + ω·[1/8 + 3/(8(k+2)) + 1/(4k(k+2))]`.
pub fn avg_swk(k: usize, omega: f64) -> f64 {
    check_odd(k);
    check_omega(omega);
    if k == 1 {
        return avg_sw1(omega);
    }
    let kf = k as f64;
    0.25 + 1.0 / (4.0 * (kf + 2.0))
        + omega * (0.125 + 3.0 / (8.0 * (kf + 2.0)) + 1.0 / (4.0 * kf * (kf + 2.0)))
}

/// Corollary 2's lower bound: `AVG_SWk > 1/4 + ω/8` for every `k > 1`
/// (the k → ∞ limit of Eq. 12).
pub fn avg_swk_lower_bound(omega: f64) -> f64 {
    check_omega(omega);
    0.25 + omega / 8.0
}

/// `EXP_T1m(θ, ω) = (1+ω)(1−θ)(1−(1−θ)^m) + ωθ(1−θ)^m` — message-model
/// analogue of the §7.1 connection formula, derived by the same
/// renewal-reward argument (phase-1 remote reads at `1+ω`, phase-ending
/// delete-request at `ω`); reduces to the paper's formula when both message
/// kinds cost 1. Not stated in the paper; verified by simulation in E8.
pub fn exp_t1(m: usize, theta: f64, omega: f64) -> f64 {
    assert!(m >= 1);
    check_theta(theta);
    check_omega(omega);
    let q = 1.0 - theta;
    let qm = q.powi(m as i32);
    (1.0 + omega) * q * (1.0 - qm) + omega * theta * qm
}

/// `EXP_T2m(θ, ω) = θ(1−θ^m) + (1+2ω)(1−θ)θ^m` — message-model analogue
/// of §7.1's T2m (phase-A writes at 1 with a final extra delete-request `ω`,
/// phase-ending remote read at `1+ω`). Derived; verified by simulation.
pub fn exp_t2(m: usize, theta: f64, omega: f64) -> f64 {
    assert!(m >= 1);
    check_theta(theta);
    check_omega(omega);
    let tm = theta.powi(m as i32);
    theta * (1.0 - tm) + (1.0 + 2.0 * omega) * (1.0 - theta) * tm
}

/// The pointwise lower envelope `min(EXP_ST1, EXP_ST2, EXP_SW1)` — by
/// Theorem 9 no SWk with k > 1 ever goes below it.
pub fn optimal_exp(theta: f64, omega: f64) -> f64 {
    exp_st1(theta, omega)
        .min(exp_st2(theta, omega))
        .min(exp_sw1(theta, omega))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::integrate;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn statics_match_eq_7_and_8() {
        assert_close(exp_st1(0.25, 0.4), 1.4 * 0.75, 1e-12);
        assert_eq!(exp_st2(0.25, 0.4), 0.25);
        for omega in [0.0, 0.3, 1.0] {
            assert_close(
                integrate(|t| exp_st1(t, omega), 0.0, 1.0, 1e-10),
                avg_st1(omega),
                1e-8,
            );
            assert_close(
                integrate(|t| exp_st2(t, omega), 0.0, 1.0, 1e-10),
                avg_st2(omega),
                1e-8,
            );
        }
    }

    #[test]
    fn sw1_avg_matches_quadrature() {
        for omega in [0.0, 0.25, 0.4, 0.8, 1.0] {
            let quad = integrate(|t| exp_sw1(t, omega), 0.0, 1.0, 1e-10);
            assert_close(quad, avg_sw1(omega), 1e-8);
        }
    }

    #[test]
    fn avg_swk_matches_quadrature_of_exp() {
        // The reconstruction check: integrating the rebuilt Eq. 11 must give
        // the paper's Eq. 12 exactly, for every (k, ω) tested.
        for k in [3usize, 5, 9, 15, 39, 95] {
            for omega in [0.0, 0.3, 0.45, 0.8, 1.0] {
                let quad = integrate(|t| exp_swk(k, t, omega), 0.0, 1.0, 1e-11);
                assert_close(quad, avg_swk(k, omega), 1e-7);
            }
        }
    }

    #[test]
    fn exp_swk_at_omega_zero_reduces_to_connection_model() {
        // With free control messages the message model prices exactly like
        // the connection model — for k > 1, whose only control-message uses
        // ride along data messages. (SW1's delete-request write costs ω = 0
        // here but one full connection there, so k = 1 is excluded.)
        for k in [3usize, 7, 21] {
            for theta in [0.1, 0.5, 0.85] {
                assert_close(
                    exp_swk(k, theta, 0.0),
                    crate::connection::exp_swk(k, theta),
                    1e-12,
                );
            }
        }
    }

    #[test]
    fn theorem_6_region_st1() {
        // θ > (1+ω)/(1+2ω) ⇒ ST1 < SW1 < ST2.
        let omega = 0.5;
        let theta = 0.80; // boundary is 1.5/2 = 0.75
        assert!(exp_st1(theta, omega) < exp_sw1(theta, omega));
        assert!(exp_sw1(theta, omega) < exp_st2(theta, omega));
    }

    #[test]
    fn theorem_6_region_sw1() {
        // 2ω/(1+2ω) < θ < (1+ω)/(1+2ω) ⇒ SW1 below both statics.
        let omega = 0.5;
        let theta = 0.6; // region is (0.5, 0.75)
        assert!(exp_sw1(theta, omega) < exp_st1(theta, omega));
        assert!(exp_sw1(theta, omega) < exp_st2(theta, omega));
    }

    #[test]
    fn theorem_6_region_st2() {
        // θ < 2ω/(1+2ω) ⇒ ST2 < SW1 < ST1.
        let omega = 0.5;
        let theta = 0.3; // boundary is 1/2
        assert!(exp_st2(theta, omega) < exp_sw1(theta, omega));
        assert!(exp_sw1(theta, omega) < exp_st1(theta, omega));
    }

    #[test]
    fn theorem_6_boundaries_are_exact_crossings() {
        for omega in [0.2, 0.5, 0.9] {
            let hi = (1.0 + omega) / (1.0 + 2.0 * omega);
            assert_close(exp_st1(hi, omega), exp_sw1(hi, omega), 1e-12);
            let lo = 2.0 * omega / (1.0 + 2.0 * omega);
            assert_close(exp_st2(lo, omega), exp_sw1(lo, omega), 1e-12);
        }
    }

    #[test]
    fn theorem_9_swk_never_beats_the_envelope() {
        for k in [3usize, 5, 9, 21, 95] {
            for i in 1..100 {
                let theta = f64::from(i) / 100.0;
                for omega in [0.1, 0.4, 0.45, 0.9] {
                    assert!(
                        exp_swk(k, theta, omega) >= optimal_exp(theta, omega) - 1e-10,
                        "k={k} θ={theta} ω={omega}"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem_7_ordering_of_averages() {
        // AVG_SW1 ≤ AVG_ST2 ≤ AVG_ST1 for every ω (since (1+2ω)/6 ≤ 1/2).
        for omega in [0.0, 0.4, 1.0] {
            assert!(avg_sw1(omega) <= avg_st2(omega) + 1e-12);
            assert!(avg_st2(omega) <= avg_st1(omega) + 1e-12);
        }
    }

    #[test]
    fn corollary_2_avg_decreases_in_k_with_lower_bound() {
        for omega in [0.45, 0.7, 1.0] {
            let mut prev = f64::INFINITY;
            for k in (3usize..=201).step_by(2) {
                let avg = avg_swk(k, omega);
                assert!(avg < prev, "k={k} ω={omega}");
                assert!(avg > avg_swk_lower_bound(omega), "k={k} ω={omega}");
                prev = avg;
            }
        }
    }

    #[test]
    fn corollary_3_sw1_wins_for_small_omega() {
        // ω ≤ 0.4 ⇒ AVG_SWk > AVG_SW1 for every k > 1.
        for omega in [0.0, 0.2, 0.4] {
            for k in (3usize..=301).step_by(2) {
                assert!(avg_swk(k, omega) > avg_sw1(omega), "k={k} ω={omega}");
            }
        }
    }

    #[test]
    fn large_k_beats_sw1_for_large_omega() {
        // ω > 0.4 ⇒ big enough windows beat SW1 (Corollary 4).
        assert!(avg_swk(39, 0.45) <= avg_sw1(0.45));
        assert!(avg_swk(37, 0.45) > avg_sw1(0.45));
        assert!(avg_swk(7, 0.8) <= avg_sw1(0.8));
        assert!(avg_swk(5, 0.8) > avg_sw1(0.8));
    }

    #[test]
    fn t1_message_reduces_to_connection_when_all_messages_cost_one() {
        // Pricing the T1m actions with ω = 1 *and* data = 1 is not the
        // connection model (a remote read then costs 2), so instead check
        // the independent renewal derivation directly.
        for m in [1usize, 3, 8] {
            for theta in [0.15, 0.5, 0.8] {
                for omega in [0.0, 0.5, 1.0] {
                    let p: f64 = 1.0 - theta;
                    let q = theta;
                    let et = (1.0 - p.powi(m as i32)) / (q * p.powi(m as i32));
                    let exp = ((1.0 + omega) * p * et + omega) / (et + 1.0 / q);
                    assert_close(exp_t1(m, theta, omega), exp, 1e-10);
                }
            }
        }
    }

    #[test]
    fn t2_renewal_derivation() {
        for m in [1usize, 2, 6] {
            for theta in [0.2, 0.5, 0.9] {
                for omega in [0.0, 0.4, 1.0] {
                    let q: f64 = theta;
                    let p = 1.0 - theta;
                    let ea = (1.0 - q.powi(m as i32)) / (p * q.powi(m as i32));
                    let exp = (q * ea + omega + 1.0 + omega) / (ea + 1.0 / p);
                    assert_close(exp_t2(m, theta, omega), exp, 1e-10);
                }
            }
        }
    }

    #[test]
    fn t_formulas_are_finite_at_extremes() {
        for m in [1usize, 5] {
            for omega in [0.0, 1.0] {
                assert_close(exp_t1(m, 1.0, omega), 0.0, 1e-12);
                assert!(exp_t1(m, 0.0, omega).abs() < 1e-12);
                assert_close(exp_t2(m, 0.0, omega), 0.0, 1e-12);
                assert!(exp_t2(m, 1.0, omega).abs() < 1e-12);
            }
        }
    }
}
