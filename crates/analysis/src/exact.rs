//! Exact verification of the SWk formulas by full state-space enumeration.
//!
//! Under the Poisson model the stationary window of k requests is a vector
//! of i.i.d. Bernoulli(θ) bits, so the stationary probability of a window
//! state with `w` writes is exactly `θ^w (1−θ)^{k−w}`. Enumerating all
//! `2^k` window states and running the *actual*
//! [`SlidingWindow`](mdr_core::SlidingWindow) policy
//! one step from each therefore yields the exact expected cost per request
//! — no sampling, no closed form. This module is the crate's strongest
//! internal check: Theorem 1 / Eq. 5 and the reconstructed Eq. 11 must
//! match the enumeration to machine precision, with the costs produced by
//! the real policy implementation, bit for bit.

use mdr_core::{AllocationPolicy, CostModel, Request, RequestWindow, SlidingWindow};

/// The exact expected cost per request of SWk at write fraction `theta`
/// under `model`, by enumeration of all `2^k` stationary window states —
/// an independent cross-check of the §5/§6 closed forms.
///
/// # Panics
///
/// Panics if `k` is even, zero, or greater than 20 (the enumeration is
/// `O(2^k)`).
pub fn exact_exp_swk(k: usize, theta: f64, model: CostModel) -> f64 {
    assert!(k >= 1 && k % 2 == 1, "window size must be odd, got {k}");
    assert!(
        k <= 20,
        "enumeration is exponential; use the closed forms beyond k = 20"
    );
    assert!((0.0..=1.0).contains(&theta), "θ out of range: {theta}");
    let mut total = 0.0;
    for state in 0u32..(1 << k) {
        let writes = state.count_ones() as i32;
        let p_state = theta.powi(writes) * (1.0 - theta).powi(k as i32 - writes);
        if p_state.total_cmp(&0.0).is_eq() {
            continue;
        }
        // Reconstruct the ordered window (bit i = request i, oldest first).
        let requests: Vec<Request> = (0..k)
            .map(|i| Request::from_bit((state >> i) & 1 == 1))
            .collect();
        for (req, p_req) in [(Request::Read, 1.0 - theta), (Request::Write, theta)] {
            if p_req.total_cmp(&0.0).is_eq() {
                continue;
            }
            let mut policy = SlidingWindow::with_window(RequestWindow::from_requests(&requests));
            let action = policy.on_request(req);
            total += p_state * p_req * model.price(action);
        }
    }
    total
}

/// The exact per-request deallocation probability of SWk (the Eq. 11
/// transition term), by the same enumeration.
pub fn exact_dealloc_rate(k: usize, theta: f64) -> f64 {
    assert!(k >= 1 && k % 2 == 1 && k <= 20);
    assert!((0.0..=1.0).contains(&theta));
    let mut total = 0.0;
    for state in 0u32..(1 << k) {
        let writes = state.count_ones() as i32;
        let p_state = theta.powi(writes) * (1.0 - theta).powi(k as i32 - writes);
        if p_state.total_cmp(&0.0).is_eq() {
            continue;
        }
        let requests: Vec<Request> = (0..k)
            .map(|i| Request::from_bit((state >> i) & 1 == 1))
            .collect();
        let mut policy = SlidingWindow::with_window(RequestWindow::from_requests(&requests));
        if policy.on_request(Request::Write).deallocates() {
            total += p_state * theta;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{connection, message, pi, special};

    const THETAS: [f64; 7] = [0.0, 0.1, 0.25, 0.5, 0.65, 0.9, 1.0];

    #[test]
    fn enumeration_confirms_eq_5_to_machine_precision() {
        // Theorem 1 / Eq. 5 against the real policy, exhaustively over the
        // window state space.
        for k in [1usize, 3, 5, 7, 9, 13] {
            for &theta in &THETAS {
                let exact = exact_exp_swk(k, theta, CostModel::Connection);
                let formula = connection::exp_swk(k, theta);
                assert!(
                    (exact - formula).abs() < 1e-12,
                    "k={k} θ={theta}: {exact} vs {formula}"
                );
            }
        }
    }

    #[test]
    fn enumeration_confirms_reconstructed_eq_11_to_machine_precision() {
        // The DESIGN.md §2 reconstruction of the garbled Eq. 11, proved at
        // the bit level: the enumerated cost of the real policy equals the
        // reconstructed formula exactly.
        for k in [3usize, 5, 7, 9, 13] {
            for &theta in &THETAS {
                for omega in [0.0, 0.3, 0.7, 1.0] {
                    let exact = exact_exp_swk(k, theta, CostModel::message(omega));
                    let formula = message::exp_swk(k, theta, omega);
                    assert!(
                        (exact - formula).abs() < 1e-12,
                        "k={k} θ={theta} ω={omega}: {exact} vs {formula}"
                    );
                }
            }
        }
    }

    #[test]
    fn enumeration_confirms_sw1_eq_9() {
        for &theta in &THETAS {
            for omega in [0.0, 0.5, 1.0] {
                let exact = exact_exp_swk(1, theta, CostModel::message(omega));
                let formula = message::exp_sw1(theta, omega);
                assert!((exact - formula).abs() < 1e-12, "θ={theta} ω={omega}");
            }
        }
    }

    #[test]
    fn enumeration_confirms_the_transition_term() {
        // exact_dealloc_rate ≡ C(2n, n) θ^{n+1} (1−θ)^{n+1}.
        for k in [1usize, 3, 5, 9, 13] {
            for &theta in &THETAS {
                let exact = exact_dealloc_rate(k, theta);
                let formula = pi::transition_probability(k, theta);
                assert!(
                    (exact - formula).abs() < 1e-12,
                    "k={k} θ={theta}: {exact} vs {formula}"
                );
            }
        }
    }

    #[test]
    fn stationary_weights_sum_to_one() {
        // Internal sanity on the enumeration's measure.
        for k in [3usize, 7, 11] {
            for &theta in &[0.2f64, 0.5, 0.8] {
                let total: f64 = (0u32..(1 << k))
                    .map(|s| {
                        let w = s.count_ones() as i32;
                        theta.powi(w) * (1.0f64 - theta).powi(k as i32 - w)
                    })
                    .sum();
                assert!((total - 1.0).abs() < 1e-12);
                // …and the number of states with j writes is C(k, j).
                let with_two: usize = (0u32..(1 << k)).filter(|s| s.count_ones() == 2).count();
                assert_eq!(with_two as f64, special::binomial(k as u64, 2).round());
            }
        }
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn large_k_is_rejected() {
        let _ = exact_exp_swk(21, 0.5, CostModel::Connection);
    }
}
