//! Per-request cost *variance* — second-moment analysis beyond the paper.
//!
//! The paper characterizes policies by their expected cost. For
//! budget-style questions ("how variable is my monthly bill?") the
//! marginal distribution of the per-request cost matters too. In the
//! stationary regime that distribution is explicit: the request is a write
//! with probability θ, the replica is present with probability π_k, and a
//! deallocation (the only `1 + ω` write) happens with the Eq. 11 transition
//! probability, so the cost takes one of the values `{0, ω, 1, 1 + ω}` with
//! closed-form probabilities.
//!
//! **Caveat (documented, tested):** successive request costs are
//! *correlated* through the window state, so the variance of a mean over n
//! requests is not `Var/n`; these are marginal single-request moments,
//! verified against exact state-space enumeration.

use crate::pi::{pi_k, transition_probability};
use mdr_core::CostModel;

fn check(theta: f64) {
    assert!((0.0..=1.0).contains(&theta), "θ out of range: {theta}");
}

/// Marginal per-request cost variance of ST1 (second moment of the
/// §5/§6 per-request cost): the cost is `1` (connection)
/// or `1 + ω` (message) with probability `1 − θ`, else 0.
pub fn var_st1(theta: f64, model: CostModel) -> f64 {
    check(theta);
    let c = match model {
        CostModel::Connection => 1.0,
        CostModel::Message { omega } => 1.0 + omega,
    };
    c * c * (1.0 - theta) * theta
}

/// Marginal per-request cost variance of ST2 (second moment of the
/// §5/§6 per-request cost): the cost is 1 with probability θ in both
/// models.
pub fn var_st2(theta: f64, _model: CostModel) -> f64 {
    check(theta);
    theta * (1.0 - theta)
}

/// Marginal per-request cost variance of SWk — second-moment companion
/// to the §5/§6 EXP_SWk, built from Eq. 4's π_k.
///
/// Connection model: the cost is Bernoulli(`EXP_SWk`), so
/// `Var = EXP(1 − EXP)`. Message model: the cost takes `1` on kept
/// propagated writes (probability `θπ_k − t`, `t` the transition
/// probability), `1 + ω` on remote reads and deallocating writes
/// (probability `(1−θ)(1−π_k) + t`), `ω` on SW1's delete-request writes,
/// and 0 otherwise.
pub fn var_swk(k: usize, theta: f64, model: CostModel) -> f64 {
    check(theta);
    let pi = pi_k(k, theta);
    let t = transition_probability(k, theta);
    match model {
        CostModel::Connection => {
            let exp = theta * pi + (1.0 - theta) * (1.0 - pi);
            exp * (1.0 - exp)
        }
        CostModel::Message { omega } => {
            let (mean, second) = if k == 1 {
                // SW1: remote reads at 1+ω (prob θ(1−θ)), delete-request
                // writes at ω (prob θ(1−θ)).
                let p = theta * (1.0 - theta);
                let mean = p * (1.0 + omega) + p * omega;
                let second = p * (1.0 + omega).powi(2) + p * omega * omega;
                (mean, second)
            } else {
                let p_keep_write = theta * pi - t; // propagated, kept
                let p_expensive = (1.0 - theta) * (1.0 - pi) + t; // 1 + ω
                let mean = p_keep_write + p_expensive * (1.0 + omega);
                let second = p_keep_write + p_expensive * (1.0 + omega).powi(2);
                (mean, second)
            };
            second - mean * mean
        }
    }
}

/// Exact marginal variance by `2^k` enumeration of §4 window states (the
/// verification oracle for [`var_swk`]). Panics for `k > 20`.
pub fn exact_var_swk(k: usize, theta: f64, model: CostModel) -> f64 {
    assert!(k >= 1 && k % 2 == 1 && k <= 20);
    check(theta);
    let mut mean = 0.0;
    let mut second = 0.0;
    for state in 0u32..(1 << k) {
        let writes = state.count_ones() as i32;
        let p_state = theta.powi(writes) * (1.0 - theta).powi(k as i32 - writes);
        if p_state.total_cmp(&0.0).is_eq() {
            continue;
        }
        let requests: Vec<mdr_core::Request> = (0..k)
            .map(|i| mdr_core::Request::from_bit((state >> i) & 1 == 1))
            .collect();
        for (req, p_req) in [
            (mdr_core::Request::Read, 1.0 - theta),
            (mdr_core::Request::Write, theta),
        ] {
            if p_req.total_cmp(&0.0).is_eq() {
                continue;
            }
            use mdr_core::AllocationPolicy;
            let mut policy = mdr_core::SlidingWindow::with_window(
                mdr_core::RequestWindow::from_requests(&requests),
            );
            let c = model.price(policy.on_request(req));
            mean += p_state * p_req * c;
            second += p_state * p_req * c * c;
        }
    }
    second - mean * mean
}

#[cfg(test)]
mod tests {
    use super::*;

    const THETAS: [f64; 5] = [0.0, 0.2, 0.5, 0.8, 1.0];

    #[test]
    fn static_variances_are_bernoulli() {
        for &theta in &THETAS {
            assert!((var_st2(theta, CostModel::Connection) - theta * (1.0 - theta)).abs() < 1e-12);
            let v = var_st1(theta, CostModel::message(0.5));
            assert!((v - 2.25 * theta * (1.0 - theta)).abs() < 1e-12);
        }
    }

    #[test]
    fn swk_variance_matches_exact_enumeration() {
        for k in [1usize, 3, 5, 9, 13] {
            for &theta in &THETAS {
                for model in [
                    CostModel::Connection,
                    CostModel::message(0.0),
                    CostModel::message(0.4),
                    CostModel::message(1.0),
                ] {
                    let formula = var_swk(k, theta, model);
                    let exact = exact_var_swk(k, theta, model);
                    assert!(
                        (formula - exact).abs() < 1e-12,
                        "k={k} θ={theta} {model}: {formula} vs {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn variance_vanishes_at_deterministic_extremes() {
        for k in [1usize, 7] {
            for model in [CostModel::Connection, CostModel::message(0.6)] {
                assert!(var_swk(k, 0.0, model).abs() < 1e-12);
                assert!(var_swk(k, 1.0, model).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn variance_is_nonnegative_everywhere() {
        for k in [1usize, 3, 9, 15] {
            for i in 0..=20 {
                let theta = f64::from(i) / 20.0;
                for model in [CostModel::Connection, CostModel::message(0.3)] {
                    assert!(var_swk(k, theta, model) >= -1e-12, "k={k} θ={theta}");
                }
            }
        }
    }

    #[test]
    fn simulation_sample_variance_agrees() {
        // Monte-Carlo spot check: marginal per-request cost variance of SW5
        // at θ = 0.4, ω = 0.5.
        use mdr_core::{PolicySpec, Request};
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let model = CostModel::message(0.5);
        let mut policy = PolicySpec::SlidingWindow { k: 5 }.build();
        let mut rng = StdRng::seed_from_u64(17);
        let n = 300_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        // Warm up to stationarity.
        for _ in 0..1_000 {
            let req = if rng.random::<f64>() < 0.4 {
                Request::Write
            } else {
                Request::Read
            };
            policy.on_request(req);
        }
        for _ in 0..n {
            let req = if rng.random::<f64>() < 0.4 {
                Request::Write
            } else {
                Request::Read
            };
            let c = model.price(policy.on_request(req));
            sum += c;
            sumsq += c * c;
        }
        let mean = sum / f64::from(n);
        let var = sumsq / f64::from(n) - mean * mean;
        let predicted = var_swk(5, 0.4, model);
        assert!((var - predicted).abs() < 0.01, "{var} vs {predicted}");
    }
}
