//! Competitiveness factors (worst-case analysis, §5.3 and §6.4).
//!
//! An online allocation algorithm `A` is *c-competitive* if there are
//! constants `c ≥ 1` and `b ≥ 0` such that `COST_A(σ) ≤ c·COST_OPT(σ) + b`
//! for every schedule σ, where OPT knows the whole schedule in advance. The
//! paper proves:
//!
//! * ST1 and ST2 are **not** competitive in either model (§5.3, §6.4);
//! * SWk is tightly `(k+1)`-competitive in the connection model (Thm 4);
//! * SW1 is tightly `(1+2ω)`-competitive in the message model (Thm 11);
//! * SWk (k>1) is tightly `[(1+ω/2)(k+1)+ω]`-competitive in the message
//!   model (Thm 12);
//! * T1m and T2m are `(m+1)`-competitive in the connection model (§7.1).
//!
//! The empirical side (offline OPT, adversarial schedules, exhaustive
//! search) lives in `mdr-adversary`; this module is the analytic ledger.

use mdr_core::{CostModel, PolicySpec};

/// `k + 1` — Theorem 4's tight factor for SWk in the connection model.
pub fn swk_connection_factor(k: usize) -> f64 {
    assert!(k >= 1 && k % 2 == 1, "window size must be odd, got {k}");
    (k + 1) as f64
}

/// `1 + 2ω` — Theorem 11's tight factor for SW1 in the message model.
pub fn sw1_message_factor(omega: f64) -> f64 {
    assert!((0.0..=1.0).contains(&omega));
    1.0 + 2.0 * omega
}

/// `(1 + ω/2)(k + 1) + ω` — Theorem 12's tight factor for SWk (k > 1) in
/// the message model.
pub fn swk_message_factor(k: usize, omega: f64) -> f64 {
    assert!(
        k > 1 && k % 2 == 1,
        "Theorem 12 applies to odd k > 1, got {k}"
    );
    assert!((0.0..=1.0).contains(&omega));
    (1.0 + omega / 2.0) * (k as f64 + 1.0) + omega
}

/// `m + 1` — the §7.1 factor for T1m and T2m in the connection model.
pub fn t_connection_factor(m: usize) -> f64 {
    assert!(m >= 1);
    (m + 1) as f64
}

/// `m(1+ω) + ω` — derived message-model factor for the §7.1 T1m (not
/// stated in the
/// paper): the worst cycle is `m` remote reads at `1+ω` each plus one
/// delete-request write at `ω`, against OPT's single propagated write.
/// Validated empirically (never exceeded by exhaustive search) in E8.
pub fn t1_message_factor(m: usize, omega: f64) -> f64 {
    assert!(m >= 1);
    assert!((0.0..=1.0).contains(&omega));
    m as f64 * (1.0 + omega) + omega
}

/// `m + 1 + 2ω` — derived message-model factor for the §7.1 T2m: the
/// worst cycle is
/// `m` propagated writes (the last deallocating, `+ω`) plus one remote read
/// at `1+ω`, against OPT's single propagated write. Validated empirically.
pub fn t2_message_factor(m: usize, omega: f64) -> f64 {
    assert!(m >= 1);
    assert!((0.0..=1.0).contains(&omega));
    m as f64 + 1.0 + 2.0 * omega
}

/// The competitiveness factor of `spec` under `model` (§5.3, §6.4,
/// §7.1); `None` means the algorithm is not competitive (the statics).
///
/// Factors for SWk / SW1 are the paper's tight values; factors for T1m /
/// T2m in the message model are derived (documented at the respective
/// functions).
pub fn competitive_factor(spec: PolicySpec, model: CostModel) -> Option<f64> {
    match (spec, model) {
        (PolicySpec::St1 | PolicySpec::St2, _) => None,
        (PolicySpec::SlidingWindow { k }, CostModel::Connection) => Some(swk_connection_factor(k)),
        (PolicySpec::SlidingWindow { k: 1 }, CostModel::Message { omega }) => {
            Some(sw1_message_factor(omega))
        }
        (PolicySpec::SlidingWindow { k }, CostModel::Message { omega }) => {
            Some(swk_message_factor(k, omega))
        }
        (PolicySpec::T1 { m } | PolicySpec::T2 { m }, CostModel::Connection) => {
            Some(t_connection_factor(m))
        }
        (PolicySpec::T1 { m }, CostModel::Message { omega }) => Some(t1_message_factor(m, omega)),
        (PolicySpec::T2 { m }, CostModel::Message { omega }) => Some(t2_message_factor(m, omega)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statics_are_not_competitive() {
        assert_eq!(
            competitive_factor(PolicySpec::St1, CostModel::Connection),
            None
        );
        assert_eq!(
            competitive_factor(PolicySpec::St2, CostModel::message(0.5)),
            None
        );
    }

    #[test]
    fn theorem_4_factor() {
        assert_eq!(swk_connection_factor(1), 2.0);
        assert_eq!(swk_connection_factor(9), 10.0);
        assert_eq!(
            competitive_factor(PolicySpec::SlidingWindow { k: 15 }, CostModel::Connection),
            Some(16.0)
        );
    }

    #[test]
    fn theorem_11_factor() {
        assert_eq!(sw1_message_factor(0.0), 1.0);
        assert_eq!(sw1_message_factor(0.5), 2.0);
        assert_eq!(
            competitive_factor(PolicySpec::SlidingWindow { k: 1 }, CostModel::message(1.0)),
            Some(3.0)
        );
    }

    #[test]
    fn theorem_12_factor() {
        // (1 + ω/2)(k+1) + ω at k = 3, ω = 1: 1.5·4 + 1 = 7.
        assert_eq!(swk_message_factor(3, 1.0), 7.0);
        // ω = 0 reduces to the connection factor k + 1.
        for k in [3usize, 5, 11] {
            assert_eq!(swk_message_factor(k, 0.0), swk_connection_factor(k));
        }
    }

    #[test]
    fn message_factor_grows_with_k_and_omega() {
        assert!(swk_message_factor(5, 0.5) < swk_message_factor(7, 0.5));
        assert!(swk_message_factor(5, 0.2) < swk_message_factor(5, 0.7));
        assert!(sw1_message_factor(0.3) < swk_message_factor(3, 0.3));
    }

    #[test]
    fn t_factors() {
        assert_eq!(t_connection_factor(15), 16.0);
        assert_eq!(
            competitive_factor(PolicySpec::T1 { m: 9 }, CostModel::Connection),
            Some(10.0)
        );
        assert_eq!(t1_message_factor(2, 0.5), 3.5);
        assert_eq!(t2_message_factor(2, 0.5), 4.0);
        // ω = 0: T2m reduces to m + 1 (its deallocation rides a data
        // message); T1m drops to m because its delete-request write becomes
        // free, whereas in the connection model it still costs a connection.
        for m in [1usize, 4, 9] {
            assert_eq!(t1_message_factor(m, 0.0), m as f64);
            assert_eq!(t2_message_factor(m, 0.0), t_connection_factor(m));
        }
    }

    #[test]
    fn worst_case_improves_with_smaller_windows() {
        // §2.2: "the worst case improving with a decreasing window size".
        let omega = 0.6;
        let mut prev = sw1_message_factor(omega);
        for k in (3usize..=21).step_by(2) {
            let f = swk_message_factor(k, omega);
            assert!(f > prev);
            prev = f;
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_k_rejected() {
        let _ = swk_connection_factor(4);
    }
}
