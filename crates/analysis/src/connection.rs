//! Closed-form analysis in the **connection cost model** (§5).
//!
//! Every function takes the write fraction `θ = λ_w / (λ_r + λ_w)` where
//! relevant. Results (paper references in each doc comment):
//!
//! | algorithm | EXP(θ) | AVG |
//! |---|---|---|
//! | ST1 | `1 − θ` (Eq. 2) | `1/2` (Eq. 3) |
//! | ST2 | `θ` (Eq. 2) | `1/2` (Eq. 3) |
//! | SWk | `θ·π_k + (1−θ)(1−π_k)` (Thm 1 / Eq. 5) | `1/4 + 1/(4(k+2))` (Thm 3 / Eq. 6) |
//! | T1m | `(1−θ) + (1−θ)^m (2θ−1)` (§7.1) | `1/2 − m/((m+1)(m+2))` (derived) |
//! | T2m | `θ + θ^m (1−2θ)` (§7.1, symmetric) | `1/2 − m/((m+1)(m+2))` (derived) |

use crate::pi::pi_k;

fn check_theta(theta: f64) {
    assert!((0.0..=1.0).contains(&theta), "θ out of range: {theta}");
}

fn check_odd(k: usize) {
    assert!(k >= 1 && k % 2 == 1, "window size must be odd, got {k}");
}

/// `EXP_ST1(θ) = 1 − θ` (Eq. 2): each read costs one connection, writes are
/// free, and `1 − θ` is the read probability.
pub fn exp_st1(theta: f64) -> f64 {
    check_theta(theta);
    1.0 - theta
}

/// `EXP_ST2(θ) = θ` (Eq. 2): each write costs one connection.
pub fn exp_st2(theta: f64) -> f64 {
    check_theta(theta);
    theta
}

/// `AVG_ST1 = 1/2` (Eq. 3).
pub fn avg_st1() -> f64 {
    0.5
}

/// `AVG_ST2 = 1/2` (Eq. 3).
pub fn avg_st2() -> f64 {
    0.5
}

/// `EXP_SWk(θ) = θ·π_k(θ) + (1−θ)(1−π_k(θ))` (Theorem 1 / Eq. 5): a write
/// costs 1 exactly when the replica is present (probability π_k), a read
/// costs 1 exactly when it is absent.
pub fn exp_swk(k: usize, theta: f64) -> f64 {
    check_odd(k);
    check_theta(theta);
    let pi = pi_k(k, theta);
    theta * pi + (1.0 - theta) * (1.0 - pi)
}

/// `AVG_SWk = 1/4 + 1/(4(k+2))` (Theorem 3 / Eq. 6).
pub fn avg_swk(k: usize) -> f64 {
    check_odd(k);
    0.25 + 1.0 / (4.0 * (k as f64 + 2.0))
}

/// `EXP_T1m(θ) = (1−θ) + (1−θ)^m (2θ−1)` (§7.1). The second term is "the
/// price of competitiveness" over ST1.
pub fn exp_t1(m: usize, theta: f64) -> f64 {
    assert!(m >= 1, "T1m requires m ≥ 1");
    check_theta(theta);
    let q = 1.0 - theta;
    q + q.powi(m as i32) * (2.0 * theta - 1.0)
}

/// `EXP_T2m(θ) = θ + θ^m (1−2θ)` — the mirror image of T1m (§7.1 sketches
/// T2m "similarly"; the formula follows by the read/write symmetry).
pub fn exp_t2(m: usize, theta: f64) -> f64 {
    assert!(m >= 1, "T2m requires m ≥ 1");
    check_theta(theta);
    theta + theta.powi(m as i32) * (1.0 - 2.0 * theta)
}

/// `AVG_T1m = 1/2 − m/((m+1)(m+2))` — derived by applying the Eq. 1 AVG
/// integral to `EXP_T1m`
/// (∫(1−θ)^m(2θ−1)dθ = 1/(m+1) − 2/(m+2)); not stated in the paper but
/// verified against quadrature in the tests.
pub fn avg_t1(m: usize) -> f64 {
    assert!(m >= 1);
    let m = m as f64;
    0.5 - m / ((m + 1.0) * (m + 2.0))
}

/// `AVG_T2m = AVG_T1m` by the θ ↔ 1−θ symmetry of the two §7.1
/// formulas.
pub fn avg_t2(m: usize) -> f64 {
    avg_t1(m)
}

/// The offline lower envelope `min(EXP_ST1, EXP_ST2) = min(θ, 1−θ)` — the
/// best expected cost attainable when θ is known (Theorem 2 shows no SWk
/// beats it pointwise).
pub fn optimal_exp(theta: f64) -> f64 {
    check_theta(theta);
    theta.min(1.0 - theta)
}

/// `AVG` (Eq. 1) of the lower envelope: `∫₀¹ min(θ, 1−θ) dθ = 1/4` — the optimum the
/// paper compares AVG_SWk against ("coming within 6% of the optimum for
/// k = 15").
pub fn optimal_avg() -> f64 {
    0.25
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::integrate;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn statics_match_eq_2() {
        assert_eq!(exp_st1(0.3), 0.7);
        assert_eq!(exp_st2(0.3), 0.3);
    }

    #[test]
    fn static_avgs_integrate_to_half() {
        assert_close(integrate(exp_st1, 0.0, 1.0, 1e-10), avg_st1(), 1e-8);
        assert_close(integrate(exp_st2, 0.0, 1.0, 1e-10), avg_st2(), 1e-8);
    }

    #[test]
    fn sw1_exp_is_two_theta_one_minus_theta() {
        // k = 1: π₁ = 1 − θ ⇒ EXP = θ(1−θ) + (1−θ)θ = 2θ(1−θ).
        for theta in [0.0, 0.2, 0.5, 0.8, 1.0] {
            assert_close(exp_swk(1, theta), 2.0 * theta * (1.0 - theta), 1e-12);
        }
    }

    #[test]
    fn avg_swk_matches_quadrature_of_exp() {
        // Eq. 6 versus direct integration of Eq. 5 — the strongest internal
        // consistency check the paper permits.
        for k in [1usize, 3, 5, 9, 15, 31, 95] {
            let quad = integrate(|t| exp_swk(k, t), 0.0, 1.0, 1e-10);
            assert_close(quad, avg_swk(k), 1e-7);
        }
    }

    #[test]
    fn theorem_2_swk_never_beats_the_static_envelope() {
        for k in [1usize, 3, 7, 15, 41] {
            for i in 0..=100 {
                let theta = f64::from(i) / 100.0;
                assert!(
                    exp_swk(k, theta) >= optimal_exp(theta) - 1e-12,
                    "k={k} θ={theta}"
                );
            }
        }
    }

    #[test]
    fn corollary_1_avg_decreases_in_k_and_beats_statics() {
        let mut prev = f64::INFINITY;
        for k in (1usize..=41).step_by(2) {
            let avg = avg_swk(k);
            assert!(avg < prev);
            assert!(avg < avg_st1().min(avg_st2()));
            prev = avg;
        }
    }

    #[test]
    fn paper_k15_within_six_percent_of_optimum() {
        // §2: AVG_SWk "decreases as k increases, coming within 6% of the
        // optimum for k = 15".
        let ratio = avg_swk(15) / optimal_avg();
        assert!(ratio < 1.06, "AVG_SW15 / optimum = {ratio}");
        assert!(ratio > 1.05, "the 6% figure is tight: {ratio}");
    }

    #[test]
    fn paper_k9_within_ten_percent_of_optimum() {
        // §9: "for k = 9 the sliding-window algorithm will have an average
        // expected cost that is within 10% of the optimum".
        let ratio = avg_swk(9) / optimal_avg();
        assert!(ratio < 1.10, "AVG_SW9 / optimum = {ratio}");
        assert!(ratio > 1.09, "the 10% figure is tight: {ratio}");
    }

    #[test]
    fn t1_exp_limits() {
        // m → ∞ approaches ST1; at θ = 1 and θ = 0 the cost vanishes.
        assert_close(exp_t1(50, 0.6), exp_st1(0.6), 1e-6);
        assert_close(exp_t1(3, 1.0), 0.0, 1e-12);
        assert_close(exp_t1(3, 0.0), 0.0, 1e-12);
    }

    #[test]
    fn t1_matches_renewal_reward_derivation() {
        // Independent derivation: phase lengths via the consecutive-success
        // formula E[T] = (1−p^m)/(q p^m), p = 1−θ.
        for m in [1usize, 2, 5, 9] {
            for theta in [0.1, 0.35, 0.5, 0.75, 0.9] {
                let p: f64 = 1.0 - theta;
                let q = theta;
                let et = (1.0 - p.powi(m as i32)) / (q * p.powi(m as i32));
                let exp = (et * p + 1.0) / (et + 1.0 / q);
                assert_close(exp_t1(m, theta), exp, 1e-10);
            }
        }
    }

    #[test]
    fn t1_worked_example_m15_theta075() {
        // §9: "for m = 15 and θ = 0.75 the expected cost of the T1m
        // algorithm will come within 4% of the optimum".
        let exp = exp_t1(15, 0.75);
        let opt = optimal_exp(0.75);
        assert!(exp / opt < 1.04, "ratio {}", exp / opt);
    }

    #[test]
    fn t1_beats_swm_for_theta_above_half() {
        // §7.1: "for each θ > 0.5 this algorithm has a slightly lower
        // expected cost than SWm".
        for m in [3usize, 5, 9, 15] {
            for theta in [0.55, 0.6, 0.75, 0.9] {
                assert!(
                    exp_t1(m, theta) < exp_swk(m, theta),
                    "m={m} θ={theta}: {} vs {}",
                    exp_t1(m, theta),
                    exp_swk(m, theta)
                );
            }
        }
    }

    #[test]
    fn t2_is_the_mirror_of_t1() {
        for m in [1usize, 4, 7] {
            for theta in [0.0, 0.2, 0.5, 0.8, 1.0] {
                assert_close(exp_t2(m, theta), exp_t1(m, 1.0 - theta), 1e-12);
            }
        }
    }

    #[test]
    fn t_avgs_match_quadrature() {
        for m in [1usize, 2, 6, 12] {
            assert_close(
                integrate(|t| exp_t1(m, t), 0.0, 1.0, 1e-10),
                avg_t1(m),
                1e-7,
            );
            assert_close(
                integrate(|t| exp_t2(m, t), 0.0, 1.0, 1e-10),
                avg_t2(m),
                1e-7,
            );
        }
    }

    #[test]
    fn optimal_avg_matches_quadrature() {
        assert_close(integrate(optimal_exp, 0.0, 1.0, 1e-10), optimal_avg(), 1e-8);
    }

    #[test]
    fn connection_dominance_regions() {
        // §2 summary: θ ≥ 1/2 ⇒ ST1 best; θ ≤ 1/2 ⇒ ST2 best.
        assert!(exp_st1(0.7) < exp_st2(0.7));
        assert!(exp_st1(0.7) <= exp_swk(9, 0.7));
        assert!(exp_st2(0.3) < exp_st1(0.3));
        assert!(exp_st2(0.3) <= exp_swk(9, 0.3));
    }
}
