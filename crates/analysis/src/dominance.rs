//! Which algorithm has the best *expected* cost where — the paper's
//! dominance results (Theorems 2, 6, 9 and **Figure 1**).
//!
//! Connection model (§2.1): the static envelope wins everywhere — ST1 for
//! θ ≥ 1/2, ST2 for θ ≤ 1/2; no SWk ever beats it (Theorem 2).
//!
//! Message model (§2.2 / Theorem 6 / Figure 1): the (θ, ω) unit square
//! splits into three regions,
//!
//! ```text
//!   θ > (1+ω)/(1+2ω)            → ST1
//!   θ < 2ω/(1+2ω)               → ST2
//!   between the two boundaries  → SW1
//! ```
//!
//! and by Theorem 9 no SWk with k > 1 is ever strictly best for a fixed θ.

use crate::{connection, message};
use mdr_core::PolicySpec;

/// Which algorithm family wins a point of the dominance map (Theorem 6,
/// Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Winner {
    /// Static one-copy has the (weakly) lowest expected cost.
    St1,
    /// Static two-copies has the (weakly) lowest expected cost.
    St2,
    /// The optimized one-window algorithm has the strictly lowest cost.
    Sw1,
}

impl Winner {
    /// The corresponding §2 policy description.
    pub fn spec(self) -> PolicySpec {
        match self {
            Winner::St1 => PolicySpec::St1,
            Winner::St2 => PolicySpec::St2,
            Winner::Sw1 => PolicySpec::SlidingWindow { k: 1 },
        }
    }
}

/// The upper boundary of Figure 1 (Theorem 6): `θ = (1+ω)/(1+2ω)`, the
/// ST1/SW1 crossing.
pub fn st1_sw1_boundary(omega: f64) -> f64 {
    assert!((0.0..=1.0).contains(&omega));
    (1.0 + omega) / (1.0 + 2.0 * omega)
}

/// The lower boundary of Figure 1 (Theorem 6): `θ = 2ω/(1+2ω)`, the
/// ST2/SW1 crossing.
pub fn st2_sw1_boundary(omega: f64) -> f64 {
    assert!((0.0..=1.0).contains(&omega));
    2.0 * omega / (1.0 + 2.0 * omega)
}

/// Best expected-cost algorithm at a point of the message-model map
/// (Theorem 6 / Figure 1). Boundary points are resolved in favour of the
/// static algorithm (costs are equal there).
pub fn message_winner(theta: f64, omega: f64) -> Winner {
    assert!((0.0..=1.0).contains(&theta), "θ out of range: {theta}");
    if theta >= st1_sw1_boundary(omega) {
        Winner::St1
    } else if theta <= st2_sw1_boundary(omega) {
        Winner::St2
    } else {
        Winner::Sw1
    }
}

/// Best expected-cost algorithm in the connection model (Theorem 2): ST1
/// for θ ≥ 1/2,
/// ST2 otherwise (ties at 1/2 go to ST1; both cost 1/2 there).
pub fn connection_winner(theta: f64) -> Winner {
    assert!((0.0..=1.0).contains(&theta), "θ out of range: {theta}");
    if theta >= 0.5 {
        Winner::St1
    } else {
        Winner::St2
    }
}

/// Resolves the winner *numerically* by evaluating the three §6
/// expected-cost formulas — used to validate the analytic region test and to paint
/// Figure 1 in experiment E4.
pub fn message_winner_by_cost(theta: f64, omega: f64) -> Winner {
    let st1 = message::exp_st1(theta, omega);
    let st2 = message::exp_st2(theta, omega);
    let sw1 = message::exp_sw1(theta, omega);
    if st1 <= st2 && st1 <= sw1 {
        Winner::St1
    } else if st2 <= sw1 {
        Winner::St2
    } else {
        Winner::Sw1
    }
}

/// The expected cost of the winner — the Theorem 6 lower envelope
/// plotted under Figure 1.
pub fn message_envelope(theta: f64, omega: f64) -> f64 {
    message::optimal_exp(theta, omega)
}

/// The connection-model lower envelope `min(θ, 1−θ)` (Theorem 2).
pub fn connection_envelope(theta: f64) -> f64 {
    connection::optimal_exp(theta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_at_omega_zero() {
        // Free control messages: SW1 wins the whole open interval.
        assert_eq!(st1_sw1_boundary(0.0), 1.0);
        assert_eq!(st2_sw1_boundary(0.0), 0.0);
        assert_eq!(message_winner(0.5, 0.0), Winner::Sw1);
        assert_eq!(message_winner(0.99, 0.0), Winner::Sw1);
    }

    #[test]
    fn boundaries_at_omega_one() {
        // ω = 1: ST1 above 2/3, ST2 below 2/3 — SW1's region vanishes.
        assert!((st1_sw1_boundary(1.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((st2_sw1_boundary(1.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(message_winner(0.8, 1.0), Winner::St1);
        assert_eq!(message_winner(0.5, 1.0), Winner::St2);
    }

    #[test]
    fn sw1_region_shrinks_with_omega() {
        let width = |omega: f64| st1_sw1_boundary(omega) - st2_sw1_boundary(omega);
        assert!(width(0.0) > width(0.3));
        assert!(width(0.3) > width(0.8));
        assert!(width(1.0).abs() < 1e-12);
    }

    #[test]
    fn analytic_winner_matches_cost_based_winner_on_a_grid() {
        // The figure-1 regions must agree with direct cost comparison at
        // every interior grid point (ties on boundaries excluded by the
        // irrational-free grid offsets).
        for i in 0..60 {
            for j in 0..60 {
                let theta = (f64::from(i) + 0.5) / 60.0;
                let omega = (f64::from(j) + 0.5) / 60.0;
                assert_eq!(
                    message_winner(theta, omega),
                    message_winner_by_cost(theta, omega),
                    "θ={theta} ω={omega}"
                );
            }
        }
    }

    #[test]
    fn connection_winner_is_the_cheaper_static() {
        assert_eq!(connection_winner(0.7), Winner::St1);
        assert_eq!(connection_winner(0.2), Winner::St2);
        assert_eq!(connection_winner(0.5), Winner::St1); // tie, both cost 1/2
    }

    #[test]
    fn envelopes_are_pointwise_minima() {
        for theta in [0.1, 0.45, 0.5, 0.77] {
            assert!(connection_envelope(theta) <= crate::connection::exp_st1(theta) + 1e-12);
            assert!(connection_envelope(theta) <= crate::connection::exp_st2(theta) + 1e-12);
            for omega in [0.2, 0.6] {
                let env = message_envelope(theta, omega);
                assert!(env <= crate::message::exp_st1(theta, omega) + 1e-12);
                assert!(env <= crate::message::exp_st2(theta, omega) + 1e-12);
                assert!(env <= crate::message::exp_sw1(theta, omega) + 1e-12);
            }
        }
    }

    #[test]
    fn winner_spec_mapping() {
        assert_eq!(Winner::St1.spec(), PolicySpec::St1);
        assert_eq!(Winner::Sw1.spec(), PolicySpec::SlidingWindow { k: 1 });
    }

    #[test]
    fn paper_figure_1_worked_points() {
        // Sanity anchors reading Figure 1: at moderate ω, high θ is ST1
        // country, low θ is ST2 country, the middle band is SW1's.
        assert_eq!(message_winner(0.9, 0.4), Winner::St1);
        assert_eq!(message_winner(0.2, 0.4), Winner::St2);
        assert_eq!(message_winner(0.6, 0.4), Winner::Sw1);
    }
}
