//! Choosing the window size k — Corollaries 3 & 4, **Figure 2**, and the
//! §9 guidance on balancing average cost against competitiveness.
//!
//! The average expected cost of SWk *decreases* with k while the
//! competitiveness factor *increases* with k, so "the window size k should
//! be chosen to strike a balance between these two conflicting
//! requirements" (§2.1). This module provides the paper's quantitative
//! handles on that trade-off.

use crate::message::{avg_sw1, avg_swk};

/// The ω threshold of Corollaries 3/4 (§9): for `ω ≤ 0.4` SW1 has the best
/// average expected cost among all window sizes; above it, large enough
/// windows win.
pub const OMEGA_THRESHOLD: f64 = 0.4;

/// Corollary 4's real-valued threshold
/// `k₀(ω) = [(10−ω) + √(100 − 68ω + 121ω²)] / (2(5ω−2))` for `ω > 0.4`:
/// `AVG_SWk ≤ AVG_SW1` exactly when `k ≥ k₀(ω)`.
///
/// Derivation (see DESIGN.md §2): setting Eq. 12 ≤ Eq. 10 and clearing
/// denominators gives `(2−5ω)k² + (10−ω)k + 6ω ≤ 0`, whose positive root is
/// the expression above. Returns `None` for `ω ≤ 0.4` (no finite k works —
/// Corollary 3).
pub fn k0_threshold(omega: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&omega), "ω out of range: {omega}");
    if omega <= OMEGA_THRESHOLD {
        return None;
    }
    let disc = 100.0 - 68.0 * omega + 121.0 * omega * omega;
    Some(((10.0 - omega) + disc.sqrt()) / (2.0 * (5.0 * omega - 2.0)))
}

/// The smallest **odd** `k > 1` with `AVG_SWk ≤ AVG_SW1` (Eq. 12 ≤
/// Eq. 10) — the staircase
/// plotted in Figure 2 (e.g. ω = 0.45 → 39, ω = 0.8 → 7). `None` for
/// `ω ≤ 0.4`.
pub fn min_beneficial_k(omega: f64) -> Option<usize> {
    let k0 = k0_threshold(omega)?;
    // Round up to the next odd integer ≥ max(3, k0).
    let mut k = (k0.ceil() as usize).max(3);
    if k % 2 == 0 {
        k += 1;
    }
    // Guard against boundary rounding: the closed form and the inequality
    // must agree, so step until the inequality really holds.
    while avg_swk(k, omega) > avg_sw1(omega) {
        k += 2;
    }
    // …and step back while the previous odd k also satisfies it.
    while k > 3 && avg_swk(k - 2, omega) <= avg_sw1(omega) {
        k -= 2;
    }
    Some(k)
}

/// Smallest odd k whose **connection-model** average expected cost is within
/// `slack` (e.g. `0.10` for 10%) of the optimum 1/4 (Eq. 6 inverted):
/// `AVG_SWk / (1/4) ≤ 1 + slack  ⇔  k ≥ 1/slack − 2`.
///
/// Reproduces the §9 guidance: `slack = 0.10 → k = 9`,
/// `slack = 0.06 → k = 15`.
pub fn smallest_k_within(slack: f64) -> usize {
    assert!(slack > 0.0, "slack must be positive");
    let bound = 1.0 / slack - 2.0;
    let mut k = if bound <= 1.0 {
        1
    } else {
        bound.ceil() as usize
    };
    if k % 2 == 0 {
        k += 1;
    }
    // AVG_SWk/0.25 = 1 + 1/(k+2); enforce exactly.
    while 1.0 / (k as f64 + 2.0) > slack {
        k += 2;
    }
    while k > 1 && 1.0 / ((k - 2) as f64 + 2.0) <= slack {
        k -= 2;
    }
    k
}

/// A balanced recommendation in the spirit of §9: the smallest odd k whose
/// connection-model AVG is within `slack` of optimal, together with the
/// competitiveness factor `k + 1` that the choice costs in the worst case.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WindowRecommendation {
    /// The recommended (odd) window size.
    pub k: usize,
    /// `AVG_SWk` in the connection model (Eq. 6).
    pub avg_connection: f64,
    /// Excess over the optimal average 1/4, as a fraction.
    pub avg_excess: f64,
    /// The worst-case factor paid for the choice (Theorem 4).
    pub competitive_factor: f64,
}

/// Computes the §9-style recommendation for a target average-cost slack.
pub fn recommend_k(slack: f64) -> WindowRecommendation {
    let k = smallest_k_within(slack);
    let avg = crate::connection::avg_swk(k);
    WindowRecommendation {
        k,
        avg_connection: avg,
        avg_excess: avg / 0.25 - 1.0,
        competitive_factor: (k + 1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_none_at_or_below_0_4() {
        assert_eq!(k0_threshold(0.0), None);
        assert_eq!(k0_threshold(0.4), None);
        assert_eq!(min_beneficial_k(0.25), None);
    }

    #[test]
    fn figure_2_quoted_points() {
        // §6.3: "if ω = 0.45, then only when k ≥ 39, the SWk algorithm has a
        // lower expected cost than that of SW1; if ω = 0.8, then only when
        // k ≥ 7".
        assert_eq!(min_beneficial_k(0.45), Some(39));
        assert_eq!(min_beneficial_k(0.8), Some(7));
    }

    #[test]
    fn figure_2_staircase_axis_values() {
        // Figure 2's x-axis marks 3, 5, 7, 11, 21, 39, 95 — each value must
        // be hit by some ω, and the staircase must be non-increasing in ω.
        let mut seen = std::collections::BTreeSet::new();
        let mut prev = usize::MAX;
        let mut omega = 0.401;
        while omega <= 1.0 {
            let k = min_beneficial_k(omega).unwrap();
            assert!(
                k <= prev,
                "staircase must not increase: ω={omega} k={k} prev={prev}"
            );
            prev = k;
            seen.insert(k);
            omega += 0.001;
        }
        for expected in [5usize, 7, 11, 21, 39] {
            assert!(
                seen.contains(&expected),
                "staircase never hits k = {expected}: {seen:?}"
            );
        }
        // 95 sits on a very steep part of the staircase (near ω ≈ 0.4206);
        // hit it by bisecting ω for k₀ ∈ (93, 95].
        let hit_95 = (4180..4240).any(|i| min_beneficial_k(f64::from(i) / 10_000.0) == Some(95));
        assert!(hit_95, "staircase never hits k = 95 near ω ≈ 0.42");
    }

    #[test]
    fn threshold_is_exact_crossing() {
        // Just below k₀ SWk loses to SW1; at/above it wins.
        for omega in [0.45, 0.6, 0.8, 0.95] {
            let k = min_beneficial_k(omega).unwrap();
            assert!(avg_swk(k, omega) <= avg_sw1(omega), "ω={omega} k={k}");
            if k > 3 {
                assert!(
                    avg_swk(k - 2, omega) > avg_sw1(omega),
                    "ω={omega} k={}",
                    k - 2
                );
            }
        }
    }

    #[test]
    fn quadratic_root_matches_bruteforce() {
        // Brute-force the smallest odd k via Eq. 12 directly and compare.
        for omega in [0.42, 0.5, 0.65, 0.77, 0.9, 1.0] {
            let analytic = min_beneficial_k(omega).unwrap();
            let brute = (3usize..)
                .step_by(2)
                .find(|&k| avg_swk(k, omega) <= avg_sw1(omega))
                .unwrap();
            assert_eq!(analytic, brute, "ω = {omega}");
        }
    }

    #[test]
    fn section_9_guidance() {
        assert_eq!(smallest_k_within(0.10), 9); // "for k = 9 … within 10%"
        assert_eq!(smallest_k_within(0.06), 15); // "within 6% … for k = 15"
    }

    #[test]
    fn recommendation_bundles_the_tradeoff() {
        let rec = recommend_k(0.10);
        assert_eq!(rec.k, 9);
        assert_eq!(rec.competitive_factor, 10.0);
        assert!(rec.avg_excess <= 0.10 + 1e-12);
        assert!((rec.avg_connection - (0.25 + 1.0 / 44.0)).abs() < 1e-12);
    }

    #[test]
    fn large_slack_recommends_k1() {
        assert_eq!(smallest_k_within(0.5), 1);
        let rec = recommend_k(0.5);
        assert_eq!(rec.k, 1);
        assert_eq!(rec.competitive_factor, 2.0);
    }

    #[test]
    fn k0_decreases_with_omega() {
        let mut prev = f64::INFINITY;
        for i in 41..=100 {
            let omega = f64::from(i) / 100.0;
            let k0 = k0_threshold(omega).unwrap();
            assert!(k0 <= prev + 1e-9, "ω={omega}");
            assert!(k0 > 0.0);
            prev = k0;
        }
    }
}
