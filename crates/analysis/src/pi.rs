//! The window-majority probability π_k (Eq. 4) and the deallocation-rate
//! term of Eq. 11.
//!
//! Under the paper's Poisson model each relevant request is independently a
//! write with probability θ, so the stationary window of k = 2n+1 requests
//! is a vector of i.i.d. Bernoulli(θ) bits and
//!
//! > π_k(θ) = P(#writes ≤ n) = Σ_{j=0}^{n} C(k, j) θ^j (1−θ)^{k−j}   (Eq. 4)
//!
//! is the probability that the MC holds a replica.

use crate::special::{binomial_cdf, ln_binomial};

/// π_k(θ): the probability that reads form the majority of a window of `k`
/// i.i.d. requests — equivalently, that the MC holds a replica under SWk
/// (Eq. 4).
///
/// # Panics
///
/// Panics if `k` is even or zero, or θ ∉ [0, 1].
pub fn pi_k(k: usize, theta: f64) -> f64 {
    assert!(k >= 1 && k % 2 == 1, "window size must be odd, got {k}");
    assert!((0.0..=1.0).contains(&theta), "θ out of range: {theta}");
    let n = (k as u64 - 1) / 2;
    binomial_cdf(k as u64, n, theta)
}

/// The per-request probability that SWk performs a *deallocation* — the
/// extra-control-message term of Eq. 11:
///
/// > P(dealloc) = C(2n, n) θ^{n+1} (1−θ)^{n+1}
///
/// Derivation: a deallocation requires the arriving request to be a write
/// (θ), the departing oldest window bit to be a read (1−θ), and the other
/// 2n bits to split exactly n/n (C(2n,n) θ^n (1−θ)^n). By symmetry the
/// *allocation* probability is identical, so this is also the allocation
/// rate — which is how the stationary distribution stays balanced.
pub fn transition_probability(k: usize, theta: f64) -> f64 {
    assert!(k >= 1 && k % 2 == 1, "window size must be odd, got {k}");
    assert!((0.0..=1.0).contains(&theta), "θ out of range: {theta}");
    if theta.total_cmp(&0.0).is_eq() || theta.total_cmp(&1.0).is_eq() {
        return 0.0;
    }
    let n = (k as u64 - 1) / 2;
    let ln = ln_binomial(2 * n, n) + (n as f64 + 1.0) * (theta.ln() + (1.0 - theta).ln());
    ln.exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn pi_1_is_read_probability() {
        // k = 1: the window holds the last request; majority reads ⇔ it was
        // a read, so π_1 = 1 − θ.
        for theta in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_close(pi_k(1, theta), 1.0 - theta, 1e-12);
        }
    }

    #[test]
    fn pi_3_closed_form() {
        // π_3 = (1−θ)³ + 3θ(1−θ)².
        for theta in [0.1, 0.4, 0.6, 0.97] {
            let q = 1.0 - theta;
            assert_close(pi_k(3, theta), q * q * q + 3.0 * theta * q * q, 1e-12);
        }
    }

    #[test]
    fn pi_at_half_is_half() {
        // By symmetry P(majority reads) = 1/2 at θ = 1/2 for every odd k.
        for k in [1usize, 3, 5, 15, 99, 1001] {
            assert_close(pi_k(k, 0.5), 0.5, 1e-9);
        }
    }

    #[test]
    fn pi_symmetry() {
        // π_k(1−θ) = 1 − π_k(θ): swapping reads and writes flips the
        // majority (k odd ⇒ no ties).
        for k in [3usize, 7, 21] {
            for theta in [0.05, 0.3, 0.45] {
                assert_close(pi_k(k, 1.0 - theta), 1.0 - pi_k(k, theta), 1e-10);
            }
        }
    }

    #[test]
    fn pi_decreasing_in_theta() {
        for k in [1usize, 5, 31] {
            let mut prev = pi_k(k, 0.0);
            for i in 1..=20 {
                let cur = pi_k(k, f64::from(i) / 20.0);
                assert!(cur <= prev + 1e-12, "π_{k} not decreasing");
                prev = cur;
            }
        }
    }

    #[test]
    fn pi_concentrates_as_k_grows() {
        // Lemma 2: for θ > 0.5, π_k decreases with k (→ 0); for θ < 0.5 it
        // increases (→ 1). Spot-check the limit behaviour.
        assert!(pi_k(3, 0.7) > pi_k(15, 0.7));
        assert!(pi_k(15, 0.7) > pi_k(101, 0.7));
        assert!(pi_k(101, 0.7) < 1e-3);
        assert!(pi_k(3, 0.3) < pi_k(15, 0.3));
        assert!(pi_k(101, 0.3) > 0.999);
    }

    #[test]
    fn pi_extremes() {
        for k in [1usize, 9, 55] {
            assert_eq!(pi_k(k, 0.0), 1.0);
            assert_eq!(pi_k(k, 1.0), 0.0);
        }
    }

    #[test]
    fn transition_probability_closed_forms() {
        // k = 1: n = 0 ⇒ C(0,0) θ (1−θ) = θ(1−θ).
        for theta in [0.2, 0.5, 0.8] {
            assert_close(
                transition_probability(1, theta),
                theta * (1.0 - theta),
                1e-12,
            );
        }
        // k = 3: n = 1 ⇒ C(2,1) θ²(1−θ)² = 2θ²(1−θ)².
        for theta in [0.25f64, 0.5, 0.75] {
            let expect = 2.0 * theta.powi(2) * (1.0 - theta).powi(2);
            assert_close(transition_probability(3, theta), expect, 1e-12);
        }
    }

    #[test]
    fn transition_probability_vanishes_at_extremes() {
        for k in [1usize, 7, 33] {
            assert_eq!(transition_probability(k, 0.0), 0.0);
            assert_eq!(transition_probability(k, 1.0), 0.0);
        }
    }

    #[test]
    fn transition_probability_peaks_at_half_and_decays_in_k() {
        for k in [3usize, 9, 41] {
            let mid = transition_probability(k, 0.5);
            assert!(transition_probability(k, 0.3) < mid);
            assert!(transition_probability(k, 0.7) < mid);
        }
        // Larger windows flip less often at any fixed θ.
        for theta in [0.3, 0.5, 0.6] {
            assert!(transition_probability(3, theta) > transition_probability(9, theta));
            assert!(transition_probability(9, theta) > transition_probability(41, theta));
        }
    }

    #[test]
    fn transition_probability_matches_monte_carlo_shape() {
        // Exact stationary check for k = 3 by enumerating the 2⁴ equally
        // weighted (window, next-request) combinations at θ = 0.5:
        // dealloc needs oldest = r, other two split 1/1, next = w.
        // P = (1/2)·C(2,1)(1/2)²·(1/2) = 2/16.
        assert_close(transition_probability(3, 0.5), 2.0 / 16.0, 1e-12);
    }
}
