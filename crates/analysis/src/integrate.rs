//! Adaptive Simpson quadrature.
//!
//! The paper's *average expected cost* measure is the integral
//! `AVG_A = ∫₀¹ EXP_A(θ) dθ` (Eq. 1). The crate ships closed forms for every
//! algorithm, and this integrator is the independent check: each closed form
//! is tested against direct quadrature of its own EXP curve.

/// Integrates `f` over `[a, b]` with adaptive Simpson's rule to absolute
/// tolerance `tol` — evaluates the Eq. 1 AVG integral when no closed form
/// exists.
///
/// # Panics
///
/// Panics if `tol` is not positive or the interval is inverted.
pub fn integrate<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> f64 {
    assert!(tol > 0.0, "tolerance must be positive");
    assert!(b >= a, "inverted interval [{a}, {b}]");
    if a == b {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson(a, b, fa, fm, fb);
    adaptive(&f, a, b, fa, fm, fb, whole, tol, 50)
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        // Richardson extrapolation term improves the estimate one order.
        left + right + delta / 15.0
    } else {
        adaptive(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1)
            + adaptive(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1)
    }
}

/// Composite Simpson with `2·half_panels` panels — a cheap fixed-cost
/// alternative for smooth integrands in benches (the Eq. 1 AVG integrand
/// is smooth).
pub fn simpson_fixed<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, half_panels: usize) -> f64 {
    assert!(half_panels >= 1);
    let n = 2 * half_panels;
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let x = a + i as f64 * h;
        sum += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    sum * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn integrates_polynomials_exactly() {
        // Simpson is exact on cubics.
        assert_close(integrate(|x| x * x * x, 0.0, 1.0, 1e-12), 0.25, 1e-12);
        assert_close(integrate(|x| 3.0 * x * x, 0.0, 2.0, 1e-12), 8.0, 1e-10);
        assert_close(integrate(|_| 1.0, 0.0, 5.0, 1e-12), 5.0, 1e-12);
    }

    #[test]
    fn integrates_transcendentals() {
        assert_close(
            integrate(f64::sin, 0.0, std::f64::consts::PI, 1e-10),
            2.0,
            1e-8,
        );
        assert_close(
            integrate(f64::exp, 0.0, 1.0, 1e-10),
            std::f64::consts::E - 1.0,
            1e-8,
        );
    }

    #[test]
    fn integrates_sharp_peak() {
        // A narrow bump that defeats fixed coarse grids.
        let f = |x: f64| 1.0 / (1e-4 + (x - 0.37).powi(2));
        let exact = (f64::atan(0.63 / 1e-2) + f64::atan(0.37 / 1e-2)) / 1e-2;
        assert_close(integrate(f, 0.0, 1.0, 1e-9), exact, 1e-4 * exact);
    }

    #[test]
    fn empty_interval_is_zero() {
        assert_eq!(integrate(|x| x, 2.0, 2.0, 1e-9), 0.0);
    }

    #[test]
    fn fixed_simpson_converges() {
        let coarse = simpson_fixed(f64::sin, 0.0, std::f64::consts::PI, 2);
        let fine = simpson_fixed(f64::sin, 0.0, std::f64::consts::PI, 64);
        assert!((fine - 2.0).abs() < (coarse - 2.0).abs());
        assert_close(fine, 2.0, 1e-8);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn rejects_nonpositive_tolerance() {
        let _ = integrate(|x| x, 0.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn rejects_inverted_interval() {
        let _ = integrate(|x| x, 1.0, 0.0, 1e-9);
    }
}
