//! Property-based tests of the offline optimum and the ratio harness.

use mdr_adversary::{measure, opt_cost, opt_cost_bruteforce, opt_cost_from, opt_outcome};
use mdr_core::{CostModel, PolicySpec, Request, Schedule};
use proptest::prelude::*;

fn arb_schedule(max_len: usize) -> impl Strategy<Value = Schedule> {
    prop::collection::vec(prop::bool::ANY.prop_map(Request::from_bit), 0..=max_len)
        .prop_map(Schedule::from_requests)
}

fn arb_model() -> impl Strategy<Value = CostModel> {
    prop_oneof![
        Just(CostModel::Connection),
        (0.0f64..=1.0).prop_map(CostModel::message),
    ]
}

proptest! {
    /// The O(n) DP equals the exponential brute force on every small input.
    #[test]
    fn dp_equals_bruteforce(s in arb_schedule(14), model in arb_model(), init in any::<bool>()) {
        let dp = opt_cost_from(&s, model, init);
        let bf = opt_cost_bruteforce(&s, model, init);
        prop_assert!((dp - bf).abs() < 1e-9, "{s}: {dp} vs {bf}");
    }

    /// Starting with a replica can only help, and by at most one remote
    /// read (the cost of acquiring it at the first opportunity).
    #[test]
    fn initial_copy_helps_boundedly(s in arb_schedule(120), model in arb_model()) {
        let cold = opt_cost(&s, model);
        let warm = opt_cost_from(&s, model, true);
        prop_assert!(warm <= cold + 1e-9);
        let remote_read = match model {
            CostModel::Connection => 1.0,
            CostModel::Message { omega } => 1.0 + omega,
        };
        prop_assert!(cold <= warm + remote_read + 1e-9);
    }

    /// OPT is monotone under appending requests, and subadditive over
    /// concatenation (hindsight over the whole is at least as good as
    /// stitching two independently optimal halves).
    #[test]
    fn opt_is_monotone_and_subadditive(a in arb_schedule(80), b in arb_schedule(80), model in arb_model()) {
        let whole = opt_cost(&a.concat(&b), model);
        prop_assert!(whole + 1e-9 >= opt_cost(&a, model), "appending cannot reduce cost");
        // Subadditivity: stitch a's optimal plan (drop any copy for free at
        // its end) to b's cold-start optimal plan.
        prop_assert!(whole <= opt_cost(&a, model) + opt_cost(&b, model) + 1e-9);
    }

    /// The reconstructed optimal state sequence replays to exactly the
    /// optimal cost.
    #[test]
    fn outcome_states_replay_to_cost(s in arb_schedule(100), model in arb_model(), init in any::<bool>()) {
        let outcome = opt_outcome(&s, model, init);
        prop_assert!((outcome.cost - opt_cost_from(&s, model, init)).abs() < 1e-9);
        let (remote_read, propagate) = match model {
            CostModel::Connection => (1.0, 1.0),
            CostModel::Message { omega } => (1.0 + omega, 1.0),
        };
        let mut cost = 0.0;
        let mut prev = init;
        for (i, req) in s.iter().enumerate() {
            match req {
                Request::Read => {
                    if !prev { cost += remote_read; }
                }
                Request::Write => {
                    if outcome.states[i] { cost += propagate; }
                }
            }
            prev = outcome.states[i];
        }
        prop_assert!((cost - outcome.cost).abs() < 1e-9, "{s}: replay {cost} vs {}", outcome.cost);
    }

    /// `measure` is internally consistent: the ratio field matches the two
    /// costs, and violations are monotone in the claimed factor.
    #[test]
    fn measure_consistency(s in arb_schedule(120), model in arb_model()) {
        let r = measure(PolicySpec::SlidingWindow { k: 3 }, &s, model);
        match r.ratio {
            Some(ratio) => prop_assert!((ratio * r.opt_cost - r.policy_cost).abs() < 1e-6),
            None => prop_assert_eq!(r.opt_cost, 0.0),
        }
        if r.violates(10.0, 5.0) {
            prop_assert!(r.violates(5.0, 5.0), "violating a looser bound implies the tighter one");
        }
    }

    /// OPT never pays more than the cheaper static on any schedule (the
    /// statics are feasible offline plans).
    #[test]
    fn opt_lower_bounds_the_statics(s in arb_schedule(150), model in arb_model()) {
        let opt = opt_cost(&s, model);
        for spec in [PolicySpec::St1, PolicySpec::St2] {
            // ST2's plan needs the initial copy; grant OPT the same start
            // when comparing against it.
            let opt_here = opt_cost_from(&s, model, spec.build().has_copy());
            let cost = mdr_core::run_spec(spec, &s, model).total_cost;
            prop_assert!(opt_here <= cost + 1e-9, "{spec}: OPT {opt_here} vs {cost}");
        }
        let _ = opt;
    }
}
