//! The competitive-ratio measurement harness.
//!
//! Competitive analysis compares an online algorithm's cost against the
//! offline optimum on the *same* schedule. This module measures that
//! comparison three ways: on explicit schedules, on batches of random
//! schedules, and asymptotically on repeated adversarial cycles (which is
//! how the tight lower bounds manifest — the additive constant `b` in
//! `COST_A ≤ c·COST_OPT + b` washes out as cycles accumulate).

use crate::opt::opt_cost_from;
use mdr_core::{CostModel, PolicySpec, Schedule};

/// One policy-vs-OPT comparison.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RatioReport {
    /// The online policy's cost on the schedule.
    pub policy_cost: f64,
    /// OPT's cost on the same schedule (cold start, like the policy).
    pub opt_cost: f64,
    /// `policy_cost / opt_cost`, or `None` when OPT is free (the ratio is
    /// then unbounded whenever the policy paid anything).
    pub ratio: Option<f64>,
}

impl RatioReport {
    /// Whether this observation violates `policy ≤ factor·opt + slack` —
    /// i.e. whether it *disproves* `factor`-competitiveness with additive
    /// constant `slack`.
    pub fn violates(&self, factor: f64, slack: f64) -> bool {
        self.policy_cost > factor * self.opt_cost + slack + 1e-9
    }
}

/// Measures `spec` against OPT on one schedule. OPT starts from the same
/// initial replica state as the policy (ST2/T2m start with a replica;
/// giving the offline algorithm the same head start keeps it a true lower
/// bound).
pub fn measure(spec: PolicySpec, schedule: &Schedule, model: CostModel) -> RatioReport {
    let mut policy = spec.build();
    measure_policy(policy.as_mut(), schedule, model)
}

/// [`measure`] for an arbitrary policy instance (taken in its *initial*
/// state) — lets extensions outside [`PolicySpec`] (e.g. the adaptive
/// estimator policy) use the same harness.
pub fn measure_policy(
    policy: &mut dyn mdr_core::AllocationPolicy,
    schedule: &Schedule,
    model: CostModel,
) -> RatioReport {
    let initial_copy = policy.has_copy();
    let policy_cost = mdr_core::run_policy(policy, schedule, model).total_cost;
    let opt = opt_cost_from(schedule, model, initial_copy);
    RatioReport {
        policy_cost,
        opt_cost: opt,
        ratio: (opt > 0.0).then(|| policy_cost / opt),
    }
}

/// The asymptotic per-cycle ratio of `spec` on `warmup · cycleⁿ`: runs the
/// cycle `cycles` times after the warm-up and returns the overall
/// policy/OPT ratio. As `cycles → ∞` this converges (from below) to the
/// tight competitive factor when `cycle` is the right adversarial block.
pub fn cycle_ratio(
    spec: PolicySpec,
    warmup: &Schedule,
    cycle: &Schedule,
    cycles: usize,
    model: CostModel,
) -> RatioReport {
    assert!(!cycle.is_empty(), "cycle must be non-empty");
    let schedule = warmup.concat(&cycle.repeat(cycles));
    measure(spec, &schedule, model)
}

/// The worst (highest-ratio) observation of `spec` over `trials` random
/// schedules of length `len` with write fraction drawn uniformly per trial.
/// Returns the worst report and the schedule that produced it.
pub fn random_worst(
    spec: PolicySpec,
    model: CostModel,
    len: usize,
    trials: usize,
    seed: u64,
) -> (Schedule, RatioReport) {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut worst: Option<(Schedule, RatioReport)> = None;
    for t in 0..trials {
        // Mix i.i.d. and run-structured schedules; runs probe harder.
        let schedule = if t % 2 == 0 {
            crate::generators::random_schedule(len, rng.random::<f64>(), seed ^ (t as u64))
        } else {
            let mean_run = 1.0 + rng.random::<f64>() * (len as f64 / 4.0);
            crate::generators::random_run_schedule(len, mean_run, seed ^ (t as u64))
        };
        let report = measure(spec, &schedule, model);
        // Rank by ratio; a schedule where OPT is free is only interesting
        // (infinitely bad) if the policy actually paid something.
        let rank = |r: &RatioReport| match r.ratio {
            Some(ratio) => ratio,
            None if r.policy_cost > 0.0 => f64::INFINITY,
            None => 0.0,
        };
        let candidate = rank(&report);
        let current = worst.as_ref().map_or(f64::NEG_INFINITY, |(_, r)| rank(r));
        if candidate > current {
            worst = Some((schedule, report));
        }
    }
    let Some(found) = worst else {
        panic!("at least one trial required");
    };
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use mdr_analysis::competitive;

    #[test]
    fn measure_basic() {
        let s: Schedule = "rrrr".parse().unwrap();
        let r = measure(PolicySpec::St1, &s, CostModel::Connection);
        assert_eq!(r.policy_cost, 4.0);
        assert_eq!(r.opt_cost, 1.0);
        assert_eq!(r.ratio, Some(4.0));
        assert!(r.violates(3.0, 0.5));
        assert!(!r.violates(4.0, 0.0));
    }

    #[test]
    fn opt_zero_yields_no_ratio() {
        let s = Schedule::all_writes(10);
        let r = measure(PolicySpec::St2, &s, CostModel::Connection);
        assert_eq!(r.opt_cost, 0.0);
        assert_eq!(r.ratio, None);
        assert_eq!(r.policy_cost, 10.0);
        // …which violates every claimed factor: the statics are not
        // competitive (§5.3).
        assert!(r.violates(1_000.0, 5.0));
    }

    #[test]
    fn swk_cycle_ratio_approaches_k_plus_one() {
        // Theorem 4 tightness, empirically: the adversarial cycle drives the
        // overall ratio toward k + 1.
        for k in [3usize, 5, 9] {
            let warmup = Schedule::all_reads(k);
            let half = k.div_ceil(2);
            let cycle = Schedule::write_read_cycles(half, half, 1);
            let r = cycle_ratio(
                PolicySpec::SlidingWindow { k },
                &warmup,
                &cycle,
                200,
                CostModel::Connection,
            );
            let ratio = r.ratio.unwrap();
            let target = competitive::swk_connection_factor(k);
            assert!(ratio > target - 0.1, "k={k}: {ratio} vs {target}");
            assert!(
                ratio <= target + 1e-9,
                "k={k}: tightness must not be exceeded"
            );
        }
    }

    #[test]
    fn sw1_cycle_ratio_approaches_theorem_11() {
        for omega in [0.0, 0.5, 1.0] {
            let model = CostModel::message(omega);
            let warmup = Schedule::all_reads(1);
            let cycle: Schedule = "wr".parse().unwrap();
            let r = cycle_ratio(
                PolicySpec::SlidingWindow { k: 1 },
                &warmup,
                &cycle,
                400,
                model,
            );
            let ratio = r.ratio.unwrap();
            let target = competitive::sw1_message_factor(omega);
            assert!(ratio > target - 0.05, "ω={omega}: {ratio} vs {target}");
            assert!(ratio <= target + 1e-9, "ω={omega}");
        }
    }

    #[test]
    fn swk_message_cycle_ratio_approaches_theorem_12() {
        for (k, omega) in [(3usize, 0.5), (5, 0.25), (7, 1.0)] {
            let model = CostModel::message(omega);
            let warmup = Schedule::all_reads(k);
            let half = k.div_ceil(2);
            let cycle = Schedule::write_read_cycles(half, half, 1);
            let r = cycle_ratio(PolicySpec::SlidingWindow { k }, &warmup, &cycle, 400, model);
            let ratio = r.ratio.unwrap();
            let target = competitive::swk_message_factor(k, omega);
            assert!(
                ratio > target - 0.05,
                "k={k} ω={omega}: {ratio} vs {target}"
            );
            assert!(ratio <= target + 1e-9, "k={k} ω={omega}");
        }
    }

    #[test]
    fn t1_cycle_ratio_approaches_m_plus_one() {
        for m in [2usize, 5, 9] {
            let cycle = generators::t1_adversarial(m, 1);
            let r = cycle_ratio(
                PolicySpec::T1 { m },
                &Schedule::new(),
                &cycle,
                300,
                CostModel::Connection,
            );
            let ratio = r.ratio.unwrap();
            assert!(ratio > m as f64 + 1.0 - 0.05, "m={m}: {ratio}");
            assert!(ratio <= m as f64 + 1.0 + 1e-9, "m={m}");
        }
    }

    #[test]
    fn random_search_never_violates_the_proved_factors() {
        // 200 random schedules per policy/model: no observation may exceed
        // the paper's factor (with the warm-up additive slack b = k + 1).
        for k in [1usize, 3, 5] {
            let spec = PolicySpec::SlidingWindow { k };
            for model in [CostModel::Connection, CostModel::message(0.5)] {
                let factor = competitive::competitive_factor(spec, model).unwrap();
                let (sched, worst) = random_worst(spec, model, 60, 200, 7);
                assert!(
                    !worst.violates(factor, (k + 1) as f64 * 2.0),
                    "{spec} {model}: ratio {:?} on {sched}",
                    worst.ratio
                );
            }
        }
    }
}
