//! The offline optimal allocation algorithm ("the ideal off-line algorithm
//! that knows the whole sequence of requests in advance", §2) as an O(n)
//! two-state dynamic program.
//!
//! ## Cost semantics
//!
//! OPT controls, before and at each request, whether the MC holds a replica:
//!
//! * a **read** with the replica costs 0; without it, one remote read
//!   (1 connection / `1 + ω`) after which OPT may *keep* the returned copy
//!   at no extra cost (the data just arrived);
//! * a **write** may be *propagated* (1 connection / 1 data message),
//!   establishing or refreshing the replica, or left silent (cost 0), in
//!   which case any replica lapses;
//! * *dropping* a replica is free offline — the SC (which issues the writes
//!   and knows the future) simply stops pushing.
//!
//! These are exactly the semantics under which the paper's tight
//! competitive factors are achieved — see DESIGN.md §2: on the canonical
//! cycle `(k+1)/2 writes · (k+1)/2 reads`, OPT pays 1 (it acquires the
//! replica by letting the *last* write of the burst propagate), while SWk
//! pays `k + 1` connections (Theorem 4) or `(1+ω/2)(k+1) + ω` in messages
//! (Theorem 12).

use mdr_core::{CostModel, Request, Schedule};

/// The cost of OPT's four request/end-state combinations under `model`.
#[derive(Debug, Clone, Copy)]
struct OptPrices {
    /// Remote read (request + response) when the replica is absent.
    remote_read: f64,
    /// Propagating a write (data message / one connection).
    propagate: f64,
}

impl OptPrices {
    fn for_model(model: CostModel) -> OptPrices {
        match model {
            CostModel::Connection => OptPrices {
                remote_read: 1.0,
                propagate: 1.0,
            },
            CostModel::Message { omega } => OptPrices {
                remote_read: 1.0 + omega,
                propagate: 1.0,
            },
        }
    }
}

/// Result of the offline optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct OptOutcome {
    /// The minimum achievable cost of the schedule.
    pub cost: f64,
    /// Whether the MC holds a replica after each request under (one) optimal
    /// plan — useful for inspecting what OPT "did".
    pub states: Vec<bool>,
}

/// Computes OPT's cost on `schedule` under `model`, starting with
/// `initial_copy` at the MC.
///
/// O(n) time, O(n) space (for the decision trace; use
/// [`opt_cost`] for O(1) space).
pub fn opt_outcome(schedule: &Schedule, model: CostModel, initial_copy: bool) -> OptOutcome {
    let prices = OptPrices::for_model(model);
    let n = schedule.len();
    // dp[s] = min cost so far ending with replica state s.
    let (mut dp0, mut dp1) = if initial_copy {
        (0.0f64, 0.0f64) // dropping is free, so state 0 is reachable at cost 0
    } else {
        // A replica can only be acquired by a remote read or a propagated
        // write, never out of thin air — state 1 is unreachable initially.
        (0.0f64, f64::INFINITY)
    };
    // Backpointers: for each request, the predecessor state chosen for each
    // end state.
    let mut back: Vec<(bool, bool)> = Vec::with_capacity(n);
    for req in schedule {
        let (n0, n1, b) = match req {
            Request::Read => {
                // End 0: from 0 pay remote read; from 1 read locally then
                // drop (free).
                let via0 = dp0 + prices.remote_read;
                let via1 = dp1;
                let n0 = via0.min(via1);
                // End 1: from 0 pay remote read and keep; from 1 free.
                let k_via0 = dp0 + prices.remote_read;
                let k_via1 = dp1;
                let n1 = k_via0.min(k_via1);
                (n0, n1, (via1 <= via0, k_via1 <= k_via0))
            }
            Request::Write => {
                // End 0: silent write, free from either state.
                let n0 = dp0.min(dp1);
                // End 1: the write must be propagated.
                let n1 = dp0.min(dp1) + prices.propagate;
                let from1 = dp1 <= dp0;
                (n0, n1, (from1, from1))
            }
        };
        back.push(b);
        dp0 = n0;
        dp1 = n1;
    }
    let cost = dp0.min(dp1);
    // Reconstruct one optimal state sequence.
    let mut states = vec![false; n];
    let mut cur = dp1 < dp0;
    for i in (0..n).rev() {
        states[i] = cur;
        let (p0, p1) = back[i];
        cur = if cur { p1 } else { p0 };
    }
    OptOutcome { cost, states }
}

/// The minimum offline cost of `schedule` under `model`, from the paper's
/// cold start (no replica at the MC). O(n) time, O(1) space.
pub fn opt_cost(schedule: &Schedule, model: CostModel) -> f64 {
    opt_cost_from(schedule, model, false)
}

/// [`opt_cost`] with an explicit initial replica state.
pub fn opt_cost_from(schedule: &Schedule, model: CostModel, initial_copy: bool) -> f64 {
    let prices = OptPrices::for_model(model);
    let (mut dp0, mut dp1) = if initial_copy {
        (0.0f64, 0.0f64)
    } else {
        (0.0f64, f64::INFINITY)
    };
    for req in schedule {
        match req {
            Request::Read => {
                let best = (dp0 + prices.remote_read).min(dp1);
                dp0 = best;
                dp1 = best;
            }
            Request::Write => {
                let best = dp0.min(dp1);
                dp0 = best;
                dp1 = best + prices.propagate;
            }
        }
    }
    dp0.min(dp1)
}

/// Brute-force reference: tries all `2^n` replica-state sequences. Only for
/// tests (n ≲ 16).
pub fn opt_cost_bruteforce(schedule: &Schedule, model: CostModel, initial_copy: bool) -> f64 {
    let prices = OptPrices::for_model(model);
    let n = schedule.len();
    assert!(n <= 20, "brute force is exponential; use opt_cost");
    let mut best = f64::INFINITY;
    for mask in 0u64..(1 << n) {
        let mut cost = 0.0;
        let mut prev = initial_copy;
        for (i, req) in schedule.iter().enumerate() {
            let state = (mask >> i) & 1 == 1;
            match req {
                // A read from the replica is free (keeping or dropping the
                // copy afterwards costs nothing); without it, one remote
                // read pays for the data either way.
                Request::Read => {
                    if !prev {
                        cost += prices.remote_read;
                    }
                }
                // A write is billed exactly when it is propagated, i.e.
                // when the plan keeps a replica through it.
                Request::Write => {
                    if state {
                        cost += prices.propagate;
                    }
                }
            }
            prev = state;
        }
        best = best.min(cost);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn() -> CostModel {
        CostModel::Connection
    }

    #[test]
    fn empty_schedule_costs_zero() {
        assert_eq!(opt_cost(&Schedule::new(), conn()), 0.0);
    }

    #[test]
    fn all_reads_cost_one_remote_read() {
        // OPT fetches once and keeps the copy.
        for n in [1usize, 5, 100] {
            assert_eq!(opt_cost(&Schedule::all_reads(n), conn()), 1.0);
            let omega = 0.5;
            assert_eq!(
                opt_cost(&Schedule::all_reads(n), CostModel::message(omega)),
                1.0 + omega
            );
        }
    }

    #[test]
    fn all_writes_cost_nothing() {
        for n in [1usize, 5, 100] {
            assert_eq!(opt_cost(&Schedule::all_writes(n), conn()), 0.0);
            assert_eq!(
                opt_cost(&Schedule::all_writes(n), CostModel::message(0.7)),
                0.0
            );
        }
    }

    #[test]
    fn canonical_swk_cycle_costs_one_per_cycle() {
        // w^{(k+1)/2} r^{(k+1)/2} repeated: OPT propagates only the last
        // write of each burst — 1 unit per cycle, both models.
        for k in [3usize, 5, 9] {
            let half = k.div_ceil(2);
            for cycles in [1usize, 4, 10] {
                let s = Schedule::write_read_cycles(half, half, cycles);
                assert_eq!(opt_cost(&s, conn()), cycles as f64, "k={k} cycles={cycles}");
                assert_eq!(
                    opt_cost(&s, CostModel::message(0.6)),
                    cycles as f64,
                    "k={k} cycles={cycles} (message)"
                );
            }
        }
    }

    #[test]
    fn alternating_costs_one_per_write() {
        // r,w,r,w…: keeping the copy and propagating every write is optimal
        // (1 per pair beats 1+ω per pair of going remote on reads).
        let s = Schedule::alternating(mdr_core::Request::Read, 20);
        let omega = 0.5;
        // First read: OPT must fetch (1 + ω) then propagate 9 writes… or
        // keep: fetch once 1.5, then 10 writes propagated = 10; the last
        // write may stay silent since no read follows: 9.
        let expected = (1.0 + omega) + 9.0;
        assert_eq!(opt_cost(&s, CostModel::message(omega)), expected);
    }

    #[test]
    fn dp_matches_bruteforce_exhaustively() {
        // Every schedule of length ≤ 10, both models, both initial states.
        for len in 0..=10usize {
            for bits in 0u64..(1 << len) {
                let s = Schedule::from_bits(bits, len);
                for model in [conn(), CostModel::message(0.3), CostModel::message(1.0)] {
                    for init in [false, true] {
                        let dp = opt_cost_from(&s, model, init);
                        let bf = opt_cost_bruteforce(&s, model, init);
                        assert!(
                            (dp - bf).abs() < 1e-9,
                            "len={len} bits={bits:b} {model} init={init}: {dp} vs {bf}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn outcome_cost_matches_opt_cost_and_states_are_consistent() {
        let schedules = ["rrwwrrwwr", "wwwrrrwww", "rwrwrw", "r", "w"];
        for s in schedules {
            let sched: Schedule = s.parse().unwrap();
            for model in [conn(), CostModel::message(0.4)] {
                let outcome = opt_outcome(&sched, model, false);
                assert!(
                    (outcome.cost - opt_cost(&sched, model)).abs() < 1e-9,
                    "{s} {model}"
                );
                assert_eq!(outcome.states.len(), sched.len());
                // Replaying the state sequence must reproduce the cost.
                let mut cost = 0.0;
                let mut prev = false;
                for (i, req) in sched.iter().enumerate() {
                    let state = outcome.states[i];
                    match req {
                        mdr_core::Request::Read => {
                            if !prev {
                                cost += match model {
                                    CostModel::Connection => 1.0,
                                    CostModel::Message { omega } => 1.0 + omega,
                                };
                            }
                        }
                        mdr_core::Request::Write => {
                            if state {
                                cost += 1.0;
                            }
                        }
                    }
                    prev = state;
                }
                assert!(
                    (cost - outcome.cost).abs() < 1e-9,
                    "{s} {model}: replay {cost}"
                );
            }
        }
    }

    #[test]
    fn initial_copy_helps_on_read_prefixes() {
        let s: Schedule = "rrr".parse().unwrap();
        assert_eq!(opt_cost_from(&s, conn(), true), 0.0);
        assert_eq!(opt_cost_from(&s, conn(), false), 1.0);
    }

    #[test]
    fn opt_is_monotone_under_prefix() {
        // Cost of a prefix never exceeds cost of the whole schedule.
        let s: Schedule = "rwwrrwrwwrrrw".parse().unwrap();
        for model in [conn(), CostModel::message(0.25)] {
            let mut prev = 0.0;
            for i in 0..=s.len() {
                let c = opt_cost(&s.prefix(i), model);
                assert!(c + 1e-12 >= prev, "prefix {i}");
                prev = c;
            }
        }
    }
}
