//! # mdr-adversary — offline optimum and worst-case tooling
//!
//! The worst-case side of **Huang, Sistla, Wolfson, "Data Replication for
//! Mobile Computers" (SIGMOD 1994)**: competitive analysis compares each
//! online allocation algorithm against the ideal offline algorithm M that
//! knows the whole request sequence in advance (§3).
//!
//! * [`opt_cost`] / [`opt_outcome`] — the offline optimum as an `O(n)`
//!   two-state dynamic program (cost semantics in DESIGN.md §2, pinned by
//!   the paper's tightness claims), with a brute-force reference;
//! * [`generators`] — the adversarial schedules on which the tight factors
//!   are attained (Theorems 4, 11, 12 and the §7.1 cycles), plus random and
//!   run-structured probes;
//! * [`measure`] / [`cycle_ratio`] / [`random_worst`] — the ratio harness;
//! * [`exhaustive_search`] / [`verify_factor`] — enumeration of *every*
//!   schedule up to a length bound, turning "no counterexample found" into
//!   a short-horizon proof.
//!
//! ```
//! use mdr_adversary::{measure, generators};
//! use mdr_core::{CostModel, PolicySpec};
//!
//! // SW3 on its adversarial schedule: the ratio approaches k + 1 = 4.
//! let schedule = generators::swk_adversarial(3, 50);
//! let report = measure(PolicySpec::SlidingWindow { k: 3 }, &schedule, CostModel::Connection);
//! assert!(report.ratio.unwrap() > 3.8);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod generators;
mod opt;
mod ratio;
mod search;

pub use opt::{opt_cost, opt_cost_bruteforce, opt_cost_from, opt_outcome, OptOutcome};
pub use ratio::{cycle_ratio, measure, measure_policy, random_worst, RatioReport};
pub use search::{exhaustive_search, exhaustive_search_policy, verify_factor, SearchOutcome};
