//! Adversarial schedule constructions — the lower-bound side of the
//! paper's tightness claims.
//!
//! Each generator produces the request sequence on which the corresponding
//! algorithm provably attains its competitive factor:
//!
//! * [`swk_adversarial`] — the Theorem 4/12 cycle: after a warm-up that
//!   gives SWk the replica, alternate bursts of `(k+1)/2` writes and
//!   `(k+1)/2` reads. SWk pays `k+1` connections (or `(1+ω/2)(k+1)+ω`
//!   messages) per cycle; OPT pays 1 (it propagates only the last write of
//!   each burst).
//! * [`sw1_adversarial`] — the Theorem 11 alternation `r,w,r,w,…`: SW1 pays
//!   `1+2ω` per pair, OPT pays 1.
//! * [`t1_adversarial`] / [`t2_adversarial`] — the §7.1 cycles
//!   `(r^m w)^c` / `(w^m r)^c`: the T algorithm pays `m+1` connections per
//!   cycle, OPT pays 1.
//! * [`static_punisher`] — the §5.3 unboundedness witnesses: all-reads for
//!   ST1, all-writes for ST2.

use mdr_core::{PolicySpec, Request, Schedule};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The Theorem 4 / Theorem 12 adversarial schedule for SWk: `k` warm-up
/// reads (giving SWk the replica and a full-read window), then `cycles`
/// repetitions of `(k+1)/2` writes followed by `(k+1)/2` reads.
pub fn swk_adversarial(k: usize, cycles: usize) -> Schedule {
    assert!(k % 2 == 1, "window size must be odd");
    let half = k.div_ceil(2);
    Schedule::all_reads(k).concat(&Schedule::write_read_cycles(half, half, cycles))
}

/// The Theorem 11 adversarial schedule for SW1: one allocating read, then
/// `pairs` repetitions of `w, r`. Every write hits a just-allocated replica
/// (delete-request, ω) and every read misses (1+ω).
pub fn sw1_adversarial(pairs: usize) -> Schedule {
    Schedule::all_reads(1).concat(&Schedule::alternating(Request::Write, 2 * pairs))
}

/// The §7.1 adversarial schedule for T1m: `cycles` repetitions of `m`
/// consecutive reads (all remote; the last allocates) followed by one write
/// (delete-request).
pub fn t1_adversarial(m: usize, cycles: usize) -> Schedule {
    Schedule::read_write_cycles(m, 1, cycles)
}

/// The §7.1 adversarial schedule for T2m: `cycles` repetitions of `m`
/// consecutive writes (all propagated; the last deallocates) followed by one
/// read (remote, reallocating).
pub fn t2_adversarial(m: usize, cycles: usize) -> Schedule {
    Schedule::write_read_cycles(m, 1, cycles)
}

/// The §5.3 witnesses that the statics are not competitive: a pure-read run
/// for ST1 (OPT fetches once; ST1 pays every time) and a pure-write run for
/// ST2 (OPT pays nothing; ST2 propagates every write).
pub fn static_punisher(spec: PolicySpec, n: usize) -> Schedule {
    match spec {
        PolicySpec::St1 => Schedule::all_reads(n),
        PolicySpec::St2 => Schedule::all_writes(n),
        other => panic!("static_punisher is defined for the static policies, got {other}"),
    }
}

/// The canonical adversarial schedule for any policy in the roster —
/// dispatches to the construction that achieves the policy's tight factor.
/// For the (non-competitive) statics this returns the §5.3 punisher.
pub fn adversarial_for(spec: PolicySpec, cycles: usize) -> Schedule {
    match spec {
        PolicySpec::St1 | PolicySpec::St2 => static_punisher(spec, cycles),
        PolicySpec::SlidingWindow { k: 1 } => sw1_adversarial(cycles),
        PolicySpec::SlidingWindow { k } => swk_adversarial(k, cycles),
        PolicySpec::T1 { m } => t1_adversarial(m, cycles),
        PolicySpec::T2 { m } => t2_adversarial(m, cycles),
    }
}

/// A uniformly random schedule of length `len` with write probability
/// `theta` — the random-search side of the worst-case experiments.
pub fn random_schedule(len: usize, theta: f64, seed: u64) -> Schedule {
    assert!((0.0..=1.0).contains(&theta));
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            if rng.random::<f64>() < theta {
                Request::Write
            } else {
                Request::Read
            }
        })
        .collect()
}

/// A random schedule built from geometric *runs* of equal requests (mean
/// run length `mean_run`). Runs are where online allocation decisions hurt,
/// so run-structured schedules probe the worst case much harder than
/// i.i.d. ones.
pub fn random_run_schedule(len: usize, mean_run: f64, seed: u64) -> Schedule {
    assert!(mean_run >= 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len);
    let mut current = if rng.random::<f64>() < 0.5 {
        Request::Read
    } else {
        Request::Write
    };
    let p_switch = 1.0 / mean_run;
    while out.len() < len {
        out.push(current);
        if rng.random::<f64>() < p_switch {
            current = current.flipped();
        }
    }
    Schedule::from_requests(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swk_adversarial_shape() {
        let s = swk_adversarial(3, 2);
        assert_eq!(s.to_string(), "rrrwwrrwwrr");
    }

    #[test]
    fn sw1_adversarial_shape() {
        assert_eq!(sw1_adversarial(3).to_string(), "rwrwrwr");
    }

    #[test]
    fn t_adversarial_shapes() {
        assert_eq!(t1_adversarial(3, 2).to_string(), "rrrwrrrw");
        assert_eq!(t2_adversarial(2, 2).to_string(), "wwrwwr");
    }

    #[test]
    fn punishers() {
        assert_eq!(static_punisher(PolicySpec::St1, 4).to_string(), "rrrr");
        assert_eq!(static_punisher(PolicySpec::St2, 3).to_string(), "www");
    }

    #[test]
    #[should_panic(expected = "static")]
    fn punisher_rejects_dynamic_policies() {
        let _ = static_punisher(PolicySpec::SlidingWindow { k: 3 }, 5);
    }

    #[test]
    fn dispatcher_covers_the_roster() {
        for spec in PolicySpec::roster(&[1, 3, 7], &[2, 4]) {
            let s = adversarial_for(spec, 3);
            assert!(!s.is_empty(), "{spec}");
        }
    }

    #[test]
    fn random_schedule_is_seeded_and_theta_biased() {
        let a = random_schedule(2_000, 0.7, 1);
        let b = random_schedule(2_000, 0.7, 1);
        assert_eq!(a, b);
        let frac = a.write_fraction().unwrap();
        assert!((frac - 0.7).abs() < 0.05, "{frac}");
    }

    #[test]
    fn run_schedule_has_longer_runs_than_iid() {
        let runs = random_run_schedule(5_000, 8.0, 3);
        let iid = random_schedule(5_000, 0.5, 3);
        let mean_run = |s: &Schedule| {
            let mut total_runs = 1usize;
            for w in s.as_slice().windows(2) {
                if w[0] != w[1] {
                    total_runs += 1;
                }
            }
            s.len() as f64 / total_runs as f64
        };
        assert!(mean_run(&runs) > 2.0 * mean_run(&iid));
        assert_eq!(runs.len(), 5_000);
    }
}
