//! Exhaustive worst-case search over all schedules up to a length bound.
//!
//! For schedule lengths up to ~20 the full space `2^L` is cheap to sweep,
//! which upgrades the random search into a *proof by enumeration* that no
//! short schedule violates a claimed competitive factor, and locates the
//! exact short-horizon worst case.
//!
//! The enumeration fans out over the sweep engine's
//! [`parallel_map`](mdr_sim::sweep::parallel_map): each length level is
//! split into fixed bit-ranges of the schedule space, workers race for
//! ranges, and the per-range partial results are folded back **in range
//! order** with strict-maximum comparisons — so the reported worst
//! schedule, ratio, and examined count are identical to a serial sweep at
//! any thread count.

use crate::opt::opt_cost_from;
use crate::ratio::RatioReport;
use mdr_core::{approx_eq, run_spec, CostModel, PolicySpec, Schedule};
use mdr_sim::sweep::parallel_map;

/// Schedules per parallel work item: coarse enough that thread handoff is
/// noise, fine enough that 4 cores stay busy from length ~14 up.
const CHUNK: u64 = 1 << 12;

/// Result of an exhaustive sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The schedule attaining the highest policy/OPT ratio (ties: first
    /// found; schedules with OPT = 0 and positive policy cost win outright).
    pub worst_schedule: Schedule,
    /// The measurement on that schedule.
    pub worst: RatioReport,
    /// Highest policy cost observed on any schedule with `opt_cost == 0` —
    /// 0 when the policy is never charged on OPT-free schedules.
    pub unbounded_witness_cost: f64,
    /// Number of schedules examined.
    pub examined: u64,
}

/// Exhaustively measures `spec` against OPT on **every** schedule of length
/// `1..=max_len` (OPT gets the same initial replica state as the policy).
///
/// # Panics
///
/// Panics if `max_len > 22` (the sweep would exceed ~8M schedules).
pub fn exhaustive_search(spec: PolicySpec, model: CostModel, max_len: usize) -> SearchOutcome {
    exhaustive_search_policy(|| spec.build(), model, max_len)
}

/// [`exhaustive_search`] for an arbitrary policy constructor — each
/// schedule gets a fresh instance from `factory` (`Sync` because workers
/// call it concurrently).
///
/// Ties on the ratio keep the first schedule in enumeration order
/// (shorter length, then lower bits): replacement requires a strictly
/// larger ratio, which makes the chunked parallel fold agree with the
/// serial scan exactly.
pub fn exhaustive_search_policy<F>(factory: F, model: CostModel, max_len: usize) -> SearchOutcome
where
    F: Fn() -> Box<dyn mdr_core::AllocationPolicy> + Sync,
{
    assert!((1..=22).contains(&max_len), "max_len must be in 1..=22");
    let mut worst: Option<(Schedule, RatioReport)> = None;
    let mut unbounded_witness_cost = 0.0f64;
    let mut examined = 0u64;
    for len in 1..=max_len {
        let total = 1u64 << len;
        let chunks = total.div_ceil(CHUNK) as usize;
        let partials = parallel_map(chunks, 0, 1, |chunk_index| {
            let start = chunk_index as u64 * CHUNK;
            let end = (start + CHUNK).min(total);
            let mut local_worst: Option<(u64, RatioReport)> = None;
            let mut local_unbounded = 0.0f64;
            for bits in start..end {
                let schedule = Schedule::from_bits(bits, len);
                let mut policy = factory();
                let initial_copy = policy.has_copy();
                let policy_cost =
                    mdr_core::run_policy(policy.as_mut(), &schedule, model).total_cost;
                let opt = opt_cost_from(&schedule, model, initial_copy);
                if approx_eq(opt, 0.0) {
                    local_unbounded = local_unbounded.max(policy_cost);
                    continue;
                }
                let ratio = policy_cost / opt;
                let improves = local_worst
                    .as_ref()
                    .is_none_or(|(_, w)| ratio > w.ratio.unwrap_or(0.0));
                if improves {
                    local_worst = Some((
                        bits,
                        RatioReport {
                            policy_cost,
                            opt_cost: opt,
                            ratio: Some(ratio),
                        },
                    ));
                }
            }
            (local_worst, local_unbounded, end - start)
        });
        // Sequential fold in chunk order: first-found strict maxima are
        // associative over ordered chunks, so this equals the serial scan.
        for (local_worst, local_unbounded, count) in partials {
            examined += count;
            unbounded_witness_cost = unbounded_witness_cost.max(local_unbounded);
            if let Some((bits, report)) = local_worst {
                let improves = worst
                    .as_ref()
                    .is_none_or(|(_, w)| report.ratio.unwrap_or(0.0) > w.ratio.unwrap_or(0.0));
                if improves {
                    worst = Some((Schedule::from_bits(bits, len), report));
                }
            }
        }
    }
    let Some((worst_schedule, worst)) = worst else {
        panic!("at least one schedule with positive OPT cost");
    };
    SearchOutcome {
        worst_schedule,
        worst,
        unbounded_witness_cost,
        examined,
    }
}

/// Verifies by enumeration that `spec` satisfies
/// `COST ≤ factor · OPT + slack` on every schedule up to `max_len`.
/// Returns the first violating schedule if any.
pub fn verify_factor(
    spec: PolicySpec,
    model: CostModel,
    factor: f64,
    slack: f64,
    max_len: usize,
) -> Result<u64, Schedule> {
    assert!((1..=22).contains(&max_len));
    let initial_copy = spec.build().has_copy();
    let mut examined = 0u64;
    for len in 1..=max_len {
        let total = 1u64 << len;
        let chunks = total.div_ceil(CHUNK) as usize;
        let violations = parallel_map(chunks, 0, 1, |chunk_index| {
            let start = chunk_index as u64 * CHUNK;
            let end = (start + CHUNK).min(total);
            (start..end).find(|&bits| {
                let schedule = Schedule::from_bits(bits, len);
                let policy_cost = run_spec(spec, &schedule, model).total_cost;
                let opt = opt_cost_from(&schedule, model, initial_copy);
                policy_cost > factor * opt + slack + 1e-9
            })
        });
        // Chunks are folded in order, so the reported witness is the first
        // violation in enumeration order, same as a serial scan.
        if let Some(bits) = violations.into_iter().flatten().next() {
            return Err(Schedule::from_bits(bits, len));
        }
        examined += total;
    }
    Ok(examined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdr_analysis::competitive;

    #[test]
    fn statics_produce_unbounded_witnesses() {
        let st1 = exhaustive_search(PolicySpec::St1, CostModel::Connection, 8);
        // ST1 never pays on OPT-free schedules? No: OPT = 0 only on
        // all-write schedules, where ST1 pays nothing either.
        assert_eq!(st1.unbounded_witness_cost, 0.0);
        // But its bounded ratio grows with length: r^8 costs 8 vs OPT 1.
        assert_eq!(st1.worst.ratio, Some(8.0));

        let st2 = exhaustive_search(PolicySpec::St2, CostModel::Connection, 8);
        // ST2 pays 8 on w^8 while OPT pays 0 — the §5.3 witness.
        assert_eq!(st2.unbounded_witness_cost, 8.0);
    }

    #[test]
    fn sw1_exhaustive_respects_theorem_11() {
        for omega in [0.0, 0.5, 1.0] {
            let model = CostModel::message(omega);
            let spec = PolicySpec::SlidingWindow { k: 1 };
            let factor = competitive::sw1_message_factor(omega);
            // Cold-start slack: the first allocation can cost one remote
            // read before any OPT cost accrues.
            let examined = verify_factor(spec, model, factor, 1.0 + omega, 14)
                .unwrap_or_else(|s| panic!("violated on {s} at ω={omega}"));
            assert_eq!(examined, (2u64 << 14) - 2);
        }
    }

    #[test]
    fn sw3_exhaustive_respects_theorem_4_and_12() {
        let spec = PolicySpec::SlidingWindow { k: 3 };
        verify_factor(spec, CostModel::Connection, 4.0, 4.0, 14)
            .unwrap_or_else(|s| panic!("connection factor violated on {s}"));
        let omega = 0.5;
        let factor = competitive::swk_message_factor(3, omega);
        verify_factor(
            spec,
            CostModel::message(omega),
            factor,
            4.0 * (1.0 + omega),
            14,
        )
        .unwrap_or_else(|s| panic!("message factor violated on {s}"));
    }

    #[test]
    fn t_policies_exhaustively_respect_m_plus_one() {
        for m in [1usize, 2, 3] {
            verify_factor(
                PolicySpec::T1 { m },
                CostModel::Connection,
                (m + 1) as f64,
                (m + 1) as f64,
                12,
            )
            .unwrap_or_else(|s| panic!("T1({m}) violated on {s}"));
            verify_factor(
                PolicySpec::T2 { m },
                CostModel::Connection,
                (m + 1) as f64,
                (m + 1) as f64,
                12,
            )
            .unwrap_or_else(|s| panic!("T2({m}) violated on {s}"));
        }
    }

    #[test]
    fn search_finds_the_known_worst_shape_for_sw3() {
        // The short-horizon worst case for SW3 must reach a ratio close to
        // the factor (it cannot exceed it) and beat every random probe.
        let out = exhaustive_search(
            PolicySpec::SlidingWindow { k: 3 },
            CostModel::Connection,
            12,
        );
        let ratio = out.worst.ratio.unwrap();
        assert!(ratio > 3.0, "exhaustive worst ratio too small: {ratio}");
        assert_eq!(out.examined, (2u64 << 12) - 2);
    }

    #[test]
    fn tighter_factor_is_refuted_by_search() {
        // Claiming SW3 is 2-competitive (below the true 4) must fail — the
        // search is actually sharp enough to refute wrong claims.
        let err = verify_factor(
            PolicySpec::SlidingWindow { k: 3 },
            CostModel::Connection,
            2.0,
            0.0,
            12,
        );
        assert!(err.is_err());
    }
}
