//! Criterion benches over the analytic kernels that every experiment table
//! leans on: π_k evaluation, the closed-form AVG family, quadrature
//! verification, and the multi-object optimal-allocation enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdr_analysis::integrate::integrate;
use mdr_analysis::{message, pi_k};
use mdr_multi::OperationProfile;
use std::hint::black_box;

fn bench_pi_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("pi_k");
    for k in [9usize, 95, 1_001, 10_001] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| pi_k(black_box(k), black_box(0.47)));
        });
    }
    group.finish();
}

fn bench_avg_quadrature(c: &mut Criterion) {
    // Integrating Eq. 11 over θ — the cross-check behind every AVG claim.
    let mut group = c.benchmark_group("avg_quadrature_eq11");
    for k in [9usize, 95] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| integrate(|t| message::exp_swk(k, t, 0.6), 0.0, 1.0, 1e-9));
        });
    }
    group.finish();
}

fn bench_exact_enumeration(c: &mut Criterion) {
    // The 2^k state-space verification of Eq. 5 / Eq. 11.
    let mut group = c.benchmark_group("exact_exp_swk_enumeration");
    group.sample_size(20);
    for k in [9usize, 13, 17] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                mdr_analysis::exact::exact_exp_swk(
                    black_box(k),
                    0.45,
                    mdr_core::CostModel::message(0.6),
                )
            });
        });
    }
    group.finish();
}

fn bench_multi_object_optimum(c: &mut Criterion) {
    // 2^n enumeration of allocations for growing object universes.
    let mut group = c.benchmark_group("multi_object_optimal_allocation");
    for n in [2usize, 8, 14] {
        // One read class and one write class per object plus one joint pair.
        let mut entries = Vec::new();
        for o in 0..n {
            let s = mdr_multi::ObjectSet::singleton(o);
            entries.push((mdr_multi::Operation::read(s), 1.0 + o as f64));
            entries.push((mdr_multi::Operation::write(s), 2.0));
        }
        entries.push((
            mdr_multi::Operation::read(mdr_multi::ObjectSet::from_objects(&[0, 1])),
            3.0,
        ));
        let profile = OperationProfile::new(n, entries);
        group.bench_with_input(BenchmarkId::from_parameter(n), &profile, |b, p| {
            b.iter(|| black_box(p).optimal_allocation());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pi_k,
    bench_avg_quadrature,
    bench_exact_enumeration,
    bench_multi_object_optimum
);
criterion_main!(benches);
