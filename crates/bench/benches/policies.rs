//! Criterion benches: per-request throughput of every allocation policy.
//!
//! The paper's algorithms run on 1994-era mobile hardware in the request
//! path, so per-request overhead matters; these benches demonstrate the
//! O(1) window update and compare the policy families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdr_core::{run_spec, CostModel, PolicySpec, Schedule};
use std::hint::black_box;

fn mixed_schedule(len: usize) -> Schedule {
    // Deterministic pseudo-random mix (no RNG dependency in the hot loop).
    (0..len)
        .map(|i| {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            mdr_core::Request::from_bit(h & (1 << 17) != 0)
        })
        .collect()
}

fn bench_policy_throughput(c: &mut Criterion) {
    let schedule = mixed_schedule(10_000);
    let mut group = c.benchmark_group("policy_run_10k_requests");
    group.throughput(Throughput::Elements(schedule.len() as u64));
    for spec in [
        PolicySpec::St1,
        PolicySpec::St2,
        PolicySpec::SlidingWindow { k: 1 },
        PolicySpec::SlidingWindow { k: 9 },
        PolicySpec::SlidingWindow { k: 101 },
        PolicySpec::T1 { m: 9 },
        PolicySpec::T2 { m: 9 },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.to_string()),
            &spec,
            |b, &spec| {
                b.iter(|| run_spec(black_box(spec), black_box(&schedule), CostModel::Connection));
            },
        );
    }
    group.finish();
}

fn bench_adaptive_policy(c: &mut Criterion) {
    // The extension policy re-evaluates the dominance region per request;
    // compare its per-request overhead against plain SWk.
    use mdr_core::{run_policy, AdaptivePolicy};
    let schedule = mixed_schedule(10_000);
    let mut group = c.benchmark_group("adaptive_vs_swk_10k_requests");
    group.throughput(Throughput::Elements(schedule.len() as u64));
    group.bench_function("adaptive_k9_message", |b| {
        b.iter(|| {
            let mut p = AdaptivePolicy::new(9, CostModel::message(0.6));
            run_policy(&mut p, black_box(&schedule), CostModel::message(0.6))
        });
    });
    group.bench_function("sw9_message", |b| {
        b.iter(|| {
            run_spec(
                PolicySpec::SlidingWindow { k: 9 },
                black_box(&schedule),
                CostModel::message(0.6),
            )
        });
    });
    group.finish();
}

fn bench_window_size_independence(c: &mut Criterion) {
    // The ring-buffer window must make per-request cost independent of k.
    let schedule = mixed_schedule(10_000);
    let mut group = c.benchmark_group("window_update_vs_k");
    group.throughput(Throughput::Elements(schedule.len() as u64));
    for k in [1usize, 15, 255, 4_095] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                run_spec(
                    PolicySpec::SlidingWindow { k },
                    black_box(&schedule),
                    CostModel::message(0.5),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_policy_throughput,
    bench_adaptive_policy,
    bench_window_size_independence
);
criterion_main!(benches);
