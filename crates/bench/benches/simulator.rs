//! Criterion benches: discrete-event simulator throughput (requests/sec
//! through the full MC/SC protocol, with and without the oracle check).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdr_core::PolicySpec;
use mdr_sim::{PoissonWorkload, RunLimit, SimBuilder};
use std::hint::black_box;

const REQUESTS: usize = 5_000;

fn run_sim(spec: PolicySpec, oracle: bool) -> f64 {
    let Ok(builder) = SimBuilder::new(spec).and_then(|b| b.oracle(oracle)) else {
        unreachable!("benchmark policies are valid by construction")
    };
    let mut sim = builder.simulation();
    let mut workload = PoissonWorkload::from_theta(1.0, 0.4, 1234);
    let report = sim.run(&mut workload, RunLimit::Requests(REQUESTS));
    report.cost(mdr_core::CostModel::Connection)
}

fn bench_protocol_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_protocol_5k_requests");
    group.throughput(Throughput::Elements(REQUESTS as u64));
    for spec in [
        PolicySpec::St1,
        PolicySpec::SlidingWindow { k: 9 },
        PolicySpec::T2 { m: 5 },
    ] {
        group.bench_with_input(
            BenchmarkId::new("oracle_on", spec.to_string()),
            &spec,
            |b, &spec| b.iter(|| run_sim(black_box(spec), true)),
        );
        group.bench_with_input(
            BenchmarkId::new("oracle_off", spec.to_string()),
            &spec,
            |b, &spec| b.iter(|| run_sim(black_box(spec), false)),
        );
    }
    group.finish();
}

fn bench_lossy_link(c: &mut Criterion) {
    // ARQ retransmissions add RNG draws and extra events per message.
    let mut group = c.benchmark_group("des_lossy_link_5k_requests");
    group.throughput(Throughput::Elements(REQUESTS as u64));
    for loss in [0.0f64, 0.3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p={loss}")),
            &loss,
            |b, &loss| {
                b.iter(|| {
                    let spec = PolicySpec::SlidingWindow { k: 9 };
                    let Ok(builder) = SimBuilder::new(spec).and_then(|b| b.oracle(false)) else {
                        unreachable!("benchmark policies are valid by construction")
                    };
                    let builder = if loss > 0.0 {
                        let Ok(lossy) = builder.loss(loss, 0.05, 7) else {
                            unreachable!("benchmark loss grid is valid by construction")
                        };
                        lossy
                    } else {
                        builder
                    };
                    let mut sim = builder.simulation();
                    let mut w = PoissonWorkload::from_theta(1.0, 0.4, 1234);
                    sim.run(&mut w, RunLimit::Requests(REQUESTS))
                });
            },
        );
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    use mdr_sim::ArrivalProcess;
    let mut group = c.benchmark_group("workload_generation");
    group.throughput(Throughput::Elements(REQUESTS as u64));
    group.bench_function("poisson_5k_arrivals", |b| {
        b.iter(|| {
            let mut w = PoissonWorkload::from_theta(1.0, 0.5, 7);
            let mut last = 0.0;
            for _ in 0..REQUESTS {
                last = w.next_arrival().unwrap().time;
            }
            black_box(last)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_protocol_throughput,
    bench_lossy_link,
    bench_workload_generation
);
criterion_main!(benches);
