//! Criterion benches: the offline-optimal dynamic program and the
//! worst-case search machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdr_adversary::{exhaustive_search, generators, opt_cost};
use mdr_core::{CostModel, PolicySpec};
use std::hint::black_box;

fn bench_opt_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_dp");
    for len in [1_000usize, 10_000, 100_000] {
        let schedule = generators::random_schedule(len, 0.5, 42);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("connection", len), &schedule, |b, s| {
            b.iter(|| opt_cost(black_box(s), CostModel::Connection));
        });
        group.bench_with_input(BenchmarkId::new("message", len), &schedule, |b, s| {
            b.iter(|| opt_cost(black_box(s), CostModel::message(0.5)));
        });
    }
    group.finish();
}

fn bench_exhaustive_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_search");
    group.sample_size(10);
    for max_len in [10usize, 14] {
        group.bench_with_input(
            BenchmarkId::new("sw3_connection", max_len),
            &max_len,
            |b, &max_len| {
                b.iter(|| {
                    exhaustive_search(
                        PolicySpec::SlidingWindow { k: 3 },
                        CostModel::Connection,
                        black_box(max_len),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_opt_dp, bench_exhaustive_search);
criterion_main!(benches);
