//! Criterion bench: sweep-engine throughput, serial vs parallel.
//!
//! The grid is the `e17` preset shrunk to bench-sized runs; the same
//! work is swept serially and across 2/4/all threads, so the reported
//! per-run times show the fan-out speedup directly. (Determinism is not
//! re-asserted here — the `sweep-determinism` CI job and the mdr-sim
//! property tests own that — but the benched paths are exactly the ones
//! those tests pin.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdr_bench::sweep::e17_grid;
use mdr_bench::RunCfg;
use mdr_sim::sweep::{SweepGrid, SweepOptions};

fn bench_grid() -> SweepGrid {
    let Ok(grid) = e17_grid(RunCfg { fast: true }).requests(1_500) else {
        unreachable!("1500 requests is a valid override")
    };
    grid
}

fn bench_sweep_engine(c: &mut Criterion) {
    let grid = bench_grid();
    let mut group = c.benchmark_group("sweep_e17_preset_1500_requests");
    group.throughput(Throughput::Elements(grid.runs() as u64));
    group.bench_function("serial", |b| b.iter(|| grid.run_serial()));
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| grid.run(SweepOptions { threads, chunk: 0 }));
            },
        );
    }
    group.bench_function("threads_auto", |b| {
        b.iter(|| grid.run(SweepOptions::default()));
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_engine);
criterion_main!(benches);
