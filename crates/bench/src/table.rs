//! Plain-text/JSON result tables for the experiment reports.

use std::fmt::Write as _;

/// One result table of an experiment.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (each row must have `columns.len()` cells).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (e.g. pass/fail verdicts).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with the given caption and headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width {} does not match {} columns",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        let _ = writeln!(out, "  {}", header.join("  "));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "  {}", rule.join("  "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            let _ = writeln!(out, "  {}", cells.join("  "));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  * {note}");
        }
        out
    }
}

/// A complete experiment: one paper artifact reproduced.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Experiment {
    /// Short id, e.g. `"E4"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Which part of the paper this reproduces.
    pub paper_ref: String,
    /// The result tables.
    pub tables: Vec<Table>,
    /// Overall verdicts ("claim X: REPRODUCED …").
    pub verdicts: Vec<String>,
}

impl Experiment {
    /// Creates an empty experiment record.
    pub fn new(id: &str, title: &str, paper_ref: &str) -> Self {
        Experiment {
            id: id.to_owned(),
            title: title.to_owned(),
            paper_ref: paper_ref.to_owned(),
            tables: Vec::new(),
            verdicts: Vec::new(),
        }
    }

    /// Adds a table.
    pub fn push_table(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Records a verdict for a paper claim. `ok` renders as REPRODUCED /
    /// DEVIATION.
    pub fn verdict(&mut self, claim: &str, ok: bool) {
        self.verdicts.push(format!(
            "[{}] {claim}",
            if ok { "REPRODUCED" } else { "DEVIATION" }
        ));
    }

    /// Whether every verdict is a reproduction.
    pub fn all_reproduced(&self) -> bool {
        self.verdicts.iter().all(|v| v.starts_with("[REPRODUCED]"))
    }

    /// Renders the whole experiment as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", "=".repeat(72));
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        let _ = writeln!(out, "reproduces: {}", self.paper_ref);
        let _ = writeln!(out, "{}", "=".repeat(72));
        for t in &self.tables {
            let _ = writeln!(out, "{}", t.render());
        }
        for v in &self.verdicts {
            let _ = writeln!(out, "{v}");
        }
        out
    }
}

/// Formats a float with 4 significant decimals, trimming noise.
pub fn fmt(x: f64) -> String {
    if x.is_infinite() {
        return "∞".to_owned();
    }
    format!("{x:.4}")
}

/// Formats an optional value, rendering `None` as `—`.
pub fn fmt_opt(x: Option<f64>) -> String {
    x.map_or_else(|| "—".to_owned(), fmt)
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bcd"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "2000".into()]);
        t.note("note line");
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("* note line"));
        // Alignment: headers and rows padded to the same width.
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn experiment_verdicts() {
        let mut e = Experiment::new("E0", "test", "§0");
        e.verdict("claim", true);
        assert!(e.all_reproduced());
        e.verdict("other claim", false);
        assert!(!e.all_reproduced());
        let r = e.render();
        assert!(r.contains("[REPRODUCED] claim"));
        assert!(r.contains("[DEVIATION] other claim"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(0.25), "0.2500");
        assert_eq!(fmt(f64::INFINITY), "∞");
        assert_eq!(fmt_opt(None), "—");
        assert_eq!(pct(0.061), "6.10%");
    }
}
