//! The experiment report binary: regenerates every table and figure of the
//! paper and prints paper-vs-measured results.
//!
//! ```text
//! report [--only <id>[,<id>…]] [--fast] [--json]
//! ```

use mdr_bench::experiments::{run_all, run_one, ALL_IDS};
use mdr_bench::{Experiment, RunCfg};

fn main() {
    let mut only: Option<Vec<String>> = None;
    let mut fast = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--only" => {
                let ids = args.next().unwrap_or_else(|| usage("--only needs a value"));
                only = Some(
                    ids.split(',')
                        .map(|s| s.trim().to_ascii_lowercase())
                        .collect(),
                );
            }
            "--fast" => fast = true,
            "--json" => json = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    let cfg = RunCfg { fast };

    let experiments: Vec<Experiment> = match only {
        None => run_all(cfg),
        Some(ids) => ids
            .iter()
            .map(|id| {
                run_one(id, cfg).unwrap_or_else(|| {
                    usage(&format!(
                        "unknown experiment {id:?}; valid: {}",
                        ALL_IDS.join(", ")
                    ))
                })
            })
            .collect(),
    };

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&experiments).expect("experiments serialize")
        );
    } else {
        for e in &experiments {
            println!("{}", e.render());
        }
        let total: usize = experiments.iter().map(|e| e.verdicts.len()).sum();
        let reproduced: usize = experiments
            .iter()
            .flat_map(|e| &e.verdicts)
            .filter(|v| v.starts_with("[REPRODUCED]"))
            .count();
        println!("{}", "=".repeat(72));
        println!("claims reproduced: {reproduced}/{total}");
        if reproduced < total {
            std::process::exit(1);
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: report [--only e1,e4,...] [--fast] [--json]");
    eprintln!("experiments: {}", ALL_IDS.join(", "));
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
