//! Thin bridge from the experiment harness to the sweep engine.
//!
//! The heavy lifting — grid enumeration, deterministic fan-out, the
//! sequential fold — lives in [`mdr_sim::sweep`]; this module only owns
//! the harness-side conveniences: the named grid presets the CI
//! determinism job and the `mdr sweep` CLI share, a [`Table`] renderer
//! for [`SweepSummary`], and the serial-vs-parallel verdict helper the
//! experiments use as their acceptance check.

use crate::table::{fmt, fmt_opt, Table};
use crate::RunCfg;
use mdr_core::{CostModel, PolicySpec};
use mdr_sim::sweep::{SweepGrid, SweepOptions, SweepReport, SweepSummary};
use mdr_sim::{ArqConfig, FaultPlan, TopologyConfig};

/// The E17 fault mix at the given disconnection rate: outages of mean
/// length 2, 30% crash probability (50% volatile), 20% SC outages, and
/// 5% ghost duplication/reordering whenever the link is faulty at all.
/// A rate of zero zeroes every knob — the installed-but-inert plan the
/// experiment compares against the no-plan baseline.
pub fn e17_fault_plan(rate: f64) -> FaultPlan {
    let ghosts = if rate > 0.0 { 0.05 } else { 0.0 };
    let Ok(plan) = FaultPlan::new(rate, 2.0, 0)
        .and_then(|p| p.with_crashes(0.3, 0.5))
        .and_then(|p| p.with_sc_outages(0.2))
        .and_then(|p| p.with_duplication(ghosts, ghosts))
    else {
        unreachable!("the preset fault rates are valid by construction")
    };
    plan
}

/// The E17 grid: five policies × the fault axis
/// `[no plan, inert plan, rate 0.02, rate 0.1]` at θ = 0.4, ω = 0.4,
/// latency 0.05. One model, one θ, one replication — so cell index is
/// `policy_index * 4 + fault_index`.
pub fn e17_grid(cfg: RunCfg) -> SweepGrid {
    let Ok(grid) = SweepGrid::new(0xE17)
        .policies(vec![
            PolicySpec::St1,
            PolicySpec::St2,
            PolicySpec::SlidingWindow { k: 1 },
            PolicySpec::SlidingWindow { k: 5 },
            PolicySpec::T2 { m: 5 },
        ])
        .and_then(|g| g.thetas(vec![0.4]))
        .and_then(|g| g.models(vec![CostModel::message(0.4)]))
        .and_then(|g| {
            g.fault_plans(vec![
                None,
                Some(e17_fault_plan(0.0)),
                Some(e17_fault_plan(0.02)),
                Some(e17_fault_plan(0.1)),
            ])
        })
        .and_then(|g| g.latency(0.05))
        .and_then(|g| g.requests(cfg.pick(4_000, 20_000)))
    else {
        unreachable!("the E17 preset is valid by construction")
    };
    grid
}

/// One E18 transport point: loss rate × retry budget × backoff factor at
/// base timeout 0.2 (4× the grid latency). The grid re-seeds each run's
/// transport RNG, so the embedded seed is irrelevant.
pub fn e18_arq(loss: f64, budget: u32, backoff: f64) -> ArqConfig {
    let Ok(arq) = ArqConfig::new(loss, 0.2, 0)
        .and_then(|a| a.with_backoff(backoff, 0.25))
        .and_then(|a| a.with_retry_budget(budget))
    else {
        unreachable!("the preset ARQ points are valid by construction")
    };
    arq
}

/// The E18 grid: three policies × the ARQ axis `[perfect link,
/// loss 0.05 / budget 8 / backoff 2, loss 0.2 / budget 8 / backoff 2,
/// loss 0.2 / budget 3 / backoff 1.5, loss 0.4 / budget 4 / backoff 2]`
/// at θ = 0.4, ω = 0.5, latency 0.05. One model, one θ, one replication —
/// so cell index is `policy_index * 5 + arq_index`.
pub fn e18_grid(cfg: RunCfg) -> SweepGrid {
    let Ok(grid) = SweepGrid::new(0xE18)
        .policies(vec![
            PolicySpec::St2,
            PolicySpec::SlidingWindow { k: 1 },
            PolicySpec::SlidingWindow { k: 5 },
        ])
        .and_then(|g| g.thetas(vec![0.4]))
        .and_then(|g| g.models(vec![CostModel::message(0.5)]))
        .and_then(|g| {
            g.arq_configs(vec![
                None,
                Some(e18_arq(0.05, 8, 2.0)),
                Some(e18_arq(0.2, 8, 2.0)),
                Some(e18_arq(0.2, 3, 1.5)),
                Some(e18_arq(0.4, 4, 2.0)),
            ])
        })
        .and_then(|g| g.latency(0.05))
        .and_then(|g| g.requests(cfg.pick(2_000, 10_000)))
    else {
        unreachable!("the E18 preset is valid by construction")
    };
    grid
}

/// One E19 topology point: 5 cells, the given migration rate and
/// backbone loss, handoff deadline 1.0 (20× the grid latency), and
/// per-cell or broadcast invalidation. The grid re-seeds each run's
/// topology RNG, so the embedded seed is irrelevant.
pub fn e19_topology(rate: f64, loss: f64, broadcast: bool) -> TopologyConfig {
    let Ok(topology) = TopologyConfig::new(5, rate, 1.0, 0).and_then(|t| t.with_loss(loss)) else {
        unreachable!("the preset topology points are valid by construction")
    };
    if broadcast {
        topology.with_broadcast_invalidation()
    } else {
        topology
    }
}

/// The E19 grid: three policies × the topology axis `[single cell,
/// inert 5-cell plan, per-cell rate 0.2, per-cell rate 0.8,
/// per-cell rate 0.8 / loss 0.2, broadcast rate 0.8,
/// broadcast rate 0.8 / loss 0.2]` at θ = 0.4, ω = 0.5, latency 0.05.
/// One model, one θ, one replication — so cell index is
/// `policy_index * 7 + topology_index`.
pub fn e19_grid(cfg: RunCfg) -> SweepGrid {
    let Ok(grid) = SweepGrid::new(0xE19)
        .policies(vec![
            PolicySpec::St2,
            PolicySpec::SlidingWindow { k: 1 },
            PolicySpec::SlidingWindow { k: 5 },
        ])
        .and_then(|g| g.thetas(vec![0.4]))
        .and_then(|g| g.models(vec![CostModel::message(0.5)]))
        .and_then(|g| {
            g.topology_configs(vec![
                None,
                Some(e19_topology(0.0, 0.0, false)),
                Some(e19_topology(0.2, 0.0, false)),
                Some(e19_topology(0.8, 0.0, false)),
                Some(e19_topology(0.8, 0.2, false)),
                Some(e19_topology(0.8, 0.0, true)),
                Some(e19_topology(0.8, 0.2, true)),
            ])
        })
        .and_then(|g| g.latency(0.05))
        .and_then(|g| g.requests(cfg.pick(2_000, 10_000)))
    else {
        unreachable!("the E19 preset is valid by construction")
    };
    grid
}

/// The E6 grid: the window-size policies around the ω = 0.8 threshold
/// (k₀ = 7) across a θ sweep, replicated for confidence intervals.
pub fn e6_grid(cfg: RunCfg) -> SweepGrid {
    let Ok(grid) = SweepGrid::new(0xE6)
        .policies(vec![
            PolicySpec::SlidingWindow { k: 1 },
            PolicySpec::SlidingWindow { k: 5 },
            PolicySpec::SlidingWindow { k: 7 },
            PolicySpec::SlidingWindow { k: 9 },
        ])
        .and_then(|g| g.thetas(vec![0.1, 0.3, 0.5, 0.7, 0.9]))
        .and_then(|g| g.omegas(vec![0.8]))
        .and_then(|g| g.replications(cfg.pick(2, 4)))
        .and_then(|g| g.requests(cfg.pick(2_000, 10_000)))
    else {
        unreachable!("the E6 preset is valid by construction")
    };
    grid
}

/// Resolves a preset grid by name (`"e6"` / `"e17"` / `"e18"` /
/// `"e19"`), as used by the `mdr sweep --preset` flag and the CI
/// determinism job.
pub fn preset(name: &str, cfg: RunCfg) -> Option<SweepGrid> {
    match name {
        "e6" => Some(e6_grid(cfg)),
        "e17" => Some(e17_grid(cfg)),
        "e18" => Some(e18_grid(cfg)),
        "e19" => Some(e19_grid(cfg)),
        _ => None,
    }
}

/// Renders a [`SweepSummary`] as one table row per
/// (policy, θ, fault, arq, model) group.
pub fn summary_table(title: &str, summary: &SweepSummary) -> Table {
    let mut table = Table::new(
        title,
        &[
            "policy",
            "θ",
            "model",
            "fault",
            "arq",
            "cost/req",
            "stderr",
            "vs Eq. 2–8",
            "disconnects",
            "reconciliations",
            "retx",
            "acks",
            "shed",
        ],
    );
    for entry in &summary.entries {
        let ratio = if entry.competitive_ratio.n == 0 {
            None
        } else {
            Some(entry.competitive_ratio.mean)
        };
        table.row(vec![
            entry.policy.to_string(),
            fmt(entry.theta),
            entry.model.to_string(),
            entry.fault_index.to_string(),
            entry.arq_index.to_string(),
            fmt(entry.cost_per_request.mean),
            fmt(entry.cost_per_request.stderr()),
            fmt_opt(ratio),
            entry.disconnects.to_string(),
            entry.reconciliations.to_string(),
            entry.retransmissions.to_string(),
            entry.arq_acks.to_string(),
            entry.shed_requests.to_string(),
        ]);
    }
    table
}

/// The acceptance check of the sweep engine, as the experiments assert
/// it: the parallel path at 4 threads must reproduce the serial report
/// bit-for-bit — same cells, same summary, same digest. Returns the
/// serial report alongside the verdict so callers don't sweep twice.
pub fn serial_parallel_verdict(grid: &SweepGrid) -> (SweepReport, bool) {
    let serial = grid.run_serial();
    let parallel = grid.run(SweepOptions {
        threads: 4,
        chunk: 0,
    });
    let identical = serial == parallel
        && serial.ledger_digest() == parallel.ledger_digest()
        && serial.ledger_lines() == parallel.ledger_lines();
    (serial, identical)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_by_name() {
        let cfg = RunCfg { fast: true };
        assert_eq!(preset("e6", cfg), Some(e6_grid(cfg)));
        assert_eq!(preset("e17", cfg), Some(e17_grid(cfg)));
        assert_eq!(preset("e18", cfg), Some(e18_grid(cfg)));
        assert_eq!(preset("e19", cfg), Some(e19_grid(cfg)));
        assert_eq!(preset("e99", cfg), None);
        assert_eq!(e17_grid(cfg).cells(), 5 * 4);
        assert_eq!(e18_grid(cfg).cells(), 3 * 5);
        assert_eq!(e19_grid(cfg).cells(), 3 * 7);
        assert_eq!(e6_grid(cfg).cells(), 4 * 5 * 2);
    }

    #[test]
    fn summary_renders_one_row_per_group() {
        let cfg = RunCfg { fast: true };
        let Ok(grid) = e6_grid(cfg).requests(300) else {
            unreachable!("300 requests is a valid override")
        };
        let report = grid.run_serial();
        let table = summary_table("demo", &report.summary);
        assert_eq!(table.rows.len(), report.summary.entries.len());
        // Fault-free window policies track the analytic expectation.
        assert!(table.render().contains("SW7"));
    }

    #[test]
    fn e6_verdict_helper_agrees_with_itself() {
        let cfg = RunCfg { fast: true };
        let Ok(grid) = e6_grid(cfg).requests(200) else {
            unreachable!("200 requests is a valid override")
        };
        let (report, identical) = serial_parallel_verdict(&grid);
        assert!(identical);
        assert_eq!(report.cells.len(), grid.cells());
    }
}
