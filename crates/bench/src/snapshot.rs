//! Typed benchmark snapshots — the `BENCH_*.json` schema.
//!
//! A [`BenchSnapshot`] records one measured sweep of a named preset:
//! what was run (preset, mode, per-run request cap, run count), what it
//! deterministically produced (events processed, ledger digest), and
//! how fast it went (wall nanoseconds, events/sec). Snapshots are
//! written by `mdr bench --write-baseline`, committed as
//! `BENCH_e17.json` / `BENCH_e18.json`, and re-read by the CI perf gate,
//! which fails the build when a run regresses beyond its tolerance —
//! or, harder, when the ledger digest drifts at all.
//!
//! The schema is serde-typed end to end (the previous ad-hoc
//! `CRITERION_JSON` env-var plumbing wrote untyped strings nobody could
//! diff or gate): [`BenchSnapshot::to_json`] / [`BenchSnapshot::parse`]
//! round-trip the exact struct, [`BenchSnapshot::compare`] renders a
//! [`RegressionVerdict`], and [`BenchSnapshot::merge`] pools snapshots
//! into a fleet-wide throughput figure the same way
//! [`PerfStats::merge`](mdr_sim::perf::PerfStats::merge) pools run
//! measurements.

use mdr_sim::perf::PerfStats;

/// One measured benchmark run of a named sweep preset.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BenchSnapshot {
    /// Preset name (`e6`, `e17`, `e18`, `e19`).
    pub preset: String,
    /// Run size mode: `fast` (CI-sized) or `full` (publication-sized).
    pub mode: String,
    /// Per-run request cap the grid was built with.
    pub requests: usize,
    /// Simulation runs in the grid (cells ÷ models × replications).
    pub runs: usize,
    /// Events the simulation loops processed, summed over every run —
    /// deterministic, and the denominator-independent half of the
    /// measurement: it must match between baseline and candidate or the
    /// comparison is meaningless.
    pub events: u64,
    /// Wall-clock nanoseconds the sweep took (measurement metadata).
    pub wall_nanos: u64,
    /// Throughput: `events / wall`, in events per second.
    pub events_per_sec: f64,
    /// FNV-1a digest of the full cost ledger, rendered as `0x`-hex —
    /// the determinism half of the gate: any drift is a hard failure
    /// regardless of speed.
    pub ledger_digest: String,
}

impl BenchSnapshot {
    /// Builds a snapshot from a measured sweep.
    pub fn new(
        preset: &str,
        fast: bool,
        requests: usize,
        runs: usize,
        stats: PerfStats,
        ledger_digest: u64,
    ) -> Self {
        BenchSnapshot {
            preset: preset.to_string(),
            mode: if fast { "fast" } else { "full" }.to_string(),
            requests,
            runs,
            events: stats.events,
            wall_nanos: stats.wall_nanos,
            events_per_sec: stats.events_per_sec(),
            ledger_digest: format!("{ledger_digest:#018x}"),
        }
    }

    /// The measurement as a [`PerfStats`] (events + wall time).
    pub fn stats(&self) -> PerfStats {
        PerfStats {
            events: self.events,
            wall_nanos: self.wall_nanos,
        }
    }

    /// Renders the snapshot as pretty-printed JSON (the committed
    /// `BENCH_*.json` format), trailing newline included.
    pub fn to_json(&self) -> String {
        let Ok(mut json) = serde_json::to_string_pretty(self) else {
            unreachable!("a snapshot always serializes")
        };
        json.push('\n');
        json
    }

    /// Parses a snapshot from its JSON rendering.
    pub fn parse(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("malformed bench snapshot: {e}"))
    }

    /// Whether two snapshots measured the same workload — same preset,
    /// mode, request cap, and run count. Only such pairs are comparable.
    pub fn same_workload(&self, other: &BenchSnapshot) -> bool {
        self.preset == other.preset
            && self.mode == other.mode
            && self.requests == other.requests
            && self.runs == other.runs
    }

    /// Pools two snapshots of *different* presets into a combined
    /// figure: summed events over summed wall time, digest and identity
    /// fields joined textually. Useful for a fleet-wide events/sec
    /// number across `BENCH_e17.json` + `BENCH_e18.json`.
    pub fn merge(&self, other: &BenchSnapshot) -> BenchSnapshot {
        let stats = self.stats().merge(&other.stats());
        BenchSnapshot {
            preset: format!("{}+{}", self.preset, other.preset),
            mode: if self.mode == other.mode {
                self.mode.clone()
            } else {
                format!("{}+{}", self.mode, other.mode)
            },
            requests: self.requests + other.requests,
            runs: self.runs + other.runs,
            events: stats.events,
            wall_nanos: stats.wall_nanos,
            events_per_sec: stats.events_per_sec(),
            ledger_digest: format!("{},{}", self.ledger_digest, other.ledger_digest),
        }
    }

    /// Gates `self` (the candidate measurement) against `baseline`:
    ///
    /// * incomparable workloads or a ledger-digest drift fail hard —
    ///   a digest drift means the *simulation* changed, which no amount
    ///   of speed excuses;
    /// * a throughput drop of more than `gate_pct` percent below the
    ///   baseline is a regression;
    /// * anything else passes, with the speedup ratio reported.
    pub fn compare(&self, baseline: &BenchSnapshot, gate_pct: f64) -> RegressionVerdict {
        if !self.same_workload(baseline) {
            return RegressionVerdict::Incomparable {
                reason: format!(
                    "workload mismatch: candidate {}/{} ({} requests x {} runs) vs \
                     baseline {}/{} ({} requests x {} runs)",
                    self.preset,
                    self.mode,
                    self.requests,
                    self.runs,
                    baseline.preset,
                    baseline.mode,
                    baseline.requests,
                    baseline.runs,
                ),
            };
        }
        if self.ledger_digest != baseline.ledger_digest {
            return RegressionVerdict::DigestDrift {
                baseline: baseline.ledger_digest.clone(),
                candidate: self.ledger_digest.clone(),
            };
        }
        if self.events != baseline.events {
            return RegressionVerdict::Incomparable {
                reason: format!(
                    "event-count mismatch: candidate processed {} events, baseline {}",
                    self.events, baseline.events
                ),
            };
        }
        let speedup = if baseline.events_per_sec > 0.0 {
            self.events_per_sec / baseline.events_per_sec
        } else {
            f64::INFINITY
        };
        let floor = 1.0 - gate_pct / 100.0;
        if speedup < floor {
            RegressionVerdict::Regression { speedup, gate_pct }
        } else {
            RegressionVerdict::Pass { speedup }
        }
    }
}

/// The outcome of gating a candidate snapshot against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum RegressionVerdict {
    /// Throughput is at or above the gate floor; `speedup` is the
    /// candidate/baseline events-per-second ratio (1.0 = parity).
    Pass {
        /// Candidate ÷ baseline throughput.
        speedup: f64,
    },
    /// Throughput fell more than `gate_pct` percent below the baseline.
    Regression {
        /// Candidate ÷ baseline throughput.
        speedup: f64,
        /// The tolerance that was exceeded.
        gate_pct: f64,
    },
    /// The ledger digest changed: the simulation itself drifted.
    DigestDrift {
        /// The committed baseline digest.
        baseline: String,
        /// The digest the candidate produced.
        candidate: String,
    },
    /// The snapshots did not measure the same workload.
    Incomparable {
        /// Human-readable mismatch description.
        reason: String,
    },
}

impl RegressionVerdict {
    /// Whether the gate passes (CI exit status).
    pub fn passed(&self) -> bool {
        matches!(self, RegressionVerdict::Pass { .. })
    }

    /// One-line human rendering.
    pub fn render(&self) -> String {
        match self {
            RegressionVerdict::Pass { speedup } => {
                format!("PASS: {speedup:.2}x baseline throughput")
            }
            RegressionVerdict::Regression { speedup, gate_pct } => {
                format!("REGRESSION: {speedup:.2}x baseline throughput, below the {gate_pct}% gate")
            }
            RegressionVerdict::DigestDrift {
                baseline,
                candidate,
            } => format!("DIGEST DRIFT: ledger {candidate} vs committed baseline {baseline}"),
            RegressionVerdict::Incomparable { reason } => format!("INCOMPARABLE: {reason}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(preset: &str, events: u64, wall_nanos: u64, digest: u64) -> BenchSnapshot {
        BenchSnapshot::new(
            preset,
            true,
            4_000,
            40,
            PerfStats { events, wall_nanos },
            digest,
        )
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let s = snap("e17", 1_234_567, 89_000_000, 0x686f_e07d_53ce_b53e);
        let parsed = BenchSnapshot::parse(&s.to_json()).expect("roundtrip parses");
        assert_eq!(parsed, s);
        assert!(s.to_json().contains("0x686fe07d53ceb53e"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BenchSnapshot::parse("{}").is_err());
        assert!(BenchSnapshot::parse("not json").is_err());
    }

    #[test]
    fn equal_runs_pass_the_gate() {
        let base = snap("e17", 1_000, 1_000_000, 0xabc);
        let same = snap("e17", 1_000, 1_000_000, 0xabc);
        let verdict = same.compare(&base, 10.0);
        assert!(verdict.passed(), "{}", verdict.render());
    }

    #[test]
    fn slowdown_beyond_gate_is_a_regression() {
        let base = snap("e17", 1_000, 1_000_000, 0xabc);
        let slow = snap("e17", 1_000, 2_000_000, 0xabc); // 0.5x
        let verdict = slow.compare(&base, 10.0);
        assert_eq!(
            verdict,
            RegressionVerdict::Regression {
                speedup: 0.5,
                gate_pct: 10.0
            }
        );
        // A generous gate admits the same slowdown.
        assert!(slow.compare(&base, 60.0).passed());
    }

    #[test]
    fn digest_drift_fails_regardless_of_speed() {
        let base = snap("e17", 1_000, 1_000_000, 0xabc);
        let fast_but_wrong = snap("e17", 1_000, 1, 0xdef);
        assert!(matches!(
            fast_but_wrong.compare(&base, 10.0),
            RegressionVerdict::DigestDrift { .. }
        ));
    }

    #[test]
    fn different_workloads_are_incomparable() {
        let base = snap("e17", 1_000, 1_000_000, 0xabc);
        let other = snap("e18", 1_000, 1_000_000, 0xabc);
        assert!(matches!(
            other.compare(&base, 10.0),
            RegressionVerdict::Incomparable { .. }
        ));
        let fewer_events = snap("e17", 999, 1_000_000, 0xabc);
        assert!(matches!(
            fewer_events.compare(&base, 10.0),
            RegressionVerdict::Incomparable { .. }
        ));
    }

    #[test]
    fn merge_pools_events_over_wall_time() {
        let a = snap("e17", 1_000, 1_000_000, 0xa);
        let b = snap("e18", 3_000, 1_000_000, 0xb);
        let merged = a.merge(&b);
        assert_eq!(merged.preset, "e17+e18");
        assert_eq!(merged.events, 4_000);
        assert_eq!(merged.wall_nanos, 2_000_000);
        assert!((merged.events_per_sec - 2e6).abs() < 1e-3);
    }
}
