//! E4 — **Figure 1**: superiority coverage in the message model (§6,
//! Theorem 6, Theorem 9).
//!
//! Paints the (θ, ω) unit square with the best-expected-cost algorithm
//! among ST1 / ST2 / SW1, prints the two boundary curves
//! `θ = (1+ω)/(1+2ω)` and `θ = 2ω/(1+2ω)`, verifies the analytic regions
//! against direct cost comparison on a dense grid and against the
//! simulator on spot points, and checks Theorem 9 (no SWk with k > 1 is
//! ever strictly best).

use crate::table::{fmt, Experiment, Table};
use crate::RunCfg;
use mdr_analysis::dominance::{
    message_winner, message_winner_by_cost, st1_sw1_boundary, st2_sw1_boundary, Winner,
};
use mdr_analysis::{expected_cost, message};
use mdr_core::{CostModel, PolicySpec};
use mdr_sim::{estimate_expected_cost, EstimatorConfig};

fn glyph(w: Winner) -> char {
    match w {
        Winner::St1 => '1',
        Winner::St2 => '2',
        Winner::Sw1 => 'S',
    }
}

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E4",
        "Figure 1 — dominance regions in the message model",
        "§6.1–§6.3, Theorems 5, 6, 8, 9; Figure 1",
    );

    // --- The map itself (θ rows descending, ω columns ascending) ---
    let mut map = Table::new(
        "Figure 1 map: best algorithm per (θ, ω); 1 = ST1, 2 = ST2, S = SW1",
        &["θ \\ ω", "map (ω = 0.05 … 0.95)"],
    );
    let cols = 19usize;
    for row in (0..19).rev() {
        let theta = (f64::from(row) + 0.5) / 19.0;
        let line: String = (0..cols)
            .map(|c| {
                let omega = (c as f64 + 0.5) / 19.0;
                glyph(message_winner(theta, omega))
            })
            .collect();
        map.row(vec![format!("{theta:.3}"), line]);
    }
    map.note("paper's Figure 1: ST1 above θ=(1+ω)/(1+2ω), ST2 below θ=2ω/(1+2ω), SW1 between");
    exp.push_table(map);

    // --- Boundary curves ---
    let mut bounds = Table::new(
        "region boundaries (Theorem 6)",
        &[
            "ω",
            "θ = (1+ω)/(1+2ω) [ST1/SW1]",
            "θ = 2ω/(1+2ω) [ST2/SW1]",
            "SW1 band width",
        ],
    );
    for i in 0..=10 {
        let omega = f64::from(i) / 10.0;
        let hi = st1_sw1_boundary(omega);
        let lo = st2_sw1_boundary(omega);
        bounds.row(vec![fmt(omega), fmt(hi), fmt(lo), fmt(hi - lo)]);
    }
    exp.push_table(bounds);

    // --- Dense analytic agreement + Theorem 9 ---
    let mut agree = true;
    let mut theorem9 = true;
    let n = cfg.pick(40, 120);
    for i in 0..n {
        for j in 0..n {
            let theta = (f64::from(i) + 0.5) / f64::from(n);
            let omega = (f64::from(j) + 0.5) / f64::from(n);
            if message_winner(theta, omega) != message_winner_by_cost(theta, omega) {
                agree = false;
            }
        }
    }
    for &k in &[3usize, 9, 21] {
        for i in 1..20 {
            let theta = f64::from(i) / 20.0;
            for &omega in &[0.15, 0.45, 0.85] {
                let swk = message::exp_swk(k, theta, omega);
                if swk < message::optimal_exp(theta, omega) - 1e-10 {
                    theorem9 = false;
                }
            }
        }
    }

    // --- Simulator spot checks: one point per region ---
    let estimator = EstimatorConfig {
        requests_per_run: cfg.pick(5_000, 20_000),
        replications: cfg.pick(4, 8),
        seed: 0xE4,
    };
    let spots = [(0.9, 0.4), (0.6, 0.4), (0.2, 0.4), (0.85, 0.7), (0.3, 0.1)];
    let mut spot_table = Table::new(
        "simulator spot checks: measured winner per region point",
        &[
            "θ",
            "ω",
            "analytic winner",
            "sim EXP ST1",
            "sim EXP ST2",
            "sim EXP SW1",
            "sim winner agrees",
        ],
    );
    let mut spots_ok = true;
    for &(theta, omega) in &spots {
        let model = CostModel::message(omega);
        let costs: Vec<(Winner, f64)> = [
            (Winner::St1, PolicySpec::St1),
            (Winner::St2, PolicySpec::St2),
            (Winner::Sw1, PolicySpec::SlidingWindow { k: 1 }),
        ]
        .iter()
        .map(|&(w, p)| (w, estimate_expected_cost(p, model, theta, estimator).mean))
        .collect();
        let Some(sim_winner) = costs
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(w, _)| w)
        else {
            unreachable!("three candidates");
        };
        let analytic = message_winner(theta, omega);
        // Near boundaries the sampled winner may flip; accept either side
        // when the analytic gap is within simulation noise.
        let analytic_cost = expected_cost(analytic.spec(), model, theta);
        let Some(&(_, sim_cost_of_analytic)) = costs.iter().find(|(w, _)| *w == analytic) else {
            unreachable!("the analytic winner is among the candidates");
        };
        let agrees = sim_winner == analytic || (sim_cost_of_analytic - analytic_cost).abs() < 0.02;
        spots_ok &= agrees;
        spot_table.row(vec![
            fmt(theta),
            fmt(omega),
            format!("{analytic:?}"),
            fmt(costs[0].1),
            fmt(costs[1].1),
            fmt(costs[2].1),
            agrees.to_string(),
        ]);
    }
    exp.push_table(spot_table);

    exp.verdict(
        &format!("Theorem 6 regions match direct cost comparison on a {n}×{n} grid"),
        agree,
    );
    exp.verdict(
        "Theorem 9: no SWk (k > 1) beats the ST1/ST2/SW1 envelope",
        theorem9,
    );
    exp.verdict(
        "Figure 1 regions confirmed by the distributed simulator at spot points",
        spots_ok,
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
        // The map has 19 θ rows.
        assert_eq!(exp.tables[0].rows.len(), 19);
    }
}
