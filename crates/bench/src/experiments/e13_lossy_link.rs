//! E13 — **Extension**: unreliable wireless links.
//!
//! The paper assumes a reliable link. Real packet-radio channels lose
//! frames; the standard fix is link-layer ARQ (retransmit until
//! acknowledged), and every retransmission is billed at the same tariff.
//! This experiment shows the analysis survives the generalization: with
//! i.i.d. loss probability `p`, every policy's bill inflates by the *same*
//! multiplicative factor `1/(1 − p)` (each logical message needs a
//! geometric number of attempts), so expected-cost comparisons, dominance
//! regions and window-size advice are all unchanged — only the absolute
//! tariff scales.

use crate::table::{fmt, Experiment, Table};
use crate::RunCfg;
use mdr_core::{CostModel, PolicySpec};
use mdr_sim::{PoissonWorkload, RunLimit, SimBuilder, Simulation};

fn lossy_cost(spec: PolicySpec, theta: f64, loss: f64, n: usize, model: CostModel) -> (f64, u64) {
    let Ok(builder) = SimBuilder::new(spec) else {
        unreachable!("experiment policies are valid by construction")
    };
    let builder = if loss > 0.0 {
        let Ok(lossy) = builder.loss(loss, 0.05, 0xE13) else {
            unreachable!("experiment loss grid is valid by construction")
        };
        lossy
    } else {
        builder
    };
    let mut sim = Simulation::new(builder.build());
    let mut workload = PoissonWorkload::from_theta(1.0, theta, 0xE13);
    let report = sim.run(&mut workload, RunLimit::Requests(n));
    (report.cost_per_request(model), report.retransmissions)
}

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E13",
        "unreliable links — ARQ retransmission ablation (extension)",
        "extends the §3 link model with i.i.d. frame loss + link-layer ARQ",
    );
    let n = cfg.pick(10_000, 50_000);
    let theta = 0.35;
    let model = CostModel::message(0.4);
    let policies = [
        PolicySpec::St1,
        PolicySpec::St2,
        PolicySpec::SlidingWindow { k: 1 },
        PolicySpec::SlidingWindow { k: 9 },
    ];
    let losses = [0.0, 0.2, 0.4];

    let mut table = Table::new(
        format!("cost/request at θ = {theta}, message model ω = 0.4, under frame loss p"),
        &[
            "policy",
            "p = 0",
            "p = 0.2",
            "inflation",
            "p = 0.4",
            "inflation",
            "1/(1−p) targets",
        ],
    );
    let mut uniform = true;
    for &spec in &policies {
        let costs: Vec<f64> = losses
            .iter()
            .map(|&p| lossy_cost(spec, theta, p, n, model).0)
            .collect();
        let infl2 = costs[1] / costs[0];
        let infl4 = costs[2] / costs[0];
        // Each logical message takes Geometric(1−p) attempts ⇒ ×1/(1−p).
        uniform &= (infl2 - 1.0 / 0.8).abs() < 0.05 && (infl4 - 1.0 / 0.6).abs() < 0.08;
        table.row(vec![
            spec.to_string(),
            fmt(costs[0]),
            fmt(costs[1]),
            fmt(infl2),
            fmt(costs[2]),
            fmt(infl4),
            "1.25 / 1.667".to_owned(),
        ]);
    }
    table.note("ARQ bills every attempt; acknowledgements are modeled link-layer-free");
    exp.push_table(table);

    // Cross-policy ranking at each loss level.
    let mut rank_table = Table::new(
        "policy ranking is invariant under loss (cheapest first)",
        &["p", "ranking"],
    );
    let mut cross_ranking_stable = true;
    let mut base: Option<Vec<String>> = None;
    for &p in &losses {
        let mut costs: Vec<(String, f64)> = policies
            .iter()
            .map(|&s| (s.to_string(), lossy_cost(s, theta, p, n, model).0))
            .collect();
        costs.sort_by(|a, b| a.1.total_cmp(&b.1));
        let names: Vec<String> = costs.into_iter().map(|(n, _)| n).collect();
        match &base {
            None => base = Some(names.clone()),
            Some(b) => cross_ranking_stable &= *b == names,
        }
        rank_table.row(vec![fmt(p), names.join(" < ")]);
    }
    exp.push_table(rank_table);

    exp.verdict(
        "loss inflates every policy's bill by the same 1/(1−p) factor (within noise)",
        uniform,
    );
    exp.verdict(
        "the cross-policy ranking — hence all the paper's advice — is invariant under loss",
        cross_ranking_stable,
    );
    let (_, retx) = lossy_cost(PolicySpec::SlidingWindow { k: 9 }, theta, 0.4, n, model);
    exp.verdict(
        "the ARQ layer actually retransmits (protocol actions verified unchanged by the oracle)",
        retx > 0,
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }
}
