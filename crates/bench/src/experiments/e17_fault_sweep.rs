//! E17 — **Extension**: disconnection faults and crash recovery.
//!
//! §1 motivates the whole paper with the weak-connectivity reality of
//! mobile computers; the analysis itself assumes the MC stays reachable.
//! This experiment drops that assumption: the fault layer injects
//! disconnection windows, MC crashes (volatile and stable memory), SC
//! outages and ghost deliveries (duplication + reordering, which the
//! transport does not hide — the protocol's own delivery watermark
//! discards them), and the reconnection handshake re-validates the
//! replica and hands window ownership back. Timeout-driven loss recovery
//! is E18's subject: here the link delivers or it is down.
//!
//! The whole sweep now runs on the [`crate::sweep`] grid (the `e17`
//! preset), which upgrades the old claims: (a) determinism is asserted
//! as *serial vs 4-thread byte-identity* of the full sweep report, not
//! just a run-twice replay; (b) the recovery traffic is billed and
//! visible as an aborted/reconciliation share of the total; (c) an
//! installed-but-inert fault plan produces a [`mdr_sim::SimReport`]
//! *equal* to the no-plan baseline, cell for cell, because the grid
//! pairs workload seeds across the fault axis.

use crate::sweep::{e17_grid, serial_parallel_verdict, summary_table};
use crate::table::{fmt_opt, pct, Experiment, Table};
use crate::RunCfg;
use mdr_sim::sweep::CellReport;

/// Fault-axis indices of the `e17` preset grid.
const NO_PLAN: usize = 0;
const INERT: usize = 1;
const STORM: usize = 3;
const FAULT_AXIS: usize = 4;

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E17",
        "disconnection faults — recovery cost sweep + determinism (extension)",
        "extends §3 with MC disconnections/crashes and a reconnection handshake",
    );
    let grid = e17_grid(cfg);
    let n = cfg.pick(4_000, 20_000);
    let (report, parallel_identical) = serial_parallel_verdict(&grid);

    // One model, one θ, one replication: cells are grouped per policy
    // along the fault axis [no plan, inert, rate 0.02, rate 0.1].
    let mut table = Table::new(
        format!("cost/request at θ = 0.4, ω = 0.4, vs MC disconnection rate (n = {n})"),
        &[
            "policy",
            "rate 0",
            "rate 0.02",
            "rate 0.1",
            "recovery share @0.1",
            "disconnects",
            "crashes",
        ],
    );
    let mut recovery_billed = true;
    let mut faults_fire = true;
    let mut inert_plan_invisible = true;
    for cells in report.cells.chunks(FAULT_AXIS) {
        let [clean, inert, mild, stormy]: &[CellReport; 4] = match cells.try_into() {
            Ok(group) => group,
            Err(_) => unreachable!("the e17 preset has exactly four fault cells per policy"),
        };
        assert_eq!(clean.fault_index, NO_PLAN);
        assert_eq!(inert.fault_index, INERT);
        assert_eq!(stormy.fault_index, STORM);
        // The grid pairs workload seeds across the fault axis, so the
        // inert plan must replay the baseline *report* exactly — every
        // counter, not just the billing tuple.
        inert_plan_invisible &= clean.report == inert.report;
        let recovery = stormy.report.aborted_messages + stormy.report.reconciliation_messages;
        let total = stormy.report.data_messages + stormy.report.control_messages;
        recovery_billed &= recovery > 0 && recovery < total;
        faults_fire &= stormy.report.disconnects > 10
            && stormy.report.mc_crashes > 0
            && stormy.report.reconciliations > 0;
        table.row(vec![
            stormy.policy.to_string(),
            fmt_opt(inert.cost_per_request),
            fmt_opt(mild.cost_per_request),
            fmt_opt(stormy.cost_per_request),
            pct(recovery as f64 / total as f64),
            stormy.report.disconnects.to_string(),
            stormy.report.mc_crashes.to_string(),
        ]);
    }
    table.note("recovery share = (aborted + reconciliation messages) / all billed messages");
    exp.push_table(table);
    exp.push_table(summary_table(
        "sweep summary (grouped by policy × fault plan)",
        &report.summary,
    ));

    exp.verdict(
        "the sweep is deterministic: 4-thread run is byte-identical to serial (cells, summary, digest)",
        parallel_identical,
    );
    exp.verdict(
        "recovery traffic (aborts + reconnection handshakes) is billed and non-trivial",
        recovery_billed,
    );
    exp.verdict(
        "the fault machinery actually fires (disconnects, crashes, reconciliations observed)",
        faults_fire,
    );
    exp.verdict(
        "an inactive fault plan is invisible: rate-0 cells equal the no-plan baseline cells",
        inert_plan_invisible,
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }
}
