//! E17 — **Extension**: disconnection faults and crash recovery.
//!
//! §1 motivates the whole paper with the weak-connectivity reality of
//! mobile computers; the analysis itself assumes the MC stays reachable.
//! This experiment drops that assumption: the fault layer injects
//! disconnection windows, MC crashes (volatile and stable memory), SC
//! outages and ghost deliveries (duplication + reordering the link-layer
//! ARQ does not mask), and the reconnection handshake re-validates the
//! replica and hands window ownership back. The sweep shows (a) fault
//! schedules are fully deterministic — two identical configurations
//! produce byte-identical ledgers, the acceptance bar for reproducible
//! robustness runs — (b) the recovery traffic is billed and visible as an
//! aborted/reconciliation share of the total, and (c) an inactive fault
//! plan is indistinguishable from no plan at all.

use crate::table::{fmt, pct, Experiment, Table};
use crate::RunCfg;
use mdr_core::{CostModel, PolicySpec};
use mdr_sim::{FaultPlan, PoissonWorkload, RunLimit, SimConfig, SimReport, Simulation};

/// Runs `spec` under the E17 fault mix at the given disconnection rate.
/// A rate of zero still installs the (inactive) plan, exercising the
/// plan-is-inert path.
fn faulted(spec: PolicySpec, rate: f64, n: usize) -> SimReport {
    let ghosts = if rate > 0.0 { 0.05 } else { 0.0 };
    let Ok(plan) = FaultPlan::new(rate, 2.0, 0xE17)
        .and_then(|p| p.with_crashes(0.3, 0.5))
        .and_then(|p| p.with_sc_outages(0.2))
        .and_then(|p| p.with_duplication(ghosts, ghosts))
    else {
        unreachable!("experiment fault grid is valid by construction")
    };
    let config = SimConfig::new(spec).with_latency(0.05).with_faults(plan);
    let mut sim = Simulation::new(config);
    let mut workload = PoissonWorkload::from_theta(1.0, 0.4, 0xE17);
    sim.run(&mut workload, RunLimit::Requests(n))
}

fn baseline(spec: PolicySpec, n: usize) -> SimReport {
    let mut sim = Simulation::new(SimConfig::new(spec).with_latency(0.05));
    let mut workload = PoissonWorkload::from_theta(1.0, 0.4, 0xE17);
    sim.run(&mut workload, RunLimit::Requests(n))
}

/// Every billed quantity and fault counter of two reports, as one
/// comparable ledger tuple.
fn ledger(r: &SimReport) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        r.data_messages,
        r.control_messages,
        r.connections,
        r.disconnects,
        r.mc_crashes,
        r.reconciliations,
        r.aborted_messages,
        r.reconciliation_messages,
    )
}

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E17",
        "disconnection faults — recovery cost sweep + determinism (extension)",
        "extends §3 with MC disconnections/crashes and a reconnection handshake",
    );
    let n = cfg.pick(4_000, 20_000);
    let model = CostModel::message(0.4);
    let policies = [
        PolicySpec::St1,
        PolicySpec::St2,
        PolicySpec::SlidingWindow { k: 1 },
        PolicySpec::SlidingWindow { k: 5 },
        PolicySpec::T2 { m: 5 },
    ];
    let rates = [0.0, 0.02, 0.1];

    let mut table = Table::new(
        format!("cost/request at θ = 0.4, ω = 0.4, vs MC disconnection rate (n = {n})"),
        &[
            "policy",
            "rate 0",
            "rate 0.02",
            "rate 0.1",
            "recovery share @0.1",
            "disconnects",
            "crashes",
        ],
    );
    let mut recovery_billed = true;
    let mut faults_fire = true;
    let mut inert_plan_invisible = true;
    for &spec in &policies {
        let runs: Vec<SimReport> = rates.iter().map(|&r| faulted(spec, r, n)).collect();
        let clean = baseline(spec, n);
        // Rate 0 zeroes every knob, so the installed-but-inactive plan
        // must replay the no-plan run exactly.
        inert_plan_invisible &=
            clean.counts == runs[0].counts && ledger(&clean) == ledger(&runs[0]);
        let stormy = &runs[2];
        let recovery = stormy.aborted_messages + stormy.reconciliation_messages;
        let total = stormy.data_messages + stormy.control_messages;
        recovery_billed &= recovery > 0 && recovery < total;
        faults_fire &=
            stormy.disconnects > 10 && stormy.mc_crashes > 0 && stormy.reconciliations > 0;
        table.row(vec![
            spec.name(),
            fmt(runs[0].cost_per_request(model)),
            fmt(runs[1].cost_per_request(model)),
            fmt(runs[2].cost_per_request(model)),
            pct(recovery as f64 / total as f64),
            stormy.disconnects.to_string(),
            stormy.mc_crashes.to_string(),
        ]);
    }
    table.note("recovery share = (aborted + reconciliation messages) / all billed messages");
    exp.push_table(table);

    // Determinism: the acceptance bar — identical (FaultPlan, seed)
    // configurations replay byte-identical ledgers and schedules.
    let mut deterministic = true;
    for &spec in &policies {
        let a = faulted(spec, 0.1, n);
        let b = faulted(spec, 0.1, n);
        deterministic &= a.schedule == b.schedule
            && a.counts == b.counts
            && ledger(&a) == ledger(&b)
            && a.cost(model).to_bits() == b.cost(model).to_bits();
    }

    exp.verdict(
        "fault schedules are deterministic: identical configs give byte-identical ledgers",
        deterministic,
    );
    exp.verdict(
        "recovery traffic (aborts + reconnection handshakes) is billed and non-trivial",
        recovery_billed,
    );
    exp.verdict(
        "the fault machinery actually fires (disconnects, crashes, reconciliations observed)",
        faults_fire,
    );
    exp.verdict(
        "an inactive fault plan is invisible: rate-0 runs replay the no-plan baseline",
        inert_plan_invisible,
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }
}
