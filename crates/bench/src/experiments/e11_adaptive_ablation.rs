//! E11 — **Extension ablation**: dominance-guided adaptation vs the raw
//! majority window.
//!
//! §7.2 closes by proposing to *estimate frequencies from the window and
//! re-choose the allocation method by expected cost*. `AdaptivePolicy`
//! implements that idea for a single object, consulting the paper's own
//! Theorem 6 regions instead of the raw read/write majority. This ablation
//! quantifies what the idea changes:
//!
//! 1. In the **connection model** the dominance rule (θ ≷ 1/2) *is* the
//!    majority rule, so the adaptive policy collapses to SWk exactly —
//!    verified action-for-action.
//! 2. In the **message model** the thresholds shift away from 1/2
//!    (`2ω/(1+2ω)` and `(1+ω)/(1+2ω)`), biasing the policy toward the
//!    cheaper static in each region; the ablation measures the per-θ and
//!    aggregate effect at a high control-message cost.
//! 3. The worst case stays empirically bounded (exhaustive search over all
//!    short schedules).

use crate::table::{fmt, fmt_opt, Experiment, Table};
use crate::RunCfg;
use mdr_adversary::{exhaustive_search_policy, generators};
use mdr_analysis::message;
use mdr_core::{
    approx_eq, run_policy, run_spec, AdaptivePolicy, AllocationPolicy, CostModel, PolicySpec,
};

/// Mean per-request cost of a fresh `policy` over seeded i.i.d. schedules.
fn simulated_exp(policy: &mut dyn AllocationPolicy, theta: f64, model: CostModel, n: usize) -> f64 {
    let schedule = generators::random_schedule(n, theta, 0xE11 ^ (theta * 1e6) as u64);
    policy.reset();
    run_policy(policy, &schedule, model).total_cost / n as f64
}

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E11",
        "ablation — dominance-guided adaptive policy vs SWk (extension)",
        "§7.2 closing proposal (estimate frequencies, re-choose by expected cost), applied to one object",
    );
    let k = 9usize;
    let n = cfg.pick(30_000, 120_000);

    // --- 1. connection model: exact collapse to SWk ---
    let mut identical = true;
    for seed in 0..10u64 {
        let schedule = generators::random_schedule(500, 0.3 + 0.05 * seed as f64, seed);
        let mut adaptive = AdaptivePolicy::new(k, CostModel::Connection);
        let mut window = mdr_core::SlidingWindow::new(k);
        for r in &schedule {
            if adaptive.on_request(r) != window.on_request(r) {
                identical = false;
            }
        }
    }

    // --- 2. message model at ω = 0.8 (narrow SW1 band, shifted thresholds) ---
    let omega = 0.8;
    let model = CostModel::message(omega);
    let mut table = Table::new(
        format!("EXP at ω = {omega}: adaptive (k = {k}) vs SW{k} vs the static envelope"),
        &[
            "θ",
            "adaptive (sim)",
            "SWk (sim)",
            "SWk (eq)",
            "envelope min",
        ],
    );
    let mut adaptive_total = 0.0;
    let mut swk_total = 0.0;
    for i in 1..=9 {
        let theta = f64::from(i) / 10.0;
        let mut adaptive = AdaptivePolicy::new(k, model);
        let a = simulated_exp(&mut adaptive, theta, model, n);
        let schedule = generators::random_schedule(n, theta, 0xE11 ^ (theta * 1e6) as u64);
        let s = run_spec(PolicySpec::SlidingWindow { k }, &schedule, model).total_cost / n as f64;
        adaptive_total += a;
        swk_total += s;
        table.row(vec![
            fmt(theta),
            fmt(a),
            fmt(s),
            fmt(message::exp_swk(k, theta, omega)),
            fmt(message::optimal_exp(theta, omega)),
        ]);
    }
    table.note(format!(
        "θ-grid mean: adaptive {} vs SWk {}",
        fmt(adaptive_total / 9.0),
        fmt(swk_total / 9.0)
    ));
    exp.push_table(table);

    // --- 3. worst case stays bounded ---
    let search_len = cfg.pick(11, 13);
    let outcome = exhaustive_search_policy(
        || Box::new(AdaptivePolicy::new(k, model)),
        model,
        search_len,
    );
    let swk_outcome = exhaustive_search_policy(
        || PolicySpec::SlidingWindow { k }.build(),
        model,
        search_len,
    );
    let mut worst_table = Table::new(
        format!("short-horizon worst case (every schedule to length {search_len}, ω = {omega})"),
        &["policy", "worst ratio", "worst schedule"],
    );
    worst_table.row(vec![
        format!("adaptive k={k}"),
        fmt_opt(outcome.worst.ratio),
        outcome.worst_schedule.to_string(),
    ]);
    worst_table.row(vec![
        format!("SW{k}"),
        fmt_opt(swk_outcome.worst.ratio),
        swk_outcome.worst_schedule.to_string(),
    ]);
    exp.push_table(worst_table);

    exp.verdict(
        "connection model: the dominance rule degenerates to the majority rule — adaptive ≡ SWk action-for-action",
        identical,
    );
    exp.verdict(
        "message model (ω = 0.8): shifted thresholds lower the θ-grid mean EXP vs SWk",
        adaptive_total < swk_total,
    );
    exp.verdict(
        "the adaptive policy's short-horizon worst ratio stays bounded (no OPT-free blowup)",
        outcome.worst.ratio.is_some() && approx_eq(outcome.unbounded_witness_cost, 0.0),
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }
}
