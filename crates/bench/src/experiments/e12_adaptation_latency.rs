//! E12 — **Extension**: adaptation latency of the sliding window.
//!
//! The paper's trade-off discussion (§2.1, §9) says larger windows cost
//! more in the worst case; the mechanism is *adaptation latency* — after
//! the read/write mix flips, SWk keeps the stale allocation until the
//! window majority catches up. This experiment quantifies the latency:
//!
//! * **deterministically** — after a pure-read regime, exactly
//!   `(k+1)/2` consecutive writes are needed to shed the replica;
//! * **stochastically** — after θ jumps from θ_a to θ_b, the expected
//!   number of requests until the allocation first matches the new regime,
//!   against the exponential-window-fill model
//!   `t ≈ k · ln((θ_b − w₀)/(θ_b − ½))` (the window's write fraction
//!   relaxes toward θ_b with rate 1/k per request).

use crate::table::{fmt, Experiment, Table};
use crate::RunCfg;
use mdr_core::{AllocationPolicy, Request, SlidingWindow};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Mean number of requests after the θ switch until the replica is shed,
/// over `reps` independent runs.
fn measure_latency(k: usize, theta_a: f64, theta_b: f64, reps: usize, seed: u64) -> f64 {
    assert!(theta_a < 0.5 && theta_b > 0.5, "regime must actually flip");
    let mut total = 0.0;
    for rep in 0..reps {
        let mut rng = StdRng::seed_from_u64(seed + rep as u64);
        let mut sw = SlidingWindow::new(k);
        // Warm up to stationarity under θ_a (the replica will be present
        // almost surely since θ_a < 1/2).
        let warmup = (20 * k).max(2_000);
        for _ in 0..warmup {
            let req = if rng.random::<f64>() < theta_a {
                Request::Write
            } else {
                Request::Read
            };
            sw.on_request(req);
        }
        // If the warm-up ended in the rare no-copy state, top up with reads.
        while !sw.has_copy() {
            sw.on_request(Request::Read);
        }
        // Switch to θ_b and count requests until the copy is shed.
        let mut t = 0usize;
        while sw.has_copy() {
            let req = if rng.random::<f64>() < theta_b {
                Request::Write
            } else {
                Request::Read
            };
            sw.on_request(req);
            t += 1;
        }
        total += t as f64;
    }
    total / reps as f64
}

/// The exponential-fill prediction: the window's write fraction relaxes
/// from `w0` toward `theta_b` with rate 1/k per request; the majority
/// flips when it crosses 1/2.
fn fill_model(k: usize, w0: f64, theta_b: f64) -> f64 {
    k as f64 * ((theta_b - w0) / (theta_b - 0.5)).ln()
}

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E12",
        "adaptation latency of SWk after a regime change (extension)",
        "quantifies the §2.1/§9 trade-off mechanism (larger k ⇒ slower adaptation)",
    );

    // --- deterministic bound ---
    let mut det_ok = true;
    for k in [1usize, 3, 9, 15, 31] {
        let mut sw = SlidingWindow::with_initial_copy(k);
        let mut writes = 0usize;
        while sw.has_copy() {
            sw.on_request(Request::Write);
            writes += 1;
        }
        det_ok &= writes == k.div_ceil(2);
    }

    // --- stochastic latency ---
    let reps = cfg.pick(200, 1_000);
    let theta_a = 0.2;
    let mut table = Table::new(
        format!("requests to shed the replica after θ: {theta_a} → θ_b (mean of {reps} runs)"),
        &[
            "k",
            "θ_b = 0.7 (sim)",
            "fill model",
            "θ_b = 0.9 (sim)",
            "fill model",
        ],
    );
    let mut monotone = true;
    let mut model_ok = true;
    let mut prev = (0.0f64, 0.0f64);
    for k in [3usize, 9, 15, 31, 63] {
        let l7 = measure_latency(k, theta_a, 0.7, reps, 0xE12);
        let l9 = measure_latency(k, theta_a, 0.9, reps, 0xE12 + 777);
        monotone &= l7 > prev.0 && l9 > prev.1;
        prev = (l7, l9);
        let m7 = fill_model(k, theta_a, 0.7);
        let m9 = fill_model(k, theta_a, 0.9);
        // The diffusion correction matters for small k; require the model
        // within 35% for k ≥ 9.
        if k >= 9 {
            model_ok &= (l7 - m7).abs() / m7 < 0.35 && (l9 - m9).abs() / m9 < 0.35;
        }
        table.row(vec![k.to_string(), fmt(l7), fmt(m7), fmt(l9), fmt(m9)]);
    }
    table.note("fill model: t ≈ k · ln((θ_b − w₀)/(θ_b − ½)), w₀ = stationary write fraction θ_a");
    exp.push_table(table);

    exp.verdict(
        "deterministic latency: exactly ⌈k/2⌉ consecutive writes shed the replica",
        det_ok,
    );
    exp.verdict(
        "adaptation latency grows monotonically with k (the §9 trade-off mechanism)",
        monotone,
    );
    exp.verdict(
        "the exponential window-fill model predicts the latency within 35% for k ≥ 9",
        model_ok,
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }

    #[test]
    fn fill_model_sanity() {
        // Larger k ⇒ proportionally longer; stronger drift ⇒ shorter.
        assert!(fill_model(30, 0.2, 0.9) > fill_model(10, 0.2, 0.9));
        assert!(fill_model(10, 0.2, 0.9) < fill_model(10, 0.2, 0.6));
    }
}
