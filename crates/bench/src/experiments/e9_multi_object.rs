//! E9 — Multiple objects (§7.2).
//!
//! Reproduces the worked two-object setting: the four allocation schemes
//! ST1 / ST2 / ST1,2 / ST2,1 with the paper's expected-cost formulas
//! (validated by simulation), the optimal static allocation by enumeration,
//! and the window-based dynamic variant — convergence to the optimum on a
//! stationary profile, and superiority over *every* static allocation when
//! the profile shifts.

use crate::table::{fmt, Experiment, Table};
use crate::RunCfg;
use mdr_multi::{
    simulate_windowed, simulate_windowed_shift, Allocation, ObjectSet, OperationProfile,
    WindowedAllocator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E9",
        "multi-object allocation",
        "§7.2 (optimal static allocation; window-based dynamic variant)",
    );
    // Worked profile: x read-heavy, y write-heavy, light joint traffic.
    let profile = OperationProfile::two_objects(6.0, 1.0, 1.0, 1.0, 6.0, 0.5);
    let ops = cfg.pick(20_000, 100_000);

    // --- the four schemes: formula vs simulation ---
    let schemes = [
        ("ST1 (∅)", Allocation::EMPTY),
        ("ST2 ({x,y})", Allocation::full(2)),
        ("ST1,2 ({y})", Allocation(ObjectSet::singleton(1))),
        ("ST2,1 ({x})", Allocation(ObjectSet::singleton(0))),
    ];
    let mut table = Table::new(
        "two-object schemes: §7.2 expected cost vs simulation",
        &["scheme", "EXP (formula)", "EXP (sim)", "optimal?"],
    );
    let (best_alloc, best_cost) = profile.optimal_allocation();
    let mut rng = StdRng::seed_from_u64(0xE9);
    let mut max_gap = 0.0f64;
    for &(name, alloc) in &schemes {
        let analytic = profile.expected_cost(alloc);
        let mut total = 0.0;
        for _ in 0..ops {
            total += alloc.connection_cost(profile.sample(&mut rng));
        }
        let sim = total / ops as f64;
        max_gap = max_gap.max((sim - analytic).abs());
        table.row(vec![
            name.to_owned(),
            fmt(analytic),
            fmt(sim),
            (alloc == best_alloc).to_string(),
        ]);
    }
    table.note(format!(
        "optimal static: {} at EXP = {}",
        best_alloc.0,
        fmt(best_cost)
    ));
    exp.push_table(table);

    // --- dynamic variant, stationary profile ---
    let mut alloc = WindowedAllocator::new(2, 200, 25);
    let stationary = simulate_windowed(&profile, &mut alloc, ops, 0xE9);
    let mut dyn_table = Table::new(
        "window-based dynamic allocator (window 200, recompute every 25)",
        &[
            "scenario",
            "dynamic cost",
            "best static cost",
            "regret ratio",
            "reallocations",
        ],
    );
    dyn_table.row(vec![
        "stationary".to_owned(),
        fmt(stationary.dynamic_cost),
        fmt(stationary.optimal_static_cost),
        fmt(stationary.regret_ratio()),
        stationary.reallocations.to_string(),
    ]);

    // --- dynamic variant, shifting profile ---
    let read_heavy = OperationProfile::two_objects(10.0, 10.0, 4.0, 1.0, 1.0, 0.5);
    let write_heavy = OperationProfile::two_objects(1.0, 1.0, 0.5, 10.0, 10.0, 4.0);
    let mut alloc2 = WindowedAllocator::new(2, 150, 25);
    let shifted = simulate_windowed_shift(
        &read_heavy,
        &write_heavy,
        &mut alloc2,
        cfg.pick(10_000, 40_000),
        0xE9,
    );
    dyn_table.row(vec![
        "shifting (read-heavy → write-heavy)".to_owned(),
        fmt(shifted.dynamic_cost),
        fmt(shifted.optimal_static_cost),
        fmt(shifted.regret_ratio()),
        shifted.reallocations.to_string(),
    ]);
    exp.push_table(dyn_table);

    exp.verdict(
        "§7.2 cost formulas match simulation (gap < 0.01)",
        max_gap < 0.01,
    );
    exp.verdict(
        "the enumerated optimum replicates exactly the read-heavy object x",
        best_alloc == Allocation(ObjectSet::singleton(0)),
    );
    exp.verdict(
        "dynamic allocator converges: regret over optimal static < 5% (stationary)",
        stationary.regret_ratio() < 1.05,
    );
    exp.verdict(
        "dynamic allocator beats every static allocation on the shifting profile",
        shifted.dynamic_cost < shifted.optimal_static_cost,
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }
}
