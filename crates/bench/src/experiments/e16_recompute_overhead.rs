//! E16 — **Extension**: the recomputation-period trade-off (§7.2's
//! "excessive overhead" remark, quantified).
//!
//! §7.2: "To avoid excessive overhead, this recomputation can be done
//! periodically instead of after each operation." With *free* allocation
//! transitions (the analysis' piggyback assumption) eager recomputation is
//! harmless — but once a re-allocation actually ships data (1 per object
//! gained) and delete-requests (ω per object dropped), per-operation
//! recomputation churns on noisy frequency estimates. This experiment
//! sweeps the recompute period against two regimes:
//!
//! * a **near-boundary stationary** profile (the estimate keeps crossing
//!   the decision boundary): eager recomputation pays heavily for churn;
//! * a **shifting** profile: lazy recomputation pays for staleness.
//!
//! A moderate period is near-best in both — exactly the paper's advice.

use crate::table::{fmt, Experiment, Table};
use crate::RunCfg;
use mdr_multi::{simulate_windowed, simulate_windowed_shift, OperationProfile, WindowedAllocator};

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E16",
        "recomputation period vs transition overhead (extension)",
        "§7.2: \"to avoid excessive overhead, this recomputation can be done periodically\"",
    );
    let (alloc_cost, dealloc_cost) = (1.0, 0.5); // data message, delete-request at ω = 0.5
    let stationary_ops = cfg.pick(15_000, 40_000);
    let phase_ops = cfg.pick(3_000, 5_000);

    // Near the decision boundary: x slightly read-heavy, y slightly
    // write-heavy — windowed estimates flip constantly.
    let near_boundary = OperationProfile::two_objects(5.0, 5.2, 0.0, 5.2, 5.0, 0.0);
    let read_heavy = OperationProfile::two_objects(10.0, 10.0, 4.0, 1.0, 1.0, 0.5);
    let write_heavy = OperationProfile::two_objects(1.0, 1.0, 0.5, 10.0, 10.0, 4.0);

    let periods = [1usize, 5, 25, 100, 500, 2_000];
    let mut table = Table::new(
        "total cost (operations + transitions) vs recompute period",
        &[
            "period",
            "stationary near-boundary",
            "transitions paid",
            "reallocs",
            "shifting",
            "reallocs ",
        ],
    );
    let mut stationary_costs = Vec::new();
    let mut shifting_costs = Vec::new();
    for &period in &periods {
        let mut a =
            WindowedAllocator::new(2, 60, period).with_transition_costs(alloc_cost, dealloc_cost);
        let stat = simulate_windowed(&near_boundary, &mut a, stationary_ops, 0xE16);
        let mut b =
            WindowedAllocator::new(2, 150, period).with_transition_costs(alloc_cost, dealloc_cost);
        let shift = simulate_windowed_shift(&read_heavy, &write_heavy, &mut b, phase_ops, 0xE16);
        stationary_costs.push(stat.dynamic_cost);
        shifting_costs.push(shift.dynamic_cost);
        table.row(vec![
            period.to_string(),
            fmt(stat.dynamic_cost),
            fmt(a.transition_cost_paid()),
            stat.reallocations.to_string(),
            fmt(shift.dynamic_cost),
            shift.reallocations.to_string(),
        ]);
    }
    exp.push_table(table);

    // period index: 0 → 1, 2 → 25, 4 → 500, 5 → 2000.
    exp.verdict(
        "near-boundary stationary: per-operation recomputation costs ≥ 8% more than period 500 (churn)",
        stationary_costs[0] > 1.08 * stationary_costs[4],
    );
    exp.verdict(
        "shifting: a period longer than the phase costs ≥ 2× the moderate period 25 (staleness)",
        shifting_costs[5] > 2.0 * shifting_costs[2],
    );
    let moderate_ok = stationary_costs[2]
        < 1.06
            * stationary_costs
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min)
        && shifting_costs[2] < 1.10 * shifting_costs.iter().copied().fold(f64::INFINITY, f64::min);
    exp.verdict(
        "a moderate period (25) is within 6%/10% of the best in both regimes — the §7.2 advice quantified",
        moderate_ok,
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }
}
