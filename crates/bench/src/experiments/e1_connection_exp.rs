//! E1 — Expected cost per request in the connection model (§5.1–§5.2,
//! Theorems 1–2, Eqs. 2 & 5).
//!
//! Reproduces the paper's connection-model expected-cost results: the
//! closed-form `EXP(θ)` curves for the statics and the SWk family, each
//! validated against the distributed simulator, plus Theorem 2's dominance
//! claim (`EXP_SWk ≥ min(EXP_ST1, EXP_ST2)` pointwise).

use crate::table::{fmt, Experiment, Table};
use crate::RunCfg;
use mdr_analysis::expected_cost;
use mdr_core::{CostModel, PolicySpec};
use mdr_sim::{estimate_expected_cost, EstimatorConfig};

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E1",
        "expected cost vs θ, connection model",
        "§5.1–§5.2, Theorems 1–2, Eqs. 2 & 5",
    );
    let policies = [
        PolicySpec::St1,
        PolicySpec::St2,
        PolicySpec::SlidingWindow { k: 1 },
        PolicySpec::SlidingWindow { k: 3 },
        PolicySpec::SlidingWindow { k: 15 },
    ];
    let model = CostModel::Connection;
    let estimator = EstimatorConfig {
        requests_per_run: cfg.pick(4_000, 20_000),
        replications: cfg.pick(4, 8),
        seed: 0xE1,
    };

    let mut columns: Vec<String> = vec!["θ".to_owned()];
    for p in &policies {
        columns.push(format!("{p} (eq)"));
        columns.push(format!("{p} (sim)"));
    }
    let mut table = Table {
        title: "EXP(θ): closed form vs distributed simulation".to_owned(),
        columns,
        rows: Vec::new(),
        notes: Vec::new(),
    };

    let thetas: Vec<f64> = (1..10).map(|i| f64::from(i) / 10.0).collect();
    let mut max_gap = 0.0f64;
    let mut dominance_ok = true;
    for &theta in &thetas {
        let mut cells = vec![fmt(theta)];
        for &p in &policies {
            let analytic = expected_cost(p, model, theta);
            let sim = estimate_expected_cost(p, model, theta, estimator);
            max_gap = max_gap.max((sim.mean - analytic).abs());
            cells.push(fmt(analytic));
            cells.push(fmt(sim.mean));
        }
        // Theorem 2 on a fine grid around this θ.
        for k in [1usize, 3, 15] {
            let envelope = theta.min(1.0 - theta);
            if expected_cost(PolicySpec::SlidingWindow { k }, model, theta) < envelope - 1e-12 {
                dominance_ok = false;
            }
        }
        table.row(cells);
    }
    table.note(format!(
        "max |simulated − closed form| over all cells: {}",
        fmt(max_gap)
    ));
    exp.push_table(table);

    exp.verdict(
        "Eq. 2/Eq. 5 closed forms match the distributed simulation (gap < 0.02)",
        max_gap < 0.02,
    );
    exp.verdict(
        "Theorem 2: EXP_SWk ≥ min(θ, 1−θ) at every grid point",
        dominance_ok,
    );
    // The §2 worked statement: θ ≥ 1/2 ⇒ ST1 best; θ ≤ 1/2 ⇒ ST2 best.
    let st1_best_high = expected_cost(PolicySpec::St1, model, 0.8)
        <= policies
            .iter()
            .map(|&p| expected_cost(p, model, 0.8))
            .fold(f64::INFINITY, f64::min)
            + 1e-12;
    let st2_best_low = expected_cost(PolicySpec::St2, model, 0.2)
        <= policies
            .iter()
            .map(|&p| expected_cost(p, model, 0.2))
            .fold(f64::INFINITY, f64::min)
            + 1e-12;
    exp.verdict(
        "§2.1: the matching static is best when θ is known",
        st1_best_high && st2_best_low,
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
        assert_eq!(exp.tables.len(), 1);
        assert_eq!(exp.tables[0].rows.len(), 9);
    }
}
