//! E10 — The §9 guidance table: picking k to balance average cost against
//! competitiveness.
//!
//! Regenerates the quantified recommendations of the conclusion section:
//! the AVG-excess / competitiveness-factor trade-off per window size, the
//! two named operating points (k = 9 ⇒ within 10% & 10-competitive; k = 15
//! ⇒ within 6% & 16-competitive), and the message-model window advice
//! (ω ≤ 0.4 ⇒ SW1; ω > 0.4 ⇒ k ≥ k₀(ω)).

use crate::table::{fmt, pct, Experiment, Table};
use crate::RunCfg;
use mdr_analysis::competitive::{swk_connection_factor, swk_message_factor};
use mdr_analysis::window_choice::{min_beneficial_k, recommend_k, smallest_k_within};
use mdr_analysis::{connection, message};
use mdr_core::approx_eq;

/// Runs the experiment.
pub fn run(_cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E10",
        "choosing the window size — the §9 trade-off",
        "§9 conclusions (k = 9 / k = 15 operating points; ω-dependent window advice)",
    );

    // --- connection-model trade-off table ---
    let mut table = Table::new(
        "connection model: AVG excess over the optimum vs competitiveness, per k",
        &["k", "AVG_SWk", "excess over 1/4", "competitive factor"],
    );
    for &k in &[1usize, 3, 5, 7, 9, 15, 31, 63] {
        table.row(vec![
            k.to_string(),
            fmt(connection::avg_swk(k)),
            pct(connection::avg_swk(k) / 0.25 - 1.0),
            fmt(swk_connection_factor(k)),
        ]);
    }
    exp.push_table(table);

    // --- named operating points ---
    let rec10 = recommend_k(0.10);
    let rec6 = recommend_k(0.06);
    let mut points = Table::new(
        "§9 operating points",
        &[
            "target slack",
            "recommended k",
            "AVG excess",
            "competitive factor",
        ],
    );
    for rec in [&rec10, &rec6] {
        points.row(vec![
            pct(if rec.k == 9 { 0.10 } else { 0.06 }),
            rec.k.to_string(),
            pct(rec.avg_excess),
            fmt(rec.competitive_factor),
        ]);
    }
    exp.push_table(points);

    // --- message-model advice ---
    let mut advice = Table::new(
        "message model: recommended window per ω (§9)",
        &[
            "ω",
            "best-AVG window",
            "AVG there",
            "competitive factor there",
        ],
    );
    for &omega in &[0.1, 0.3, 0.4, 0.45, 0.6, 0.8, 1.0] {
        match min_beneficial_k(omega) {
            None => {
                advice.row(vec![
                    fmt(omega),
                    "SW1".to_owned(),
                    fmt(message::avg_sw1(omega)),
                    fmt(1.0 + 2.0 * omega),
                ]);
            }
            Some(k0) => {
                advice.row(vec![
                    fmt(omega),
                    format!("SWk, k ≥ {k0}"),
                    fmt(message::avg_swk(k0, omega)),
                    fmt(swk_message_factor(k0, omega)),
                ]);
            }
        }
    }
    exp.push_table(advice);

    exp.verdict(
        "§9: k = 9 gives AVG within 10% of optimum at competitiveness 10",
        rec10.k == 9 && rec10.avg_excess <= 0.10 && approx_eq(rec10.competitive_factor, 10.0),
    );
    exp.verdict(
        "§2.1: k = 15 gives AVG within 6% of optimum at competitiveness 16",
        rec6.k == 15 && rec6.avg_excess <= 0.06 && approx_eq(rec6.competitive_factor, 16.0),
    );
    exp.verdict(
        "§9: ω ≤ 0.4 ⇒ choose SW1; ω > 0.4 ⇒ choose k ≥ k₀(ω)",
        min_beneficial_k(0.4).is_none() && min_beneficial_k(0.45) == Some(39),
    );
    exp.verdict(
        "smallest_k_within inverts Eq. 6 exactly (10% → 9, 6% → 15)",
        smallest_k_within(0.10) == 9 && smallest_k_within(0.06) == 15,
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }
}
