//! E18 — **Extension**: the deterministic ARQ transport under loss.
//!
//! §3 prices a lossy link by charging each exchange its expected number
//! of transmission attempts — an *instant* model in which the retry is
//! free of time. E13 reproduced that claim; this experiment replaces the
//! instant model with the first-class transport: every attempt arms a
//! retransmission timer, timeouts back off exponentially (with
//! deterministic seed-derived jitter), a bounded retry budget escalates
//! to a declared partition that feeds the reconnection path, and every
//! completed exchange is confirmed by a billed control-class
//! acknowledgement.
//!
//! The sweep crosses loss rate × retry budget × backoff factor (the
//! `e18` preset) and asserts the robustness claims on top of the paper's:
//! (a) the full sweep — timer events, jitter draws, escalations and all —
//! is *byte-identical* between the serial path and a 4-thread pool;
//! (b) the §3 shape survives the timed transport: the request schedule
//! and the action ledger of every lossy cell equal the perfect-link
//! baseline's, loss inflates only the bill; (c) the transport's billing
//! identity holds at every cell — billed traffic = ledger + settled
//! retransmissions + aborted + reconciliation + acks; (d) retransmission
//! pressure grows with the loss rate at a fixed budget.

use crate::sweep::{e18_grid, serial_parallel_verdict, summary_table};
use crate::table::{fmt_opt, Experiment, Table};
use crate::RunCfg;
use mdr_sim::SimReport;

/// ARQ-axis width of the `e18` preset grid (perfect link + four
/// loss × budget × backoff points).
const ARQ_AXIS: usize = 5;

/// The transport billing identity at run termination: every billed
/// message is accounted for by the action ledger, the settled
/// retransmissions, the aborted and reconciliation traffic, or the acks.
fn billing_identity(r: &SimReport) -> bool {
    r.data_messages + r.control_messages
        == r.counts.data_messages()
            + r.counts.control_messages()
            + r.settled_retransmissions
            + r.aborted_messages
            + r.reconciliation_messages
            + r.arq_acks
}

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E18",
        "ARQ transport — loss × retry budget × backoff sweep + determinism (extension)",
        "replaces §3's instant loss model with a timed, budgeted, backoff ARQ transport",
    );
    let grid = e18_grid(cfg);
    let n = cfg.pick(2_000, 10_000);
    let (report, parallel_identical) = serial_parallel_verdict(&grid);

    let mut table = Table::new(
        format!("cost/request at θ = 0.4, ω = 0.5, vs ARQ transport point (n = {n})"),
        &[
            "policy",
            "perfect",
            "p=.05 b=8",
            "p=.2 b=8",
            "p=.2 b=3",
            "p=.4 b=4",
            "retx @.4",
            "acks @.4",
            "escalations @.4",
        ],
    );
    let mut actions_invariant = true;
    let mut bill_accounted = true;
    let mut loss_monotone = true;
    let mut acks_flow = true;
    for cells in report.cells.chunks(ARQ_AXIS) {
        let baseline = &cells[0];
        assert_eq!(baseline.arq_index, 0);
        for cell in cells {
            // (b) the timed transport repairs every loss (or escalates and
            // recovers) without perturbing the serialized schedule or the
            // policy's actions — the grid pairs workload seeds across the
            // ARQ axis, so this is an exact, cell-for-cell claim.
            actions_invariant &= cell.report.schedule == baseline.report.schedule
                && cell.report.counts == baseline.report.counts;
            bill_accounted &= billing_identity(&cell.report);
        }
        // (d) more loss, more repair traffic at the same budget; and the
        // perfect link retransmits and acknowledges nothing.
        loss_monotone &= baseline.report.retransmissions == 0
            && cells[1].report.retransmissions < cells[2].report.retransmissions;
        acks_flow &= baseline.report.arq_acks == 0
            && cells.iter().skip(1).all(|c| {
                c.report.arq_acks > 0 && c.report.invariant_checks >= c.report.counts.total()
            });
        let stormy = &cells[4];
        table.row(vec![
            baseline.policy.to_string(),
            fmt_opt(baseline.cost_per_request),
            fmt_opt(cells[1].cost_per_request),
            fmt_opt(cells[2].cost_per_request),
            fmt_opt(cells[3].cost_per_request),
            fmt_opt(stormy.cost_per_request),
            stormy.report.retransmissions.to_string(),
            stormy.report.arq_acks.to_string(),
            stormy.report.retry_escalations.to_string(),
        ]);
    }
    table.note("p = per-attempt loss probability, b = retry budget; base timeout 0.2, jitter 0.25");
    exp.push_table(table);
    exp.push_table(summary_table(
        "sweep summary (grouped by policy × ARQ point)",
        &report.summary,
    ));

    exp.verdict(
        "the ARQ sweep is deterministic: 4-thread run is byte-identical to serial (cells, summary, digest)",
        parallel_identical,
    );
    exp.verdict(
        "loss changes the bill, never the actions: every lossy cell replays the baseline schedule and ledger",
        actions_invariant,
    );
    exp.verdict(
        "the billing identity holds at every cell (ledger + retransmissions + aborted + reconciliation + acks)",
        bill_accounted,
    );
    exp.verdict(
        "retransmission pressure grows with the loss rate at a fixed budget",
        loss_monotone,
    );
    exp.verdict(
        "every completion is acknowledged and invariant-checked online",
        acks_flow,
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e18_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }
}
