//! E6 — **Figure 2**: the window-size threshold k₀(ω) (§6.3, Corollary 4).
//!
//! Reproduces the staircase of the smallest odd k for which SWk has a lower
//! average expected cost than SW1, three ways: the reconstructed closed
//! form of Corollary 4, brute force over Eqs. 10/12, and a drifting-θ
//! simulation at selected ω. Confirms the two data points quoted in the
//! text: ω = 0.45 → k ≥ 39 and ω = 0.8 → k ≥ 7.

use crate::table::{fmt, fmt_opt, Experiment, Table};
use crate::RunCfg;
use mdr_analysis::message::{avg_sw1, avg_swk};
use mdr_analysis::window_choice::{k0_threshold, min_beneficial_k};
use mdr_core::{CostModel, PolicySpec};
use mdr_sim::{estimate_average_cost, EstimatorConfig};

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E6",
        "Figure 2 — smallest window size beating SW1, vs ω",
        "§6.3, Corollaries 3–4; Figure 2 (quoted points: 0.45 → 39, 0.8 → 7)",
    );

    let omegas = [0.35, 0.4, 0.41, 0.42, 0.45, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let mut table = Table::new(
        "k₀(ω): closed form vs brute force over Eq. 10/12",
        &[
            "ω",
            "k₀ (real root)",
            "min odd k (formula)",
            "min odd k (brute force)",
            "agree",
        ],
    );
    let mut all_agree = true;
    for &omega in &omegas {
        let root = k0_threshold(omega);
        let analytic = min_beneficial_k(omega);
        let brute = if omega > 0.4 {
            (3usize..=2_001)
                .step_by(2)
                .find(|&k| avg_swk(k, omega) <= avg_sw1(omega))
        } else {
            // Corollary 3: no k works.
            (3usize..=2_001)
                .step_by(2)
                .find(|&k| avg_swk(k, omega) <= avg_sw1(omega))
        };
        let agree = analytic == brute;
        all_agree &= agree;
        table.row(vec![
            fmt(omega),
            fmt_opt(root),
            analytic.map_or_else(|| "—".to_owned(), |k| k.to_string()),
            brute.map_or_else(|| "—".to_owned(), |k| k.to_string()),
            agree.to_string(),
        ]);
    }
    exp.push_table(table);

    // --- Simulated confirmation at ω = 0.8: SW7 beats SW1 on AVG, SW5 does not ---
    let estimator = EstimatorConfig {
        requests_per_run: 0,
        replications: cfg.pick(4, 8),
        seed: 0xE6,
    };
    let (per_period, periods) = cfg.pick((1_500, 14), (3_000, 40));
    let model = CostModel::message(0.8);
    let mut sim_table = Table::new(
        "simulated AVG at ω = 0.8 (threshold k₀ = 7)",
        &["policy", "AVG (eq)", "AVG (sim)", "±95% CI"],
    );
    let mut sims = Vec::new();
    for k in [1usize, 5, 7, 9] {
        let spec = PolicySpec::SlidingWindow { k };
        let s = estimate_average_cost(spec, model, per_period, periods, estimator);
        let analytic = if k == 1 {
            avg_sw1(0.8)
        } else {
            avg_swk(k, 0.8)
        };
        sim_table.row(vec![
            format!("SW{k}"),
            fmt(analytic),
            fmt(s.mean),
            fmt(s.ci95),
        ]);
        sims.push((k, s.mean));
    }
    exp.push_table(sim_table);

    let analytic_order_ok = avg_swk(5, 0.8) > avg_sw1(0.8) && avg_swk(7, 0.8) <= avg_sw1(0.8);
    exp.verdict(
        "Corollary 4 closed form agrees with brute force at every ω",
        all_agree,
    );
    exp.verdict(
        "quoted Figure 2 points: k₀(0.45) = 39 and k₀(0.8) = 7",
        min_beneficial_k(0.45) == Some(39) && min_beneficial_k(0.8) == Some(7),
    );
    exp.verdict(
        "analytic threshold at ω = 0.8: SW5 loses to SW1, SW7 wins",
        analytic_order_ok,
    );
    let (Some(&(_, sw1_sim)), Some(&(_, sw7_sim))) = (
        sims.iter().find(|(k, _)| *k == 1),
        sims.iter().find(|(k, _)| *k == 7),
    ) else {
        unreachable!("k = 1 and k = 7 are both simulated");
    };
    exp.verdict(
        &format!(
            "simulation at ω = 0.8: AVG(SW7) = {} ≤ AVG(SW1) = {} (within noise)",
            fmt(sw7_sim),
            fmt(sw1_sim)
        ),
        sw7_sim <= sw1_sim + 0.01,
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }
}
