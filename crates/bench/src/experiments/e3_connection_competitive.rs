//! E3 — Worst case in the connection model (§5.3, Theorem 4).
//!
//! Three-pronged reproduction of the competitive results:
//!
//! 1. **Lower bound / tightness** — on the canonical adversarial cycle the
//!    measured SWk/OPT ratio climbs to `k + 1`;
//! 2. **Upper bound** — exhaustive enumeration of every schedule up to a
//!    length bound plus randomized long-schedule search never exceed
//!    `k + 1` (with the cold-start additive constant);
//! 3. **Statics are not competitive** — ST1's ratio on pure-read schedules
//!    grows linearly without bound, and ST2 incurs arbitrary cost on
//!    schedules where OPT pays nothing.

use crate::table::{fmt, fmt_opt, Experiment, Table};
use crate::RunCfg;
use mdr_adversary::{
    cycle_ratio, exhaustive_search, generators, measure, random_worst, verify_factor,
};
use mdr_core::{approx_eq, CostModel, PolicySpec, Schedule};

/// The measured competitive ratio; every schedule here is built so OPT
/// pays a positive cost.
fn ratio_of(r: &mdr_adversary::RatioReport) -> f64 {
    let Some(ratio) = r.ratio else {
        panic!("OPT pays on this schedule");
    };
    ratio
}

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E3",
        "competitiveness in the connection model",
        "§5.3, Theorem 4 (SWk tightly (k+1)-competitive; statics not competitive)",
    );
    let model = CostModel::Connection;
    let cycles = cfg.pick(100, 400);
    let search_len = cfg.pick(12, 16);

    // --- SWk tightness ---
    let mut table = Table::new(
        "SWk vs OPT: claimed factor k+1 against measured worst cases",
        &[
            "k",
            "claimed",
            "cycle ratio",
            "exhaustive worst",
            "random worst",
            "bound holds",
        ],
    );
    let mut all_tight = true;
    let mut all_bounded = true;
    for k in [1usize, 3, 5, 9] {
        let spec = PolicySpec::SlidingWindow { k };
        let claimed = (k + 1) as f64;
        let warmup = Schedule::all_reads(k);
        let half = k.div_ceil(2);
        let cycle = Schedule::write_read_cycles(half, half, 1);
        let lower = ratio_of(&cycle_ratio(spec, &warmup, &cycle, cycles, model));
        let exhaustive = ratio_of(&exhaustive_search(spec, model, search_len).worst);
        let (_, random) = random_worst(spec, model, 80, cfg.pick(100, 400), 0xE3);
        // Upper bound with cold-start slack b = k (the warm-up fills).
        let holds = verify_factor(spec, model, claimed, (k + 1) as f64, search_len).is_ok();
        all_tight &= lower > claimed - 0.15;
        all_bounded &= holds && exhaustive <= claimed + 1e-9;
        table.row(vec![
            k.to_string(),
            fmt(claimed),
            fmt(lower),
            fmt(exhaustive),
            fmt_opt(random.ratio),
            holds.to_string(),
        ]);
    }
    exp.push_table(table);

    // --- statics unbounded ---
    let mut table = Table::new(
        "statics on their §5.3 witnesses: the ratio diverges with length",
        &["schedule", "n", "policy cost", "OPT cost", "ratio"],
    );
    let mut st1_diverges = true;
    let mut prev_ratio = 0.0;
    for n in [10usize, 100, 1_000] {
        let s = generators::static_punisher(PolicySpec::St1, n);
        let r = measure(PolicySpec::St1, &s, model);
        let ratio = ratio_of(&r);
        st1_diverges &= ratio > prev_ratio;
        prev_ratio = ratio;
        table.row(vec![
            format!("ST1 on r^{n}"),
            n.to_string(),
            fmt(r.policy_cost),
            fmt(r.opt_cost),
            fmt(ratio),
        ]);
    }
    let mut st2_unbounded = true;
    for n in [10usize, 100, 1_000] {
        let s = generators::static_punisher(PolicySpec::St2, n);
        let r = measure(PolicySpec::St2, &s, model);
        st2_unbounded &= approx_eq(r.opt_cost, 0.0) && approx_eq(r.policy_cost, n as f64);
        table.row(vec![
            format!("ST2 on w^{n}"),
            n.to_string(),
            fmt(r.policy_cost),
            fmt(r.opt_cost),
            fmt_opt(r.ratio),
        ]);
    }
    exp.push_table(table);

    exp.verdict(
        "Theorem 4 lower bound: cycle ratios approach k + 1",
        all_tight,
    );
    exp.verdict(
        &format!("Theorem 4 upper bound: no schedule up to length {search_len} (exhaustive) exceeds k + 1"),
        all_bounded,
    );
    exp.verdict(
        "§5.3: ST1 ratio grows without bound on pure reads",
        st1_diverges,
    );
    exp.verdict(
        "§5.3: ST2 incurs unbounded cost against a free OPT on pure writes",
        st2_unbounded,
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }
}
