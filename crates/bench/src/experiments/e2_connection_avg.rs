//! E2 — Average expected cost vs window size, connection model (§5.2,
//! Theorem 3 / Eq. 6, Corollary 1).
//!
//! Reproduces `AVG_SWk = 1/4 + 1/(4(k+2))` against a drifting-θ simulation
//! (θ redrawn uniformly every period, the §3 construction), the Corollary 1
//! monotonicity, the `AVG_ST = 1/2` baselines, and the §2 worked claim that
//! k = 15 comes within 6% of the optimal 1/4.

use crate::table::{fmt, pct, Experiment, Table};
use crate::RunCfg;
use mdr_analysis::connection;
use mdr_core::{CostModel, PolicySpec};
use mdr_sim::{estimate_average_cost, EstimatorConfig};

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E2",
        "average expected cost vs window size k, connection model",
        "§5.2, Theorem 3 / Eq. 6, Corollary 1; §2.1 worked numbers",
    );
    let model = CostModel::Connection;
    let estimator = EstimatorConfig {
        requests_per_run: 0,
        replications: cfg.pick(4, 8),
        seed: 0xE2,
    };
    let (per_period, periods) = cfg.pick((1_000, 12), (2_000, 40));

    let mut table = Table::new(
        "AVG_SWk: Eq. 6 vs drifting-θ simulation (optimum = 1/4, statics = 1/2)",
        &["k", "Eq. 6", "simulated", "±95% CI", "excess over optimum"],
    );
    let ks = [1usize, 3, 5, 9, 15, 31, 63];
    let mut max_gap = 0.0f64;
    let mut monotone = true;
    let mut prev = f64::INFINITY;
    for &k in &ks {
        let analytic = connection::avg_swk(k);
        let sim = estimate_average_cost(
            PolicySpec::SlidingWindow { k },
            model,
            per_period,
            periods,
            estimator,
        );
        max_gap = max_gap.max((sim.mean - analytic).abs());
        if analytic >= prev {
            monotone = false;
        }
        prev = analytic;
        table.row(vec![
            k.to_string(),
            fmt(analytic),
            fmt(sim.mean),
            fmt(sim.ci95),
            pct(analytic / connection::optimal_avg() - 1.0),
        ]);
    }
    table.note("statics for comparison: AVG_ST1 = AVG_ST2 = 0.5 (Eq. 3)");
    exp.push_table(table);

    exp.verdict(
        "Eq. 6 matches drifting-θ simulation (gap < 0.02)",
        max_gap < 0.02,
    );
    exp.verdict("Corollary 1: AVG_SWk strictly decreases in k", monotone);
    exp.verdict(
        "Corollary 1: AVG_SWk < min(AVG_ST1, AVG_ST2) for every k",
        ks.iter().all(|&k| connection::avg_swk(k) < 0.5),
    );
    let r15 = connection::avg_swk(15) / connection::optimal_avg();
    exp.verdict(
        &format!(
            "§2.1: k = 15 comes within 6% of the optimum (measured {})",
            pct(r15 - 1.0)
        ),
        r15 < 1.06,
    );
    let r9 = connection::avg_swk(9) / connection::optimal_avg();
    exp.verdict(
        &format!(
            "§9: k = 9 comes within 10% of the optimum (measured {})",
            pct(r9 - 1.0)
        ),
        r9 < 1.10,
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }
}
