//! E5 — Average expected cost in the message model (§6, Theorems 7 & 10,
//! Eqs. 10 & 12, Corollaries 2–3).
//!
//! Reproduces `AVG_SW1 = (1+2ω)/6`, the Eq. 12 family curves, the
//! Corollary 2 lower bound `1/4 + ω/8`, the Theorem 7 ordering
//! `AVG_SW1 ≤ AVG_ST2 ≤ AVG_ST1`, and the ω = 0.4 crossover of
//! Corollary 3 — each against a drifting-θ simulation.

use crate::table::{fmt, Experiment, Table};
use crate::RunCfg;
use mdr_analysis::message;
use mdr_core::{CostModel, PolicySpec};
use mdr_sim::{estimate_average_cost, EstimatorConfig};

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E5",
        "average expected cost in the message model",
        "§6.1–§6.3, Theorems 7 & 10, Eqs. 10 & 12, Corollaries 2–3",
    );
    let estimator = EstimatorConfig {
        requests_per_run: 0,
        replications: cfg.pick(4, 6),
        seed: 0xE5,
    };
    let (per_period, periods) = cfg.pick((1_000, 24), (2_000, 40));

    let omegas = [0.0, 0.2, 0.4, 0.45, 0.6, 0.8, 1.0];
    let mut table = Table::new(
        "AVG(ω) closed forms (sim = drifting-θ simulation of SW1 and SW15)",
        &[
            "ω",
            "ST1",
            "ST2",
            "SW1 (eq)",
            "SW1 (sim)",
            "SW3",
            "SW15 (eq)",
            "SW15 (sim)",
            "SW39",
            "bound 1/4+ω/8",
        ],
    );
    let mut max_gap = 0.0f64;
    for &omega in &omegas {
        let model = CostModel::message(omega);
        let sw1_sim = estimate_average_cost(
            PolicySpec::SlidingWindow { k: 1 },
            model,
            per_period,
            periods,
            estimator,
        );
        let sw15_sim = estimate_average_cost(
            PolicySpec::SlidingWindow { k: 15 },
            model,
            per_period,
            periods,
            estimator,
        );
        max_gap = max_gap
            .max((sw1_sim.mean - message::avg_sw1(omega)).abs())
            .max((sw15_sim.mean - message::avg_swk(15, omega)).abs());
        table.row(vec![
            fmt(omega),
            fmt(message::avg_st1(omega)),
            fmt(message::avg_st2(omega)),
            fmt(message::avg_sw1(omega)),
            fmt(sw1_sim.mean),
            fmt(message::avg_swk(3, omega)),
            fmt(message::avg_swk(15, omega)),
            fmt(sw15_sim.mean),
            fmt(message::avg_swk(39, omega)),
            fmt(message::avg_swk_lower_bound(omega)),
        ]);
    }
    exp.push_table(table);

    // The AVG estimator's dominant error is the finite number of θ draws
    // (not the per-period request count); the tolerance reflects that.
    exp.verdict(
        "Eq. 10 / Eq. 12 match drifting-θ simulation (gap < 0.025)",
        max_gap < 0.025,
    );
    exp.verdict(
        "Theorem 7: AVG_SW1 ≤ AVG_ST2 ≤ AVG_ST1 for every ω",
        omegas.iter().all(|&o| {
            message::avg_sw1(o) <= message::avg_st2(o) + 1e-12
                && message::avg_st2(o) <= message::avg_st1(o) + 1e-12
        }),
    );
    exp.verdict(
        "Corollary 2: AVG_SWk decreases in k and stays above 1/4 + ω/8",
        omegas.iter().all(|&o| {
            let mut prev = f64::INFINITY;
            (3usize..=99).step_by(2).all(|k| {
                let v = message::avg_swk(k, o);
                let ok = v < prev && v > message::avg_swk_lower_bound(o);
                prev = v;
                ok
            })
        }),
    );
    exp.verdict(
        "Corollary 3: at ω ≤ 0.4 SW1 beats every SWk (k > 1); above 0.4 large k wins",
        (3usize..=151)
            .step_by(2)
            .all(|k| message::avg_swk(k, 0.4) > message::avg_sw1(0.4))
            && message::avg_swk(39, 0.45) <= message::avg_sw1(0.45)
            && message::avg_swk(7, 0.8) <= message::avg_sw1(0.8),
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }
}
