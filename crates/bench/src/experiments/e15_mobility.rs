//! E15 — **Extension**: cellular mobility.
//!
//! §1 sets up the cellular architecture and §3 fixes the key modeling
//! assumption: "The stationary computer is some node in the stationary
//! network that is fixed for a given data item, and it does not change when
//! the mobile computer moves from cell to cell." This experiment makes the
//! assumption executable: the MC roams across cells with different radio
//! latencies, and the run shows that mobility changes *when* responses
//! arrive (latency, makespan) but never *what* the requests cost — the
//! paper's whole analysis is mobility-invariant.

use crate::table::{fmt, Experiment, Table};
use crate::RunCfg;
use mdr_core::{approx_eq, CostModel, PolicySpec};
use mdr_sim::{PoissonWorkload, RunLimit, SimBuilder, SimReport, Simulation};

fn roam(spec: PolicySpec, cells: Option<Vec<f64>>, n: usize) -> SimReport {
    let Ok(builder) = SimBuilder::new(spec).and_then(|b| b.latency(0.02)) else {
        unreachable!("experiment policies are valid by construction")
    };
    let builder = if let Some(extra) = cells {
        let Ok(roaming) = builder.mobility(extra, 0.5, 0xE15) else {
            unreachable!("experiment cell grid is valid by construction")
        };
        roaming
    } else {
        builder
    };
    let mut sim = Simulation::new(builder.build());
    let mut workload = PoissonWorkload::from_theta(1.0, 0.4, 0xE15);
    sim.run(&mut workload, RunLimit::Requests(n))
}

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E15",
        "cellular mobility — cost invariance under roaming (extension)",
        "§1/§3: the SC is fixed per item; moving between cells must not change the bill",
    );
    let n = cfg.pick(8_000, 40_000);
    // Downtown microcell, suburban cell, rural macrocell.
    let cells = vec![0.0, 0.05, 0.2];
    let policies = [
        PolicySpec::St1,
        PolicySpec::SlidingWindow { k: 1 },
        PolicySpec::SlidingWindow { k: 9 },
        PolicySpec::T2 { m: 5 },
    ];

    let mut table = Table::new(
        "stationary MC vs roaming MC (3 cells, exponential dwell, same workload seed)",
        &[
            "policy",
            "cost fixed",
            "cost roaming",
            "latency fixed",
            "latency roaming",
            "handoffs",
        ],
    );
    let mut costs_equal = true;
    let mut latency_grows = true;
    let mut handoffs_happen = true;
    let model = CostModel::message(0.5);
    for &spec in &policies {
        let fixed = roam(spec, None, n);
        let roaming = roam(spec, Some(cells.clone()), n);
        costs_equal &= fixed.counts == roaming.counts
            && approx_eq(fixed.cost(model), roaming.cost(model))
            && approx_eq(
                fixed.cost(CostModel::Connection),
                roaming.cost(CostModel::Connection),
            );
        latency_grows &= roaming.mean_read_latency > fixed.mean_read_latency;
        handoffs_happen &= roaming.handoffs > 50 && fixed.handoffs == 0;
        table.row(vec![
            spec.to_string(),
            fmt(fixed.cost_per_request(model)),
            fmt(roaming.cost_per_request(model)),
            fmt(fixed.mean_read_latency),
            fmt(roaming.mean_read_latency),
            roaming.handoffs.to_string(),
        ]);
    }
    table.note("identical workload seed ⇒ identical serialized request order in both runs");
    exp.push_table(table);

    exp.verdict(
        "§3 assumption holds operationally: roaming never changes any policy's cost or actions",
        costs_equal,
    );
    exp.verdict(
        "roaming does change timing: mean read latency rises with slow cells",
        latency_grows,
    );
    exp.verdict(
        "the movement process actually roams (handoffs observed, protocol oracle-verified)",
        handoffs_happen,
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }
}
