//! E7 — Worst case in the message model (§6.4, Theorems 11 & 12).
//!
//! Reproduces SW1's tight `(1+2ω)` factor and SWk's tight
//! `[(1+ω/2)(k+1)+ω]` factor: adversarial cycles attain them, exhaustive
//! and random searches never exceed them, and the §2.2 summary trade-off —
//! worst case improves as k shrinks while AVG improves as k grows — is
//! checked end to end.

use crate::table::{fmt, Experiment, Table};
use crate::RunCfg;
use mdr_adversary::{cycle_ratio, generators, measure, verify_factor};
use mdr_analysis::competitive::{sw1_message_factor, swk_message_factor};
use mdr_analysis::message;
use mdr_core::{approx_eq, CostModel, PolicySpec, Schedule};

/// The measured competitive ratio; every schedule in this experiment is
/// built so OPT pays a positive cost.
fn ratio_of(r: &mdr_adversary::RatioReport) -> f64 {
    let Some(ratio) = r.ratio else {
        panic!("OPT pays on this schedule");
    };
    ratio
}

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E7",
        "competitiveness in the message model",
        "§6.4, Theorems 11–12; §2.2 trade-off summary",
    );
    let cycles = cfg.pick(150, 500);
    let search_len = cfg.pick(11, 14);

    // --- SW1 (Theorem 11) ---
    let mut t11 = Table::new(
        "SW1: claimed (1 + 2ω) vs measured",
        &["ω", "claimed", "cycle ratio", "exhaustive bound holds"],
    );
    let mut sw1_tight = true;
    let mut sw1_bounded = true;
    for &omega in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let model = CostModel::message(omega);
        let claimed = sw1_message_factor(omega);
        let warmup = Schedule::all_reads(1);
        let Ok(cycle) = "wr".parse::<Schedule>() else {
            unreachable!("static schedule literal");
        };
        let measured = ratio_of(&cycle_ratio(
            PolicySpec::SlidingWindow { k: 1 },
            &warmup,
            &cycle,
            cycles,
            model,
        ));
        let holds = verify_factor(
            PolicySpec::SlidingWindow { k: 1 },
            model,
            claimed,
            1.0 + omega,
            search_len,
        )
        .is_ok();
        sw1_tight &= measured > claimed - 0.05;
        sw1_bounded &= holds;
        t11.row(vec![
            fmt(omega),
            fmt(claimed),
            fmt(measured),
            holds.to_string(),
        ]);
    }
    exp.push_table(t11);

    // --- SWk, k > 1 (Theorem 12) ---
    let mut t12 = Table::new(
        "SWk (k > 1): claimed (1 + ω/2)(k+1) + ω vs measured",
        &["k", "ω", "claimed", "cycle ratio", "exhaustive bound holds"],
    );
    let mut swk_tight = true;
    let mut swk_bounded = true;
    for &(k, omega) in &[
        (3usize, 0.25),
        (3, 0.5),
        (3, 1.0),
        (5, 0.5),
        (7, 0.75),
        (9, 1.0),
    ] {
        let model = CostModel::message(omega);
        let claimed = swk_message_factor(k, omega);
        let warmup = Schedule::all_reads(k);
        let half = k.div_ceil(2);
        let cycle = Schedule::write_read_cycles(half, half, 1);
        let measured = ratio_of(&cycle_ratio(
            PolicySpec::SlidingWindow { k },
            &warmup,
            &cycle,
            cycles,
            model,
        ));
        let holds = verify_factor(
            PolicySpec::SlidingWindow { k },
            model,
            claimed,
            (k + 1) as f64 * (1.0 + omega),
            search_len,
        )
        .is_ok();
        // Convergence is from below at rate O(1/cycles) (the warm-up cost
        // amortizes); accept 1.5% relative shortfall.
        swk_tight &= measured > claimed * 0.985;
        swk_bounded &= holds;
        t12.row(vec![
            k.to_string(),
            fmt(omega),
            fmt(claimed),
            fmt(measured),
            holds.to_string(),
        ]);
    }
    exp.push_table(t12);

    // --- statics not competitive in the message model either (§6.4) ---
    let n = 1_000;
    let st1 = measure(
        PolicySpec::St1,
        &generators::static_punisher(PolicySpec::St1, n),
        CostModel::message(0.5),
    );
    let st2 = measure(
        PolicySpec::St2,
        &generators::static_punisher(PolicySpec::St2, n),
        CostModel::message(0.5),
    );
    exp.verdict(
        "§6.4: statics are not competitive in the message model",
        ratio_of(&st1) > 500.0 && approx_eq(st2.opt_cost, 0.0) && st2.policy_cost > 0.0,
    );

    // --- §2.2 trade-off: worst case ↓ with smaller k, AVG ↓ with larger k ---
    let omega = 0.6;
    let factors: Vec<f64> = [3usize, 5, 7, 9]
        .iter()
        .map(|&k| swk_message_factor(k, omega))
        .collect();
    let avgs: Vec<f64> = [3usize, 5, 7, 9]
        .iter()
        .map(|&k| message::avg_swk(k, omega))
        .collect();
    exp.verdict(
        "§2.2 trade-off: competitiveness worsens while AVG improves as k grows",
        factors.windows(2).all(|w| w[0] < w[1]) && avgs.windows(2).all(|w| w[0] > w[1]),
    );

    exp.verdict(
        "Theorem 11 tightness: SW1 cycle ratios approach 1 + 2ω",
        sw1_tight,
    );
    exp.verdict("Theorem 11 upper bound holds exhaustively", sw1_bounded);
    exp.verdict(
        "Theorem 12 tightness: SWk cycle ratios approach (1 + ω/2)(k+1) + ω",
        swk_tight,
    );
    exp.verdict("Theorem 12 upper bound holds exhaustively", swk_bounded);
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }
}
