//! E19 — **Extension**: per-cell vs broadcast invalidation under mobility.
//!
//! §2's protocols assume one support station owns the sliding window for
//! the whole run. The topology layer drops that assumption: a seed-driven
//! mobility plan migrates the MC between cells mid-run, and a three-way
//! epoch-fenced handoff (request → state transfer → commit) migrates the
//! window ownership with it. Each commit must also invalidate the stale
//! replicas left behind at non-owner cells, and there are two ways to
//! bill that: *per-cell* (one invalidation message per stale replica) or
//! *broadcast* (one message per commit round, regardless of fan-out).
//!
//! The sweep crosses mobility rate × backbone loss × invalidation mode
//! (the `e19` preset) and asserts the robustness claims: (a) the
//! multi-cell sweep — migrations, handoff legs, invalidation rounds and
//! all — is *byte-identical* between the serial path and a 4-thread
//! pool; (b) the layer is strictly opt-in — an installed-but-inert
//! mobility plan reproduces the single-cell cell counter for counter;
//! (c) the invalidation economy is exact at every cell — per-cell bills
//! one message per invalidated replica, broadcast bills one per round
//! and a round never exceeds its replica count; (d) the handoff billing
//! identity holds — every billed leg is settled by a commit (exactly
//! three per committed handoff), written off by an abort, or still in
//! the single in-flight handoff; (e) mobility pressure scales with the
//! migration rate, and a lossy backbone both aborts more handoffs and
//! forces stale reads out of the degradation path.

use crate::sweep::{e19_grid, serial_parallel_verdict, summary_table};
use crate::table::{fmt_opt, Experiment, Table};
use crate::RunCfg;
use mdr_sim::SimReport;

/// Topology-axis width of the `e19` preset grid (single cell, inert
/// plan, two per-cell mobility points, a lossy per-cell point, and the
/// broadcast twins of the two rate-0.8 points).
const TOPO_AXIS: usize = 7;

/// The handoff billing identity at run termination: every billed leg is
/// settled (exactly three per committed handoff), written off by an
/// abort, or part of the at-most-one handoff still in flight.
fn handoff_identity(r: &SimReport) -> bool {
    let accounted = r.settled_handoff_messages + r.aborted_handoff_messages;
    r.settled_handoff_messages == 3 * r.handoffs_committed
        && r.handoff_messages >= accounted
        && r.handoff_messages - accounted <= 3
}

/// The invalidation economy at run termination: per-cell mode bills one
/// message per invalidated replica; broadcast mode bills one message per
/// commit round, and a round never invalidates fewer than one replica.
fn invalidation_identity(r: &SimReport, broadcast: bool) -> bool {
    if broadcast {
        r.invalidation_messages == r.invalidation_rounds
            && r.invalidation_rounds <= r.replicas_invalidated
    } else {
        r.invalidation_messages == r.replicas_invalidated
    }
}

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E19",
        "multi-cell mobility — per-cell vs broadcast invalidation × loss sweep (extension)",
        "migrates window ownership between cells and prices the stale-replica invalidation",
    );
    let grid = e19_grid(cfg);
    let n = cfg.pick(2_000, 10_000);
    let (report, parallel_identical) = serial_parallel_verdict(&grid);

    let mut table = Table::new(
        format!("cost/request at θ = 0.4, ω = 0.5, vs topology point (n = {n})"),
        &[
            "policy",
            "single",
            "pc r=.2",
            "pc r=.8",
            "pc lossy",
            "bc r=.8",
            "bc lossy",
            "migr @.8",
            "inv pc@.8",
            "inv bc@.8",
        ],
    );
    let mut opt_in = true;
    let mut economy = true;
    let mut billing = true;
    let mut pressure = true;
    let mut degradation = true;
    for cells in report.cells.chunks(TOPO_AXIS) {
        let baseline = &cells[0];
        assert_eq!(baseline.topology_index, 0);
        // (b) strictly opt-in: the single-cell baseline bills no mobility
        // traffic at all, and the inert plan reproduces it exactly — the
        // grid pairs workload seeds across the topology axis, so this is
        // an exact, counter-for-counter claim.
        opt_in &= baseline.report.migrations == 0
            && baseline.report.handoff_messages == 0
            && baseline.report.invalidation_messages == 0
            && baseline.report.stale_reads == 0
            && cells[1].report == baseline.report
            && cells[1].cost_per_request == baseline.cost_per_request;
        for (topology_index, cell) in cells.iter().enumerate() {
            // (c), (d) the two billing identities hold at every cell; the
            // broadcast twins sit at axis indexes 5 and 6.
            economy &= invalidation_identity(&cell.report, topology_index >= 5);
            billing &= handoff_identity(&cell.report);
        }
        // (e) mobility pressure scales with the migration rate, every
        // mobile cell commits handoffs, and the lossy backbone aborts
        // more handoffs than its lossless twin at the same rate.
        pressure &= cells[2].report.migrations < cells[3].report.migrations
            && cells
                .iter()
                .skip(2)
                .all(|c| c.report.migrations > 0 && c.report.handoffs_committed > 0)
            && cells[4].report.handoffs_aborted > cells[3].report.handoffs_aborted
            && cells[6].report.handoffs_aborted > cells[5].report.handoffs_aborted;
        // Stuck handoffs on the lossy backbone push reads through the
        // degradation path: served stale from the origin cell, never
        // dropped on the floor.
        degradation &= cells[4].report.stale_reads > 0 && cells[6].report.stale_reads > 0;
        table.row(vec![
            baseline.policy.to_string(),
            fmt_opt(baseline.cost_per_request),
            fmt_opt(cells[2].cost_per_request),
            fmt_opt(cells[3].cost_per_request),
            fmt_opt(cells[4].cost_per_request),
            fmt_opt(cells[5].cost_per_request),
            fmt_opt(cells[6].cost_per_request),
            cells[3].report.migrations.to_string(),
            cells[3].report.invalidation_messages.to_string(),
            cells[5].report.invalidation_messages.to_string(),
        ]);
    }
    table.note("pc = per-cell invalidation, bc = broadcast; r = migration rate, lossy = backbone loss 0.2; 5 cells, handoff deadline 1.0");
    exp.push_table(table);
    exp.push_table(summary_table(
        "sweep summary (grouped by policy × topology point)",
        &report.summary,
    ));

    exp.verdict(
        "the multi-cell sweep is deterministic: 4-thread run is byte-identical to serial (cells, summary, digest)",
        parallel_identical,
    );
    exp.verdict(
        "the topology layer is strictly opt-in: an inert mobility plan reproduces the single-cell cell exactly",
        opt_in,
    );
    exp.verdict(
        "the invalidation economy is exact: per-cell bills per replica, broadcast bills per round (≤ replicas)",
        economy,
    );
    exp.verdict(
        "the handoff billing identity holds at every cell (3 legs per commit + write-offs + ≤1 in flight)",
        billing,
    );
    exp.verdict(
        "mobility pressure scales with the migration rate and a lossy backbone aborts more handoffs",
        pressure,
    );
    exp.verdict(
        "stuck handoffs degrade gracefully: lossy cells serve stale reads instead of dropping them",
        degradation,
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e19_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }
}
