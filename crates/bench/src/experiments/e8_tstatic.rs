//! E8 — The competitive-ized static methods T1m / T2m (§7.1, §9).
//!
//! Reproduces: the expected-cost formula
//! `EXP_T1m = (1−θ) + (1−θ)^m(2θ−1)` against the distributed simulator;
//! the claim that T1m has a (slightly) lower expected cost than SWm for
//! every θ > 0.5; the (m+1)-competitiveness of both T policies; and the §9
//! worked number (m = 15, θ = 0.75 ⇒ within 4% of the optimum).

use crate::table::{fmt, pct, Experiment, Table};
use crate::RunCfg;
use mdr_adversary::{cycle_ratio, generators, verify_factor};
use mdr_analysis::connection;
use mdr_core::{CostModel, PolicySpec, Schedule};
use mdr_sim::{estimate_expected_cost, EstimatorConfig};

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E8",
        "T1m / T2m — competitive statics",
        "§7.1 (formula, (m+1)-competitiveness), §9 (m = 15, θ = 0.75 within 4%)",
    );
    let model = CostModel::Connection;
    let estimator = EstimatorConfig {
        requests_per_run: cfg.pick(5_000, 25_000),
        replications: cfg.pick(4, 8),
        seed: 0xE8,
    };

    // --- expected cost: formula vs simulation vs SWm ---
    let m = 5usize;
    let mut table = Table::new(
        format!("EXP at m = {m}: paper formula vs simulation, compared with SW{m} and ST1"),
        &[
            "θ",
            "T1m (formula)",
            "T1m (sim)",
            "SWm (formula)",
            "ST1",
            "T1m < SWm",
        ],
    );
    let mut max_gap = 0.0f64;
    let mut beats_swm = true;
    for &theta in &[0.55, 0.6, 0.7, 0.8, 0.9] {
        let spec = PolicySpec::T1 { m };
        let analytic = connection::exp_t1(m, theta);
        let sim = estimate_expected_cost(spec, model, theta, estimator);
        let swm = connection::exp_swk(m, theta);
        max_gap = max_gap.max((sim.mean - analytic).abs());
        beats_swm &= analytic < swm;
        table.row(vec![
            fmt(theta),
            fmt(analytic),
            fmt(sim.mean),
            fmt(swm),
            fmt(connection::exp_st1(theta)),
            (analytic < swm).to_string(),
        ]);
    }
    exp.push_table(table);

    // --- competitiveness ---
    let cycles = cfg.pick(150, 400);
    let search_len = cfg.pick(11, 13);
    let mut comp = Table::new(
        "T policies vs OPT: claimed m + 1 against measured",
        &["policy", "claimed", "cycle ratio", "exhaustive bound holds"],
    );
    let mut tight = true;
    let mut bounded = true;
    for m in [2usize, 4, 8] {
        for (spec, cycle) in [
            (PolicySpec::T1 { m }, generators::t1_adversarial(m, 1)),
            (PolicySpec::T2 { m }, generators::t2_adversarial(m, 1)),
        ] {
            let claimed = (m + 1) as f64;
            let Some(measured) = cycle_ratio(spec, &Schedule::new(), &cycle, cycles, model).ratio
            else {
                panic!("OPT pays on this cycle");
            };
            let holds = verify_factor(spec, model, claimed, claimed, search_len).is_ok();
            tight &= measured > claimed - 0.1;
            bounded &= holds;
            comp.row(vec![
                spec.to_string(),
                fmt(claimed),
                fmt(measured),
                holds.to_string(),
            ]);
        }
    }
    exp.push_table(comp);

    // --- the §9 worked number ---
    let worked = connection::exp_t1(15, 0.75) / connection::optimal_exp(0.75);
    let mut worked_table = Table::new(
        "§9 worked example: T1(15) at θ = 0.75",
        &["EXP_T1(15)(0.75)", "optimum min(θ,1−θ)", "excess"],
    );
    worked_table.row(vec![
        fmt(connection::exp_t1(15, 0.75)),
        fmt(connection::optimal_exp(0.75)),
        pct(worked - 1.0),
    ]);
    worked_table.note(
        "paper: \"for m=15 and θ=0.75 the expected cost … will come within 4% of the optimum\"",
    );
    exp.push_table(worked_table);

    exp.verdict(
        "§7.1 T1m expected-cost formula matches simulation (gap < 0.02)",
        max_gap < 0.02,
    );
    exp.verdict(
        "§7.1: T1m has lower expected cost than SWm for θ > 0.5",
        beats_swm,
    );
    exp.verdict("§7.1: T1m and T2m cycle ratios approach m + 1", tight);
    exp.verdict(
        "(m+1) upper bound holds exhaustively for both T policies",
        bounded,
    );
    exp.verdict(
        &format!(
            "§9: T1(15) at θ = 0.75 within 4% of optimum (measured {})",
            pct(worked - 1.0)
        ),
        worked < 1.04,
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }
}
