//! E14 — **Extension ablation**: joint expected-cost optimization vs
//! independent per-object windows (§7.2's central design point).
//!
//! §7.2 insists on tracking the frequencies of *joint* operation classes
//! and minimizing the joint expected cost, rather than running the
//! single-object window independently per object. This ablation shows why:
//! a joint read pays unless **all** touched objects are replicated while a
//! joint write pays if **any** is, so marginal (per-object) read/write
//! counts double-count shared reads and miss the write coupling. On the
//! crafted profile `r{x,y}: 5, w{x}: 4, w{y}: 4` the marginal rule
//! replicates both objects (each sees 5 reads vs 4 writes) and pays
//! 8/13 per operation, while the joint optimum replicates nothing and pays
//! 5/13. On decoupled profiles the two agree — the coupling is the whole
//! story.

use crate::table::{fmt, Experiment, Table};
use crate::RunCfg;
use mdr_multi::{
    Allocation, ObjectSet, Operation, OperationProfile, PerObjectWindows, WindowedAllocator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Comparison {
    per_object_cost: f64,
    joint_cost: f64,
    optimal_cost: f64,
    per_object_alloc: Allocation,
    joint_alloc: Allocation,
}

fn compare(profile: &OperationProfile, ops: usize, seed: u64) -> Comparison {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut per_object = PerObjectWindows::new(profile.n_objects(), 31);
    let mut joint = WindowedAllocator::new(profile.n_objects(), 300, 25);
    let (optimal, _) = profile.optimal_allocation();
    let (mut pc, mut jc, mut oc) = (0.0, 0.0, 0.0);
    for _ in 0..ops {
        let op = profile.sample(&mut rng);
        pc += per_object.on_operation(op);
        jc += joint.on_operation(op);
        oc += optimal.connection_cost(op);
    }
    Comparison {
        per_object_cost: pc / ops as f64,
        joint_cost: jc / ops as f64,
        optimal_cost: oc / ops as f64,
        per_object_alloc: per_object.allocation(),
        joint_alloc: joint.current_allocation(),
    }
}

/// Runs the experiment.
pub fn run(cfg: RunCfg) -> Experiment {
    let mut exp = Experiment::new(
        "E14",
        "ablation — joint optimization vs independent per-object windows",
        "§7.2's design choice: track joint classes, minimize joint expected cost",
    );
    let ops = cfg.pick(30_000, 120_000);

    // The coupled profile where marginal reasoning fails.
    let coupled = OperationProfile::new(
        2,
        vec![
            (Operation::read(ObjectSet::from_objects(&[0, 1])), 5.0),
            (Operation::write(ObjectSet::singleton(0)), 4.0),
            (Operation::write(ObjectSet::singleton(1)), 4.0),
        ],
    );
    // A decoupled profile (no joint classes) where the two must agree.
    let decoupled = OperationProfile::two_objects(8.0, 1.0, 0.0, 1.0, 8.0, 0.0);

    let mut table = Table::new(
        "per-operation connection cost (simulated)",
        &[
            "profile",
            "per-object windows",
            "joint windowed",
            "optimal static",
            "per-obj alloc",
            "joint alloc",
        ],
    );
    let c = compare(&coupled, ops, 0xE14);
    table.row(vec![
        "coupled: r{x,y}:5 w{x}:4 w{y}:4".to_owned(),
        fmt(c.per_object_cost),
        fmt(c.joint_cost),
        fmt(c.optimal_cost),
        c.per_object_alloc.0.to_string(),
        c.joint_alloc.0.to_string(),
    ]);
    let d = compare(&decoupled, ops, 0xE14 + 1);
    table.row(vec![
        "decoupled: x read-heavy, y write-heavy".to_owned(),
        fmt(d.per_object_cost),
        fmt(d.joint_cost),
        fmt(d.optimal_cost),
        d.per_object_alloc.0.to_string(),
        d.joint_alloc.0.to_string(),
    ]);
    table.note("analytic costs on the coupled profile: marginal rule 8/13 ≈ 0.615, joint optimum 5/13 ≈ 0.385");
    exp.push_table(table);

    // The per-object windows keep fluctuating (each object's read fraction
    // is 5/9), so judge them by cost, not by the snapshot allocation.
    exp.verdict(
        "coupled profile: the marginal rule pays ≈ 8/13 (it mostly holds the wrong full allocation)",
        (c.per_object_cost - 8.0 / 13.0).abs() < 0.05,
    );
    exp.verdict(
        "coupled profile: the joint allocator finds the empty optimum and pays ≈ 5/13",
        c.joint_alloc == Allocation::EMPTY && (c.joint_cost - 5.0 / 13.0).abs() < 0.02,
    );
    exp.verdict(
        "joint optimization saves ≥ 35% over per-object windows on the coupled profile",
        c.joint_cost < 0.65 * c.per_object_cost,
    );
    exp.verdict(
        "decoupled profile: both methods converge to the same (optimal) allocation",
        d.per_object_alloc == d.joint_alloc && (d.joint_cost - d.optimal_cost).abs() < 0.02,
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_reproduces_all_claims() {
        let exp = run(RunCfg { fast: true });
        assert!(exp.all_reproduced(), "{}", exp.render());
    }
}
