//! One module per reproduced paper artifact. See DESIGN.md §4 for the
//! experiment ↔ paper index.

pub mod e10_conclusion_table;
pub mod e11_adaptive_ablation;
pub mod e12_adaptation_latency;
pub mod e13_lossy_link;
pub mod e14_joint_vs_per_object;
pub mod e15_mobility;
pub mod e16_recompute_overhead;
pub mod e17_fault_sweep;
pub mod e18_arq_sweep;
pub mod e19_invalidation;
pub mod e1_connection_exp;
pub mod e2_connection_avg;
pub mod e3_connection_competitive;
pub mod e4_message_dominance;
pub mod e5_message_avg;
pub mod e6_window_threshold;
pub mod e7_message_competitive;
pub mod e8_tstatic;
pub mod e9_multi_object;

use crate::table::Experiment;
use crate::RunCfg;

/// The experiment ids, in presentation order.
pub const ALL_IDS: [&str; 19] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19",
];

/// Runs one experiment by id (`"e1"`…`"e19"`, case-insensitive).
pub fn run_one(id: &str, cfg: RunCfg) -> Option<Experiment> {
    Some(match id.to_ascii_lowercase().as_str() {
        "e1" => e1_connection_exp::run(cfg),
        "e2" => e2_connection_avg::run(cfg),
        "e3" => e3_connection_competitive::run(cfg),
        "e4" => e4_message_dominance::run(cfg),
        "e5" => e5_message_avg::run(cfg),
        "e6" => e6_window_threshold::run(cfg),
        "e7" => e7_message_competitive::run(cfg),
        "e8" => e8_tstatic::run(cfg),
        "e9" => e9_multi_object::run(cfg),
        "e10" => e10_conclusion_table::run(cfg),
        "e11" => e11_adaptive_ablation::run(cfg),
        "e12" => e12_adaptation_latency::run(cfg),
        "e13" => e13_lossy_link::run(cfg),
        "e14" => e14_joint_vs_per_object::run(cfg),
        "e15" => e15_mobility::run(cfg),
        "e16" => e16_recompute_overhead::run(cfg),
        "e17" => e17_fault_sweep::run(cfg),
        "e18" => e18_arq_sweep::run(cfg),
        "e19" => e19_invalidation::run(cfg),
        _ => return None,
    })
}

/// Runs every experiment, fanning out across the sweep engine's thread
/// pool (each experiment is self-contained and independently seeded, and
/// [`parallel_map`](mdr_sim::sweep::parallel_map) returns them in
/// presentation order whatever the scheduling).
pub fn run_all(cfg: RunCfg) -> Vec<Experiment> {
    mdr_sim::sweep::parallel_map(ALL_IDS.len(), 0, 1, |i| {
        let Some(done) = run_one(ALL_IDS[i], cfg) else {
            unreachable!("every id in ALL_IDS dispatches");
        };
        done
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_dispatches_every_id() {
        // Only verify dispatch wiring here (cheap id); the per-experiment
        // tests run each one for real.
        assert!(run_one("E10", RunCfg { fast: true }).is_some());
        assert!(run_one("bogus", RunCfg { fast: true }).is_none());
    }
}
