//! # mdr-bench — experiment harness for the SIGMOD 1994 reproduction
//!
//! One module per paper artifact (figures 1–2 and every quantitative claim
//! of §5–§7/§9), each producing paper-vs-measured [`Experiment`] tables.
//! The `report` binary prints them:
//!
//! ```text
//! cargo run -p mdr-bench --release --bin report            # everything
//! cargo run -p mdr-bench --release --bin report -- --only e4
//! cargo run -p mdr-bench --release --bin report -- --fast  # CI-sized runs
//! cargo run -p mdr-bench --release --bin report -- --json  # machine readable
//! ```
//!
//! Criterion performance benches live in `benches/` (`cargo bench`).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod snapshot;
pub mod sweep;
pub mod table;

pub use snapshot::{BenchSnapshot, RegressionVerdict};
pub use table::{Experiment, Table};

/// Global knob for experiment sizes: `fast` shrinks Monte-Carlo sizes to
/// CI scale, full mode uses publication-scale runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunCfg {
    /// Use reduced sample sizes.
    pub fast: bool,
}

impl RunCfg {
    /// Picks `fast` or `full` according to the mode.
    pub fn pick<T>(self, fast: T, full: T) -> T {
        if self.fast {
            fast
        } else {
            full
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_mode() {
        assert_eq!(RunCfg { fast: true }.pick(1, 2), 1);
        assert_eq!(RunCfg { fast: false }.pick(1, 2), 2);
    }
}
