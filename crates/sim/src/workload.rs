//! Arrival processes: who asks for the data item, and when.
//!
//! The paper's probabilistic model (§3): reads are issued at the MC
//! according to a Poisson process with rate λ_r, writes at the SC with rate
//! λ_w, independently. Because the merged process is Poisson with rate
//! λ_r + λ_w and each event is independently a write with probability
//! `θ = λ_w / (λ_r + λ_w)`, a workload is fully described by `(rate, θ)`.
//!
//! For the *average expected cost* experiments the paper lets θ drift: time
//! splits into periods, each with its own (λ_r, λ_w) drawn so that θ is
//! uniform on [0, 1] — [`DriftingPoisson`] models exactly that.

use crate::perf::BatchedF64;
use mdr_core::{Request, Schedule};

/// A timestamped relevant request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Simulation time of issue (reads at the MC, writes at the SC).
    pub time: f64,
    /// The request.
    pub request: Request,
}

/// A source of timestamped requests. Processes are infinite unless
/// documented otherwise; the simulation imposes the stopping rule.
pub trait ArrivalProcess {
    /// The next arrival, or `None` if the process is exhausted.
    fn next_arrival(&mut self) -> Option<Arrival>;
}

/// Draws an Exp(rate) inter-arrival time by inverse CDF.
fn exp_sample(rng: &mut BatchedF64, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    // 1 − u ∈ (0, 1]; ln of it is finite and ≤ 0.
    let u: f64 = rng.draw();
    -f64::ln(1.0 - u) / rate
}

/// The paper's stationary workload: merged Poisson reads and writes.
#[derive(Debug)]
pub struct PoissonWorkload {
    rng: BatchedF64,
    total_rate: f64,
    theta: f64,
    clock: f64,
}

impl PoissonWorkload {
    /// Creates the merged process from the two rates (λ_r reads/unit time at
    /// the MC, λ_w writes/unit time at the SC).
    ///
    /// # Panics
    ///
    /// Panics unless `lambda_r + lambda_w > 0` and both are non-negative.
    pub fn from_rates(lambda_r: f64, lambda_w: f64, seed: u64) -> Self {
        assert!(
            lambda_r >= 0.0 && lambda_w >= 0.0,
            "rates must be non-negative"
        );
        let total = lambda_r + lambda_w;
        assert!(total > 0.0, "at least one rate must be positive");
        PoissonWorkload {
            rng: BatchedF64::new(seed),
            total_rate: total,
            theta: lambda_w / total,
            clock: 0.0,
        }
    }

    /// Creates the process from the merged rate and the write fraction θ —
    /// the `(rate, θ)` parameterization used throughout the analysis.
    pub fn from_theta(rate: f64, theta: f64, seed: u64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        assert!((0.0..=1.0).contains(&theta), "θ out of range: {theta}");
        PoissonWorkload {
            rng: BatchedF64::new(seed),
            total_rate: rate,
            theta,
            clock: 0.0,
        }
    }

    /// The write fraction θ of this workload.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

impl ArrivalProcess for PoissonWorkload {
    fn next_arrival(&mut self) -> Option<Arrival> {
        self.clock += exp_sample(&mut self.rng, self.total_rate);
        let request = if self.rng.draw() < self.theta {
            Request::Write
        } else {
            Request::Read
        };
        Some(Arrival {
            time: self.clock,
            request,
        })
    }
}

/// One period of a drifting workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Period {
    /// Number of requests in the period.
    pub requests: usize,
    /// Write fraction during the period.
    pub theta: f64,
    /// Merged arrival rate during the period.
    pub rate: f64,
}

/// The AVG-measure workload (§3, discussion below Eq. 1): time is divided
/// into periods; within period *i* requests are Poisson with write fraction
/// θ_i, and each θ_i is an independent uniform draw from [0, 1].
#[derive(Debug)]
pub struct DriftingPoisson {
    rng: BatchedF64,
    rate: f64,
    requests_per_period: usize,
    periods_left: Option<usize>,
    in_period: usize,
    theta: f64,
    clock: f64,
    /// Realized θ draws, oldest first (for reporting).
    thetas: Vec<f64>,
}

impl DriftingPoisson {
    /// Creates the drifting workload. `periods = None` makes it infinite.
    pub fn new(rate: f64, requests_per_period: usize, periods: Option<usize>, seed: u64) -> Self {
        assert!(rate > 0.0);
        assert!(requests_per_period > 0);
        DriftingPoisson {
            rng: BatchedF64::new(seed),
            rate,
            requests_per_period,
            periods_left: periods,
            in_period: 0,
            theta: f64::NAN,
            clock: 0.0,
            thetas: Vec::new(),
        }
    }

    /// The θ values drawn so far.
    pub fn thetas(&self) -> &[f64] {
        &self.thetas
    }

    /// Summaries of the periods generated so far.
    pub fn periods(&self) -> Vec<Period> {
        self.thetas
            .iter()
            .map(|&theta| Period {
                requests: self.requests_per_period,
                theta,
                rate: self.rate,
            })
            .collect()
    }
}

impl ArrivalProcess for DriftingPoisson {
    fn next_arrival(&mut self) -> Option<Arrival> {
        if self.in_period == 0 {
            match &mut self.periods_left {
                Some(0) => return None,
                Some(n) => *n -= 1,
                None => {}
            }
            self.theta = self.rng.draw();
            self.thetas.push(self.theta);
            self.in_period = self.requests_per_period;
        }
        self.in_period -= 1;
        self.clock += exp_sample(&mut self.rng, self.rate);
        let request = if self.rng.draw() < self.theta {
            Request::Write
        } else {
            Request::Read
        };
        Some(Arrival {
            time: self.clock,
            request,
        })
    }
}

/// Replays a fixed [`Schedule`] with constant spacing — used to feed
/// hand-crafted (e.g. adversarial) schedules through the full distributed
/// protocol.
#[derive(Debug)]
pub struct TraceWorkload {
    schedule: Schedule,
    spacing: f64,
    next_index: usize,
}

impl TraceWorkload {
    /// Creates the trace with `spacing` time units between requests.
    pub fn new(schedule: Schedule, spacing: f64) -> Self {
        assert!(spacing > 0.0, "spacing must be positive");
        TraceWorkload {
            schedule,
            spacing,
            next_index: 0,
        }
    }
}

impl ArrivalProcess for TraceWorkload {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let req = *self.schedule.as_slice().get(self.next_index)?;
        self.next_index += 1;
        Some(Arrival {
            time: self.next_index as f64 * self.spacing,
            request: req,
        })
    }
}

/// A workload with alternating read-heavy and write-heavy phases — the
/// "salesperson by day, batch-update by night" pattern from the paper's
/// introduction; used in examples and the adaptivity experiments.
#[derive(Debug)]
pub struct PhasedWorkload {
    rng: BatchedF64,
    rate: f64,
    phase_len: usize,
    thetas: [f64; 2],
    phase: usize,
    in_phase: usize,
    clock: f64,
}

impl PhasedWorkload {
    /// Alternates between `theta_a` and `theta_b` every `phase_len`
    /// requests.
    pub fn new(rate: f64, phase_len: usize, theta_a: f64, theta_b: f64, seed: u64) -> Self {
        assert!(rate > 0.0 && phase_len > 0);
        assert!((0.0..=1.0).contains(&theta_a) && (0.0..=1.0).contains(&theta_b));
        PhasedWorkload {
            rng: BatchedF64::new(seed),
            rate,
            phase_len,
            thetas: [theta_a, theta_b],
            phase: 0,
            in_phase: 0,
            clock: 0.0,
        }
    }
}

impl ArrivalProcess for PhasedWorkload {
    fn next_arrival(&mut self) -> Option<Arrival> {
        if self.in_phase == self.phase_len {
            self.in_phase = 0;
            self.phase = 1 - self.phase;
        }
        self.in_phase += 1;
        self.clock += exp_sample(&mut self.rng, self.rate);
        let theta = self.thetas[self.phase];
        let request = if self.rng.draw() < theta {
            Request::Write
        } else {
            Request::Read
        };
        Some(Arrival {
            time: self.clock,
            request,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn take(process: &mut dyn ArrivalProcess, n: usize) -> Vec<Arrival> {
        (0..n).map_while(|_| process.next_arrival()).collect()
    }

    #[test]
    fn poisson_times_increase_strictly() {
        let mut w = PoissonWorkload::from_theta(2.0, 0.5, 7);
        let arrivals = take(&mut w, 1000);
        for pair in arrivals.windows(2) {
            assert!(pair[1].time > pair[0].time);
        }
    }

    #[test]
    fn poisson_write_fraction_converges_to_theta() {
        let mut w = PoissonWorkload::from_theta(1.0, 0.3, 42);
        let arrivals = take(&mut w, 40_000);
        let writes = arrivals.iter().filter(|a| a.request.is_write()).count();
        let frac = writes as f64 / arrivals.len() as f64;
        assert!((frac - 0.3).abs() < 0.01, "{frac}");
    }

    #[test]
    fn poisson_interarrival_mean_matches_rate() {
        let rate = 4.0;
        let mut w = PoissonWorkload::from_theta(rate, 0.5, 3);
        let arrivals = take(&mut w, 50_000);
        let mean = arrivals.last().unwrap().time / arrivals.len() as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "{mean}");
    }

    #[test]
    fn from_rates_computes_theta() {
        let w = PoissonWorkload::from_rates(3.0, 1.0, 0);
        assert!((w.theta() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = take(&mut PoissonWorkload::from_theta(1.0, 0.5, 9), 100);
        let b = take(&mut PoissonWorkload::from_theta(1.0, 0.5, 9), 100);
        assert_eq!(a, b);
        let c = take(&mut PoissonWorkload::from_theta(1.0, 0.5, 10), 100);
        assert_ne!(a, c);
    }

    #[test]
    fn drifting_draws_one_theta_per_period() {
        let mut w = DriftingPoisson::new(1.0, 50, Some(8), 5);
        let arrivals = take(&mut w, 10_000);
        assert_eq!(arrivals.len(), 400, "8 periods × 50 requests");
        assert_eq!(w.thetas().len(), 8);
        for &t in w.thetas() {
            assert!((0.0..=1.0).contains(&t));
        }
        // The draws must actually vary.
        let first = w.thetas()[0];
        assert!(w.thetas().iter().any(|&t| (t - first).abs() > 1e-6));
    }

    #[test]
    fn drifting_periods_have_matching_write_fractions() {
        let mut w = DriftingPoisson::new(1.0, 4000, Some(5), 11);
        let arrivals = take(&mut w, 100_000);
        for (i, &theta) in w.thetas().to_vec().iter().enumerate() {
            let chunk = &arrivals[i * 4000..(i + 1) * 4000];
            let frac = chunk.iter().filter(|a| a.request.is_write()).count() as f64 / 4000.0;
            assert!((frac - theta).abs() < 0.05, "period {i}: {frac} vs {theta}");
        }
    }

    #[test]
    fn drifting_period_summaries() {
        let mut w = DriftingPoisson::new(2.0, 10, Some(3), 4);
        let _ = take(&mut w, 100);
        let periods = w.periods();
        assert_eq!(periods.len(), 3);
        for (p, &theta) in periods.iter().zip(w.thetas()) {
            assert_eq!(p.requests, 10);
            assert_eq!(p.rate, 2.0);
            assert_eq!(p.theta, theta);
        }
    }

    #[test]
    fn trace_replays_schedule_in_order() {
        let s: Schedule = "rwrw".parse().unwrap();
        let mut w = TraceWorkload::new(s.clone(), 1.0);
        let arrivals = take(&mut w, 10);
        assert_eq!(arrivals.len(), 4);
        let replayed: Schedule = arrivals.iter().map(|a| a.request).collect();
        assert_eq!(replayed, s);
        assert_eq!(arrivals[3].time, 4.0);
        assert!(w.next_arrival().is_none());
    }

    #[test]
    fn phased_alternates_write_fractions() {
        let mut w = PhasedWorkload::new(1.0, 5000, 0.1, 0.9, 17);
        let arrivals = take(&mut w, 20_000);
        let frac = |lo: usize, hi: usize| {
            arrivals[lo..hi]
                .iter()
                .filter(|a| a.request.is_write())
                .count() as f64
                / (hi - lo) as f64
        };
        assert!((frac(0, 5000) - 0.1).abs() < 0.03);
        assert!((frac(5000, 10_000) - 0.9).abs() < 0.03);
        assert!((frac(10_000, 15_000) - 0.1).abs() < 0.03);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(std::panic::catch_unwind(|| PoissonWorkload::from_theta(0.0, 0.5, 0)).is_err());
        assert!(std::panic::catch_unwind(|| PoissonWorkload::from_theta(1.0, 1.5, 0)).is_err());
        assert!(std::panic::catch_unwind(|| PoissonWorkload::from_rates(-1.0, 1.0, 0)).is_err());
        assert!(std::panic::catch_unwind(|| TraceWorkload::new(Schedule::new(), 0.0)).is_err());
    }
}
