//! Performance instrumentation for the simulate/sweep hot path.
//!
//! Three small, composable pieces:
//!
//! * [`PerfStats`] — the typed run measurement (events processed, wall
//!   nanoseconds, events/sec) every perf-reporting entry point returns.
//!   Event counts are deterministic simulation facts; wall time is
//!   measurement metadata and never feeds simulation state, ledgers, or
//!   digests.
//! * [`Stopwatch`] — the one sanctioned wall-clock read. It exists so
//!   timing stays at the measurement boundary (`Simulation::run_timed`,
//!   `SweepGrid::run_timed`, `mdr bench`) instead of leaking into event
//!   handlers; the determinism audit allowlists exactly those wrappers.
//! * [`BatchedF64`] — a buffered uniform-draw stream over the blessed
//!   SplitMix64-seeded `StdRng`. The hot loops drain draws from a
//!   refill-in-blocks buffer instead of paying a virtual-free but
//!   branchy per-call path; the underlying xoshiro stream and therefore
//!   every drawn value is bit-identical to unbatched draws, which is what
//!   keeps the pinned sweep ledger digests valid.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// How many uniform draws a [`BatchedF64`] refill produces at once.
/// Small enough that a quiescent stream wastes little work, large enough
/// to amortize the refill call in the hot loops.
const BATCH: usize = 16;

/// A measured run: deterministic event count plus wall-clock metadata.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct PerfStats {
    /// Events the simulation loop processed (deterministic: a pure
    /// function of config, workload, and seeds).
    pub events: u64,
    /// Wall-clock nanoseconds the measured section took (measurement
    /// metadata; varies run to run and machine to machine).
    pub wall_nanos: u64,
}

impl PerfStats {
    /// Zero events in zero time — the identity for [`PerfStats::merge`].
    pub fn zero() -> Self {
        PerfStats {
            events: 0,
            wall_nanos: 0,
        }
    }

    /// Throughput in events per second. Zero when no time was observed
    /// (a degenerate measurement, not a division error).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.events as f64 * 1e9 / self.wall_nanos as f64
    }

    /// Pools two measurements: summed events over summed wall time (the
    /// Chan-style mergeability the sweep summaries already use, applied
    /// to throughput).
    pub fn merge(&self, other: &PerfStats) -> PerfStats {
        PerfStats {
            events: self.events + other.events,
            wall_nanos: self.wall_nanos + other.wall_nanos,
        }
    }
}

/// The sanctioned wall-clock: started at the measurement boundary,
/// stopped once, never consulted by simulation logic.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts the clock.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Stops the clock against `events` processed, producing the run's
    /// [`PerfStats`]. Saturates at `u64::MAX` nanoseconds.
    pub fn stats(&self, events: u64) -> PerfStats {
        let nanos = self.started.elapsed().as_nanos();
        PerfStats {
            events,
            wall_nanos: u64::try_from(nanos).unwrap_or(u64::MAX),
        }
    }
}

/// A buffered uniform-`f64` stream over the blessed seeded generator.
///
/// Draws are produced in 16-draw blocks from a SplitMix64-seeded
/// xoshiro256++ (`StdRng`) and handed out in order, so the value sequence
/// is exactly the sequence `rng.random::<f64>()` would produce call by
/// call — buffering changes *when* the generator steps, never *what* it
/// yields. Unconsumed buffered draws at end of run are simply dropped,
/// which no observer can distinguish from never having drawn them.
#[derive(Debug, Clone)]
pub struct BatchedF64 {
    rng: StdRng,
    buf: [f64; BATCH],
    /// Next unconsumed index into `buf`; `BATCH` means empty.
    pos: usize,
}

impl BatchedF64 {
    /// A batched stream head seeded with `seed` — the same SplitMix64
    /// expansion `StdRng::seed_from_u64` applies, so stream identity is
    /// preserved across the batching rewrite.
    pub fn new(seed: u64) -> Self {
        BatchedF64 {
            rng: StdRng::seed_from_u64(seed),
            buf: [0.0; BATCH],
            pos: BATCH,
        }
    }

    /// The next uniform draw in `[0, 1)` — bit-identical to what the
    /// unbatched `rng.random::<f64>()` at the same stream position
    /// returns.
    #[inline]
    pub fn draw(&mut self) -> f64 {
        if self.pos == BATCH {
            for slot in &mut self.buf {
                *slot = self.rng.random::<f64>();
            }
            self.pos = 0;
        }
        let value = self.buf[self.pos];
        self.pos += 1;
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_draws_match_the_unbatched_stream() {
        let mut plain = StdRng::seed_from_u64(0xfeed);
        let mut batched = BatchedF64::new(0xfeed);
        for i in 0..1000 {
            let expect: f64 = plain.random();
            let got = batched.draw();
            assert!(
                got.to_bits() == expect.to_bits(),
                "draw {i}: batched {got} vs unbatched {expect}"
            );
        }
    }

    #[test]
    fn events_per_sec_is_events_over_seconds() {
        let stats = PerfStats {
            events: 5_000,
            wall_nanos: 2_000_000_000,
        };
        assert!((stats.events_per_sec() - 2_500.0).abs() < 1e-9);
        assert!(PerfStats::zero().events_per_sec().abs() < 1e-12);
    }

    #[test]
    fn merge_pools_events_and_time() {
        let a = PerfStats {
            events: 10,
            wall_nanos: 100,
        };
        let b = PerfStats {
            events: 30,
            wall_nanos: 300,
        };
        let merged = a.merge(&b);
        assert_eq!(merged.events, 40);
        assert_eq!(merged.wall_nanos, 400);
        let zero = PerfStats::zero().merge(&a);
        assert_eq!(zero.events, a.events);
    }

    #[test]
    fn stopwatch_produces_monotone_stats() {
        let watch = Stopwatch::start();
        let stats = watch.stats(42);
        assert_eq!(stats.events, 42);
        // Wall time is environment-dependent; only sanity-check the type.
        let later = watch.stats(42);
        assert!(later.wall_nanos >= stats.wall_nanos);
    }
}
