//! The [`SimBuilder`] front door: one fallible builder for every
//! simulation knob.
//!
//! Historically a [`SimConfig`] was assembled through a patchwork of
//! `SimConfig::new` plus `with_latency` / `with_loss` / `with_mobility` /
//! `with_faults` / `without_oracle`, with a mix of panics and `Result`s.
//! The sweep engine (`crate::sweep`) needs every cell of a parameter grid
//! to be constructible from *one* fallible entry point, so the builder
//! unifies them: every setter validates its arguments and returns
//! `Result<Self, ConfigError>`, and [`SimBuilder::build`] is infallible
//! because nothing unvalidated can reach it.
//!
//! ```
//! use mdr_core::PolicySpec;
//! use mdr_sim::SimBuilder;
//!
//! let config = SimBuilder::new(PolicySpec::SlidingWindow { k: 5 })
//!     .and_then(|b| b.latency(0.02))
//!     .and_then(|b| b.loss(0.1, 0.05, 7))
//!     .map(mdr_sim::SimBuilder::build);
//! assert!(config.is_ok());
//! // Even windows are rejected up front, not at `Simulation::new` time.
//! assert!(SimBuilder::new(PolicySpec::SlidingWindow { k: 4 }).is_err());
//! ```

use crate::faults::{ArqConfig, ConfigError, FaultPlan};
use crate::sim::{LossConfig, MobilityConfig, SimConfig, Simulation};
use crate::topology::TopologyConfig;
use mdr_core::PolicySpec;

/// Checks the cross-knob constraint between a topology and the ARQ
/// transport: a handoff deadline shorter than the transport's *first*
/// retransmission timeout could never see a single retransmission before
/// aborting, which is always a misconfiguration.
fn validate_handoff_deadline(
    topology: &TopologyConfig,
    arq: &ArqConfig,
) -> Result<(), ConfigError> {
    let rto = arq.timeout_for_attempt(1);
    if topology.handoff_deadline < rto {
        return Err(ConfigError::HandoffDeadline {
            deadline: topology.handoff_deadline,
            rto,
        });
    }
    Ok(())
}

/// Checks the §2/§7.1 structural constraints on a policy description:
/// sliding windows must be odd (so the majority vote is never tied) and
/// T-policy streak thresholds must be at least 1.
pub(crate) fn validate_policy(policy: PolicySpec) -> Result<(), ConfigError> {
    match policy {
        PolicySpec::SlidingWindow { k } if k == 0 || k % 2 == 0 => {
            Err(ConfigError::EvenWindow { k })
        }
        PolicySpec::T1 { m } | PolicySpec::T2 { m } if m == 0 => Err(ConfigError::ZeroThreshold),
        _ => Ok(()),
    }
}

/// Checks a one-way link latency: finite and non-negative.
pub(crate) fn validate_latency(latency: f64) -> Result<(), ConfigError> {
    if latency >= 0.0 && latency.is_finite() {
        Ok(())
    } else {
        Err(ConfigError::Latency { value: latency })
    }
}

/// Checks the lossy-link parameters: `0 ≤ p < 1`, finite positive timeout.
pub(crate) fn validate_loss(loss_probability: f64, retry_timeout: f64) -> Result<(), ConfigError> {
    if !(0.0..1.0).contains(&loss_probability) {
        return Err(ConfigError::LossProbability {
            value: loss_probability,
        });
    }
    if retry_timeout <= 0.0 || !retry_timeout.is_finite() {
        return Err(ConfigError::RetryTimeout {
            value: retry_timeout,
        });
    }
    Ok(())
}

/// Checks the mobility parameters: at least one cell, finite non-negative
/// per-cell latencies, finite positive handoff rate.
pub(crate) fn validate_mobility(
    cell_extra_latency: &[f64],
    handoff_rate: f64,
) -> Result<(), ConfigError> {
    if cell_extra_latency.is_empty() {
        return Err(ConfigError::NoCells);
    }
    if let Some(&bad) = cell_extra_latency
        .iter()
        .find(|&&l| !(l >= 0.0 && l.is_finite()))
    {
        return Err(ConfigError::CellLatency { value: bad });
    }
    if handoff_rate <= 0.0 || !handoff_rate.is_finite() {
        return Err(ConfigError::HandoffRate {
            value: handoff_rate,
        });
    }
    Ok(())
}

/// The unified, fallible builder for [`SimConfig`].
///
/// Every setter consumes and returns the builder, so configurations chain
/// with `and_then`; every validation failure is a typed [`ConfigError`]
/// value rather than a panic. See the module docs for an example and
/// `docs/sweeps.md` for the migration table from the removed
/// `SimConfig::new` patchwork.
#[derive(Debug, Clone, PartialEq)]
pub struct SimBuilder {
    config: SimConfig,
}

impl SimBuilder {
    /// Starts a configuration for `policy` with the default link latency
    /// (0.01 time units) and the oracle equivalence check enabled.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EvenWindow`] for an even (or zero) sliding
    /// window and [`ConfigError::ZeroThreshold`] for a zero T-policy
    /// threshold — the structural mistakes the removed `SimConfig::new`
    /// only caught by panicking deep inside `Simulation::new`.
    pub fn new(policy: PolicySpec) -> Result<Self, ConfigError> {
        validate_policy(policy)?;
        Ok(SimBuilder {
            config: SimConfig::defaults(policy),
        })
    }

    /// Sets the one-way message latency (time units).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Latency`] unless the latency is finite and
    /// non-negative.
    pub fn latency(mut self, latency: f64) -> Result<Self, ConfigError> {
        validate_latency(latency)?;
        self.config.latency = latency;
        Ok(self)
    }

    /// Enables or disables the in-process reference-policy oracle check
    /// (on by default; recommended everywhere but hot benches).
    ///
    /// # Errors
    ///
    /// Never fails today; returns `Result` for setter uniformity so caller
    /// chains read the same for every knob.
    pub fn oracle(mut self, enabled: bool) -> Result<Self, ConfigError> {
        self.config.oracle_check = enabled;
        Ok(self)
    }

    /// Enables the instant lossy-link model (the whole retry sequence is
    /// resolved at send time with per-attempt billing; for timed
    /// retransmission with bounded retries see [`SimBuilder::arq`]).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::LossProbability`] unless
    /// `0 ≤ loss_probability < 1`, [`ConfigError::RetryTimeout`] unless
    /// the timeout is finite and positive, and
    /// [`ConfigError::ConflictingLinkModels`] if the ARQ transport is
    /// already installed — a link plays either loss model, never both.
    pub fn loss(
        mut self,
        loss_probability: f64,
        retry_timeout: f64,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        if self.config.arq.is_some() {
            return Err(ConfigError::ConflictingLinkModels);
        }
        validate_loss(loss_probability, retry_timeout)?;
        self.config.loss = Some(LossConfig {
            loss_probability,
            retry_timeout,
            seed,
        });
        Ok(self)
    }

    /// Installs the deterministic ARQ transport from an already-validated
    /// [`ArqConfig`] (timed stop-and-wait retransmission with exponential
    /// backoff, bounded retries, declared disconnections and graceful
    /// degradation — see `docs/faults.md`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ConflictingLinkModels`] if the instant loss
    /// model is already installed — a link plays either loss model, never
    /// both.
    pub fn arq(mut self, arq: ArqConfig) -> Result<Self, ConfigError> {
        if self.config.loss.is_some() {
            return Err(ConfigError::ConflictingLinkModels);
        }
        if let Some(topology) = &self.config.topology {
            validate_handoff_deadline(topology, &arq)?;
        }
        self.config.arq = Some(arq);
        Ok(self)
    }

    /// Enables the cellular-mobility model.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoCells`], [`ConfigError::CellLatency`] or
    /// [`ConfigError::HandoffRate`] for an empty cell list, a negative or
    /// non-finite per-cell latency, or a non-positive handoff rate.
    pub fn mobility(
        mut self,
        cell_extra_latency: Vec<f64>,
        handoff_rate: f64,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        validate_mobility(&cell_extra_latency, handoff_rate)?;
        self.config.mobility = Some(MobilityConfig {
            cell_extra_latency,
            handoff_rate,
            seed,
        });
        Ok(self)
    }

    /// Installs an already-validated fault plan.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ConflictingFaultPlans`] if a *different*
    /// plan is already installed (re-installing the identical plan is
    /// idempotent) — the simulator runs exactly one fault schedule.
    pub fn faults(mut self, faults: FaultPlan) -> Result<Self, ConfigError> {
        match &self.config.faults {
            Some(existing) if *existing != faults => Err(ConfigError::ConflictingFaultPlans),
            _ => {
                self.config.faults = Some(faults);
                Ok(self)
            }
        }
    }

    /// Installs an already-validated multi-cell topology with
    /// fault-hardened handoff (mobility extension, `docs/topology.md`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::HandoffDeadline`] if the ARQ transport is
    /// already installed and the topology's handoff deadline is shorter
    /// than the transport's first retransmission timeout — such a flight
    /// would abort before a single backbone retransmission could fire.
    /// (The same check runs in [`SimBuilder::arq`] for the other
    /// installation order.)
    pub fn topology(mut self, topology: TopologyConfig) -> Result<Self, ConfigError> {
        if let Some(arq) = &self.config.arq {
            validate_handoff_deadline(&topology, arq)?;
        }
        self.config.topology = Some(topology);
        Ok(self)
    }

    /// Finishes the configuration. Infallible: every field was validated
    /// by the setter that produced it.
    pub fn build(self) -> SimConfig {
        self.config
    }

    /// Convenience: builds the configuration and wraps it in a fresh
    /// [`Simulation`] in the policy's initial state.
    pub fn simulation(self) -> Simulation {
        Simulation::new(self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_the_internal_defaults() {
        let old = SimConfig::defaults(PolicySpec::St1);
        let new = SimBuilder::new(PolicySpec::St1).unwrap().build();
        assert_eq!(old, new);
    }

    #[test]
    fn setters_chain_and_validate() {
        let config = SimBuilder::new(PolicySpec::SlidingWindow { k: 3 })
            .and_then(|b| b.latency(0.5))
            .and_then(|b| b.oracle(false))
            .and_then(|b| b.loss(0.2, 0.1, 9))
            .and_then(|b| b.mobility(vec![0.0, 0.1], 2.0, 4))
            .unwrap()
            .build();
        assert_eq!(config.latency, 0.5);
        assert!(!config.oracle_check);
        assert!(config.loss.is_some());
        assert!(config.mobility.is_some());
    }

    #[test]
    fn structural_policy_mistakes_are_typed_errors() {
        assert_eq!(
            SimBuilder::new(PolicySpec::SlidingWindow { k: 4 }).unwrap_err(),
            ConfigError::EvenWindow { k: 4 }
        );
        assert_eq!(
            SimBuilder::new(PolicySpec::SlidingWindow { k: 0 }).unwrap_err(),
            ConfigError::EvenWindow { k: 0 }
        );
        assert_eq!(
            SimBuilder::new(PolicySpec::T1 { m: 0 }).unwrap_err(),
            ConfigError::ZeroThreshold
        );
        assert_eq!(
            SimBuilder::new(PolicySpec::T2 { m: 0 }).unwrap_err(),
            ConfigError::ZeroThreshold
        );
    }

    #[test]
    fn the_two_link_models_are_mutually_exclusive() {
        let arq = ArqConfig::new(0.2, 0.1, 7).unwrap();
        assert_eq!(
            SimBuilder::new(PolicySpec::St1)
                .and_then(|b| b.loss(0.1, 0.05, 1))
                .and_then(|b| b.arq(arq))
                .unwrap_err(),
            ConfigError::ConflictingLinkModels
        );
        assert_eq!(
            SimBuilder::new(PolicySpec::St1)
                .and_then(|b| b.arq(arq))
                .and_then(|b| b.loss(0.1, 0.05, 1))
                .unwrap_err(),
            ConfigError::ConflictingLinkModels
        );
        // Alone, either installs fine.
        let built = SimBuilder::new(PolicySpec::St1)
            .and_then(|b| b.arq(arq))
            .unwrap()
            .build();
        assert!(built.arq.is_some());
    }

    #[test]
    fn conflicting_fault_plans_are_rejected_but_reinstall_is_idempotent() {
        let plan_a = FaultPlan::new(0.1, 1.0, 1).unwrap();
        let plan_b = FaultPlan::new(0.2, 1.0, 1).unwrap();
        let b = SimBuilder::new(PolicySpec::St2)
            .and_then(|b| b.faults(plan_a.clone()))
            .unwrap();
        assert_eq!(
            b.clone().faults(plan_b).unwrap_err(),
            ConfigError::ConflictingFaultPlans
        );
        assert!(b.faults(plan_a).is_ok(), "same plan twice is fine");
    }

    #[test]
    fn handoff_deadline_must_cover_the_arq_rto_in_either_order() {
        let arq = ArqConfig::new(0.1, 0.5, 3).unwrap();
        let rto = arq.timeout_for_attempt(1);
        let short = TopologyConfig::new(3, 0.5, rto / 2.0, 11).unwrap();
        // topology after arq
        assert!(matches!(
            SimBuilder::new(PolicySpec::St1)
                .and_then(|b| b.arq(arq))
                .and_then(|b| b.topology(short))
                .unwrap_err(),
            ConfigError::HandoffDeadline { deadline, rto: r }
                if deadline.total_cmp(&(rto / 2.0)).is_eq() && r.total_cmp(&rto).is_eq()
        ));
        // arq after topology
        assert!(matches!(
            SimBuilder::new(PolicySpec::St1)
                .and_then(|b| b.topology(short))
                .and_then(|b| b.arq(arq))
                .unwrap_err(),
            ConfigError::HandoffDeadline { .. }
        ));
        // A deadline covering the first RTO installs fine either way.
        let ample = TopologyConfig::new(3, 0.5, rto * 10.0, 11).unwrap();
        let built = SimBuilder::new(PolicySpec::St1)
            .and_then(|b| b.arq(arq))
            .and_then(|b| b.topology(ample))
            .unwrap()
            .build();
        assert!(built.topology.is_some() && built.arq.is_some());
    }

    #[test]
    fn simulation_convenience_runs() {
        use crate::sim::RunLimit;
        use crate::workload::PoissonWorkload;
        let mut sim = SimBuilder::new(PolicySpec::St1).unwrap().simulation();
        let mut w = PoissonWorkload::from_theta(1.0, 0.2, 3);
        let report = sim.run(&mut w, RunLimit::Requests(100));
        assert_eq!(report.counts.total(), 100);
    }
}
