//! An exact calendar (bucket) priority queue for the event loop.
//!
//! The simulator's future-event set is small (a handful of pending
//! arrivals, deliveries and timers) but churns at every event, and the
//! entries carry their full key ordering `(time, actor-rank, seq)`. A
//! binary heap pays `O(log n)` sift-downs with a large element memcpy per
//! operation; the calendar queue below pays an `O(1)` bucket append per
//! push and a short bucket scan per pop, sized so the average bucket
//! holds about one entry (Brown's calendar queue, CACM 1988).
//!
//! Unlike textbook calendar queues used for *approximate* event ordering,
//! this one is exact: `pop` always returns the minimum of the full
//! lexicographic key `(time, rank, seq)`, reproducing bit for bit the
//! order the previous `BinaryHeap<Scheduled>` implementation produced
//! (ties broken by actor rank, then FIFO sequence). The sweep ledger
//! digests pinned in `tests/perf_digests.rs` hold across the swap.
//!
//! The queue is tuned to the simulator's timer distribution: bucket
//! width tracks the mean spacing of resident events (arrivals about one
//! mean inter-arrival apart, deliveries a latency ahead, ARQ/handoff
//! timers a few widths out), and far-future outliers (degradation
//! deadlines, reordered ghosts) are caught by the direct-search fallback
//! after one empty lap instead of growing the bucket array.

/// Strict "earlier than" on a bare `(time, rank, seq)` key triple — the
/// same total order the queue applies to resident entries. Public
/// so the simulator can rank staged (not-yet-queued) events against the
/// queue's [`peek_key`](CalendarQueue::peek_key) under the identical order.
pub fn key_lt(a: (f64, u8, u64), b: (f64, u8, u64)) -> bool {
    a.0.total_cmp(&b.0)
        .then_with(|| a.1.cmp(&b.1))
        .then_with(|| a.2.cmp(&b.2))
        .is_lt()
}

/// One scheduled entry: the key triple plus the payload.
#[derive(Debug, Clone)]
struct Entry<T> {
    at: f64,
    rank: u8,
    seq: u64,
    item: T,
}

impl<T> Entry<T> {
    /// Strict "earlier than" on the `(time, rank, seq)` key. Times are
    /// finite by construction (the simulator asserts its configs), so
    /// `total_cmp` agrees with the IEEE partial order the heap used.
    fn before(&self, other: &Self) -> bool {
        self.at
            .total_cmp(&other.at)
            .then_with(|| self.rank.cmp(&other.rank))
            .then_with(|| self.seq.cmp(&other.seq))
            .is_lt()
    }
}

/// An exact min-priority queue over `(time, actor-rank, seq)` keys,
/// implemented as a calendar of time buckets.
///
/// `push` appends to the bucket covering the entry's time; `pop` scans
/// forward from the cursor bucket, one bucket-width "day" at a time, and
/// falls back to a direct minimum search after one full empty lap (the
/// far-future-outlier case). The queue resizes itself to keep about one
/// resident entry per bucket and re-derives the bucket width from the
/// observed event-time span at each resize.
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    /// Power-of-two bucket ring.
    buckets: Vec<Vec<Entry<T>>>,
    /// `buckets.len() - 1`, for masking bucket indices.
    mask: usize,
    /// Bucket width in simulation-time units (always positive, finite).
    width: f64,
    /// `1.0 / width`, cached so the per-push bucket index pays a multiply
    /// instead of a divide.
    inv_width: f64,
    /// The bucket the next pop starts scanning from.
    cursor: usize,
    /// Start time of the cursor bucket's current lap window.
    cursor_start: f64,
    /// Resident entries.
    len: usize,
    /// Cached key of the minimal resident entry, maintained by
    /// [`peek_key`](Self::peek_key) and kept current across pushes so a
    /// peek/pop pair pays for one scan, not two.
    min_cache: Option<(f64, u8, u64)>,
}

/// Initial and minimum bucket count (power of two). Sized so the
/// simulator's steady-state future-event set (a handful of arrivals,
/// deliveries and timers) never triggers a resize at all: growth starts
/// only past `2 × MIN_BUCKETS` residents, and the shrink threshold sits
/// 8× below the growth threshold so an oscillating population cannot
/// thrash rebuilds.
const MIN_BUCKETS: usize = 16;

/// Fallback bucket width when the resident events give no usable spacing
/// estimate (empty queue, or all entries at one instant).
const DEFAULT_WIDTH: f64 = 1.0;

impl<T> CalendarQueue<T> {
    /// An empty queue with the default geometry.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            mask: MIN_BUCKETS - 1,
            width: DEFAULT_WIDTH,
            inv_width: 1.0 / DEFAULT_WIDTH,
            cursor: 0,
            cursor_start: 0.0,
            len: 0,
            min_cache: None,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The ring bucket covering time `at` under the current geometry.
    fn bucket_of(&self, at: f64) -> usize {
        // Saturating float→int cast; `at` is non-negative and finite,
        // `width` positive, so the day index is well defined.
        let day = (at * self.inv_width) as u64;
        (day as usize) & self.mask
    }

    /// Schedules `item` at `at` with tie-break rank `rank` and FIFO
    /// sequence `seq`. Keys must be unique in `(at, rank, seq)` — the
    /// caller's monotone `seq` guarantees it.
    pub fn push(&mut self, at: f64, rank: u8, seq: u64, item: T) {
        debug_assert!(at.is_finite(), "scheduled time must be finite");
        if self.len == self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
        }
        let bucket = self.bucket_of(at);
        self.buckets[bucket].push(Entry {
            at,
            rank,
            seq,
            item,
        });
        self.len += 1;
        if let Some(min) = self.min_cache {
            let key = (at, rank, seq);
            if key_lt(key, min) {
                self.min_cache = Some(key);
            }
        }
        if self.len == 1 {
            // Re-anchor the cursor on the sole resident entry so the next
            // pop needs no lap to find it.
            self.anchor(at);
        } else if at < self.cursor_start {
            // An entry landed before the scan window (possible after a
            // direct-search pop jumped the cursor past a same-instant
            // sibling's bucket). Rewind the window so the lap scan sees it.
            self.anchor(at);
        }
    }

    /// The key of the entry the next [`pop`](Self::pop) will return,
    /// without removing it. The scan it costs is cached: a subsequent
    /// `pop` (and any number of repeat peeks, or pushes of later keys)
    /// reuses it, so the peek/pop pair pays for one scan overall.
    pub fn peek_key(&mut self) -> Option<(f64, u8, u64)> {
        if self.len == 0 {
            return None;
        }
        if let Some(min) = self.min_cache {
            return Some(min);
        }
        // Lap scan, as in `pop`, but leaving the entry resident.
        let mut cursor = self.cursor;
        let mut start = self.cursor_start;
        let mut found: Option<(usize, usize)> = None;
        for _ in 0..=self.mask {
            let deadline = start + self.width;
            let bucket = &self.buckets[cursor];
            let mut best: Option<usize> = None;
            for (i, entry) in bucket.iter().enumerate() {
                if entry.at < deadline {
                    let better = match best {
                        None => true,
                        Some(b) => entry.before(&bucket[b]),
                    };
                    if better {
                        best = Some(i);
                    }
                }
            }
            if let Some(i) = best {
                self.cursor = cursor;
                self.cursor_start = start;
                found = Some((cursor, i));
                break;
            }
            cursor = (cursor + 1) & self.mask;
            start += self.width;
        }
        let (bucket, index) = match found {
            Some(hit) => hit,
            None => {
                // One full empty lap: find the far-future minimum directly
                // and re-anchor on it, as `pop` would.
                let hit = self.find_min();
                self.anchor(self.buckets[hit.0][hit.1].at);
                hit
            }
        };
        let entry = &self.buckets[bucket][index];
        let key = (entry.at, entry.rank, entry.seq);
        self.min_cache = Some(key);
        Some(key)
    }

    /// Removes and returns the entry with the minimal `(time, rank, seq)`
    /// key, with its time.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        if self.len == 0 {
            return None;
        }
        if self.len * 4 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.resize(self.buckets.len() / 2);
        }
        if let Some((at, rank, seq)) = self.min_cache.take() {
            // A peek already paid for the scan: jump straight to the
            // cached minimum's bucket (recomputed under the current
            // geometry, so an interleaved resize is harmless).
            let bucket = self.bucket_of(at);
            let index = self.buckets[bucket]
                .iter()
                .position(|e| e.seq == seq && e.rank == rank && e.at == at);
            let Some(index) = index else {
                unreachable!("cached minimum missing from its bucket")
            };
            // Rewind the scan window to the removed entry's day: the next
            // minimum is no earlier, so the lap scan stays ahead of it.
            self.anchor(at);
            return Some(self.take(bucket, index));
        }
        // Lap scan: visit each bucket's current "day" window in time
        // order; the first window holding an entry holds the minimum.
        let mut cursor = self.cursor;
        let mut start = self.cursor_start;
        for _ in 0..=self.mask {
            let deadline = start + self.width;
            let bucket = &self.buckets[cursor];
            let mut best: Option<usize> = None;
            for (i, entry) in bucket.iter().enumerate() {
                if entry.at < deadline {
                    let better = match best {
                        None => true,
                        Some(b) => entry.before(&bucket[b]),
                    };
                    if better {
                        best = Some(i);
                    }
                }
            }
            if let Some(i) = best {
                self.cursor = cursor;
                self.cursor_start = start;
                return Some(self.take(cursor, i));
            }
            cursor = (cursor + 1) & self.mask;
            start += self.width;
        }
        // One full empty lap: the next entry is more than a year ahead.
        // Find it directly and re-anchor the calendar on it.
        let (bucket, index) = self.find_min();
        self.anchor(self.buckets[bucket][index].at);
        Some(self.take(bucket, index))
    }

    /// Removes entry `index` from `bucket` (swap-remove; order within a
    /// bucket is irrelevant, the scan always picks the key minimum).
    fn take(&mut self, bucket: usize, index: usize) -> (f64, T) {
        let entry = self.buckets[bucket].swap_remove(index);
        self.len -= 1;
        (entry.at, entry.item)
    }

    /// Locates the globally minimal entry by direct search. Only called
    /// with at least one resident entry.
    fn find_min(&self) -> (usize, usize) {
        let mut found: Option<(usize, usize)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, entry) in bucket.iter().enumerate() {
                let better = match found {
                    None => true,
                    Some((fb, fi)) => entry.before(&self.buckets[fb][fi]),
                };
                if better {
                    found = Some((b, i));
                }
            }
        }
        let Some(min) = found else {
            unreachable!("find_min on an empty calendar")
        };
        min
    }

    /// Points the scan cursor at the bucket window covering time `at`.
    fn anchor(&mut self, at: f64) {
        let day = (at * self.inv_width) as u64;
        self.cursor = (day as usize) & self.mask;
        self.cursor_start = day as f64 * self.width;
    }

    /// Rebuilds the ring with `buckets` buckets and a width derived from
    /// the resident events' spacing (span divided by population, clamped
    /// to a sane positive range).
    fn resize(&mut self, buckets: usize) {
        let entries: Vec<Entry<T>> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for e in &entries {
            lo = lo.min(e.at);
            hi = hi.max(e.at);
        }
        let span = hi - lo;
        let width = if entries.len() > 1 && span > 0.0 && span.is_finite() {
            // Aim for ~one entry per width so the lap scan touches ~one
            // occupied bucket per pop.
            (span / entries.len() as f64).max(f64::MIN_POSITIVE)
        } else {
            DEFAULT_WIDTH
        };
        self.buckets = (0..buckets).map(|_| Vec::new()).collect();
        self.mask = buckets - 1;
        self.width = width;
        self.inv_width = 1.0 / width;
        self.len = 0;
        let anchor_at = if lo.is_finite() { lo } else { 0.0 };
        self.anchor(anchor_at);
        for e in entries {
            let bucket = self.bucket_of(e.at);
            self.buckets[bucket].push(e);
            self.len += 1;
        }
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    /// The reference ordering: the exact `Ord` the simulator's previous
    /// `BinaryHeap<Scheduled>` reversed for its min-heap.
    #[derive(Debug, PartialEq)]
    struct RefEntry {
        at: f64,
        rank: u8,
        seq: u64,
    }
    impl Eq for RefEntry {}
    impl PartialOrd for RefEntry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for RefEntry {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .at
                .partial_cmp(&self.at)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.rank.cmp(&self.rank))
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    fn drain_both(ops: &[(f64, u8)]) {
        let mut cal = CalendarQueue::new();
        let mut heap = BinaryHeap::new();
        for (seq, &(at, rank)) in ops.iter().enumerate() {
            cal.push(at, rank, seq as u64, seq);
            heap.push(RefEntry {
                at,
                rank,
                seq: seq as u64,
            });
        }
        let mut got = Vec::new();
        loop {
            let peek = cal.peek_key();
            let Some((at, seq)) = cal.pop() else {
                assert_eq!(peek, None, "peek saw an entry pop could not find");
                break;
            };
            assert_eq!(
                peek.map(|(t, _, s)| (t, s)),
                Some((at, seq as u64)),
                "peek disagreed with the following pop"
            );
            let expect = heap.pop().expect("heap shorter than calendar");
            assert_eq!(seq as u64, expect.seq, "pop order diverged at {at}");
            got.push(seq);
        }
        assert!(heap.pop().is_none(), "calendar shorter than heap");
        assert_eq!(got.len(), ops.len());
    }

    #[test]
    fn empty_pops_none() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn orders_by_time_then_rank_then_seq() {
        let mut q = CalendarQueue::new();
        q.push(2.0, 1, 1, "late");
        q.push(1.0, 2, 2, "timer");
        q.push(1.0, 0, 3, "outage");
        q.push(1.0, 1, 4, "deliver-a");
        q.push(1.0, 1, 5, "deliver-b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, s)| s)).collect();
        assert_eq!(
            order,
            vec!["outage", "deliver-a", "deliver-b", "timer", "late"]
        );
    }

    #[test]
    fn far_future_entries_survive_the_lap_fallback() {
        let mut q = CalendarQueue::new();
        // One entry hundreds of default widths out: the pop must take the
        // direct-search path and still find it.
        q.push(4000.0, 1, 1, "deadline");
        q.push(0.5, 1, 2, "near");
        assert_eq!(q.pop().map(|(_, s)| s), Some("near"));
        assert_eq!(q.pop().map(|(_, s)| s), Some("deadline"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop_matches_reference() {
        // Simulator-shaped interleaving: pops re-anchor the cursor, then
        // pushes land both near (deliveries) and far (timers).
        let mut cal = CalendarQueue::new();
        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push =
            |cal: &mut CalendarQueue<u64>, heap: &mut BinaryHeap<RefEntry>, at: f64, rank: u8| {
                seq += 1;
                cal.push(at, rank, seq, seq);
                heap.push(RefEntry { at, rank, seq });
            };
        let mut now = 0.0f64;
        for step in 0..2000u64 {
            let jitter = (step % 7) as f64 * 0.013;
            push(&mut cal, &mut heap, now + 1.0 + jitter, 1);
            push(&mut cal, &mut heap, now + 0.05, 1);
            if step % 5 == 0 {
                push(&mut cal, &mut heap, now + 8.0 + jitter, 2);
            }
            if step % 11 == 0 {
                push(&mut cal, &mut heap, now, 0);
            }
            for round in 0..2 {
                // Peek on alternating rounds so both the cached and the
                // cold pop path stay exercised.
                let peek = if round == 0 { cal.peek_key() } else { None };
                let got = cal.pop();
                let expect = heap.pop();
                match (got, expect) {
                    (Some((at, s)), Some(e)) => {
                        assert_eq!(s, e.seq, "diverged at t={at}");
                        if round == 0 {
                            assert_eq!(peek.map(|(_, _, ps)| ps), Some(s), "peek diverged");
                        }
                        now = at;
                    }
                    (None, None) => {}
                    (got, expect) => panic!("length diverged: {got:?} vs {expect:?}"),
                }
            }
        }
        while let Some(e) = heap.pop() {
            let Some((_, s)) = cal.pop() else {
                panic!("calendar ran out before the reference heap")
            };
            assert_eq!(s, e.seq);
        }
        assert!(cal.is_empty());
    }

    #[test]
    fn same_instant_burst_is_fifo_within_rank() {
        let mut q = CalendarQueue::new();
        for seq in 0..100u64 {
            q.push(3.25, 1, seq, seq);
        }
        for expect in 0..100u64 {
            assert_eq!(q.pop().map(|(_, s)| s), Some(expect));
        }
    }

    #[test]
    fn grows_and_shrinks_without_losing_entries() {
        let mut q = CalendarQueue::new();
        for seq in 0..500u64 {
            q.push((seq % 97) as f64 * 0.31, 1, seq, seq);
        }
        assert_eq!(q.len(), 500);
        let mut drained = Vec::new();
        while let Some((_, s)) = q.pop() {
            drained.push(s);
        }
        assert_eq!(drained.len(), 500);
        // Exhaustive key order: sort the inputs by (time, rank, seq) and
        // compare.
        let mut expect: Vec<u64> = (0..500).collect();
        expect.sort_by(|&a, &b| {
            ((a % 97) as f64 * 0.31)
                .total_cmp(&((b % 97) as f64 * 0.31))
                .then(a.cmp(&b))
        });
        assert_eq!(drained, expect);
    }

    #[test]
    fn randomized_against_reference_heap() {
        // Deterministic pseudo-random workload (SplitMix64 steps) across
        // several shapes; the proptest in `tests/properties.rs` widens
        // this further.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for case in 0..30 {
            let n = 5 + (case * 17) % 200;
            let ops: Vec<(f64, u8)> = (0..n)
                .map(|_| {
                    let t = (next() % 10_000) as f64 * 0.001;
                    let rank = (next() % 3) as u8;
                    (t, rank)
                })
                .collect();
            drain_both(&ops);
        }
    }
}
