//! Multi-cell topology and the fault-hardened handoff protocol
//! (mobility-layer extension; see `docs/topology.md`).
//!
//! The paper pins each MC to a single SC, but its motivation (§2, §8) is a
//! cellular architecture in which the MC roams between cells. This module
//! defines [`TopologyConfig`]: a set of SCs/cells plus a deterministic,
//! seed-driven mobility plan that migrates the MC between cells mid-run.
//! Whenever the MC's current cell differs from the cell that owns its
//! replica state, the simulator runs a three-way handoff over the wired
//! inter-SC backbone:
//!
//! ```text
//! owner cell                      target cell
//!     | -------- HandoffRequest ------> |   (control)
//!     | -------- StateTransfer -------> |   (data: version, window, streaks)
//!     | <------- HandoffCommit -------- |   (control)
//! ```
//!
//! Every leg is epoch-fenced: a leg carrying a stale handoff epoch — a
//! duplicate, a reordered copy, or the tail of an aborted attempt — is
//! discarded on arrival, so the protocol is idempotent under network
//! misbehaviour. A handoff that has not committed by its deadline aborts
//! and *rolls back* to the origin cell: ownership never moves until the
//! commit lands at the origin, so there is exactly one owner at every
//! instant. While a handoff is stuck (aborted at least once and not yet
//! re-committed), the MC degrades gracefully — reads are served stale from
//! the origin cell's replica and wire-bound requests are shed with a typed
//! outcome — instead of blocking the event loop.
//!
//! On commit the origin cell's replica goes stale (and so does any orphan
//! a previously aborted `StateTransfer` parked at a target cell); the
//! commit triggers invalidation so non-owner cells drop those stale
//! replicas — either one message per stale cell, or a single broadcast
//! (the third message class), whichever the configuration selects. The
//! choice is pure pricing: replica placement after invalidation is
//! identical either way, which is what experiment E19 measures.
//!
//! Everything here is deterministic: the same `(TopologyConfig, workload)`
//! pair reproduces the same migrations, leg losses and therefore a
//! byte-identical cost ledger. A plan with `migration_rate == 0` is
//! *inert*: it schedules no events, draws nothing from any RNG stream and
//! reproduces the single-cell ledger digest bit for bit.

use crate::faults::ConfigError;

/// The three legs of the handoff protocol, in wire order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HandoffLeg {
    /// Origin → target: announce the migration, carrying the new epoch.
    Request,
    /// Origin → target: the replica snapshot (version, SWk window, T1/T2
    /// streaks) — the one data-class leg.
    Transfer,
    /// Target → origin: acknowledge the snapshot; ownership moves when
    /// this lands at the origin.
    Commit,
}

impl HandoffLeg {
    /// Short display name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            HandoffLeg::Request => "handoff-request",
            HandoffLeg::Transfer => "state-transfer",
            HandoffLeg::Commit => "handoff-commit",
        }
    }
}

/// The replica state a `StateTransfer` leg ships from the origin cell to
/// the target cell: everything the §4 protocol keeps at the SC side, so
/// the target can continue the exchange history seamlessly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HandoffSnapshot {
    /// The primary's version counter at the origin.
    pub version: u64,
    /// Whether the origin SC is committed to propagating writes (ST2
    /// replica state rides this bit).
    pub mc_has_copy: bool,
    /// Whether the origin SC holds the §4 request window.
    pub sc_in_charge: bool,
    /// Whether the MC holds the §4 request window (T1/T2 streaks live on
    /// whichever side is in charge).
    pub mc_in_charge: bool,
}

/// A multi-cell topology with a deterministic, seed-driven mobility plan.
///
/// Migrations arrive as a Poisson process at `migration_rate`; each one
/// moves the MC to a uniformly drawn *different* cell and (if the MC left
/// the owner cell) starts the three-way handoff described in the module
/// docs. All randomness — dwell times, destination cells, backbone leg
/// losses, commit ghosts — comes from dedicated RNG streams derived from
/// `seed`, so the plan never perturbs the workload, fault or ARQ streams.
///
/// ```
/// use mdr_sim::TopologyConfig;
///
/// let topology = TopologyConfig::new(3, 0.5, 2.0, 7)
///     .and_then(|t| t.with_home_cell(1))
///     .and_then(|t| t.with_loss(0.1));
/// assert!(topology.is_ok());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TopologyConfig {
    /// Number of cells (≥ 1). One cell makes every migration a no-op.
    pub cells: usize,
    /// The cell the MC starts in; its SC owns the replica state initially.
    pub home_cell: usize,
    /// Poisson rate of MC migrations (per time unit). Zero makes the plan
    /// inert: no events, no draws, the single-cell ledger exactly.
    pub migration_rate: f64,
    /// How long a handoff may stay uncommitted before it aborts and rolls
    /// back to the origin cell (epoch fence + re-initiation).
    pub handoff_deadline: f64,
    /// Invalidation mode on commit: `true` sends one broadcast to all
    /// cells, `false` sends one message per stale replica.
    pub broadcast_invalidation: bool,
    /// Per-attempt probability that a backbone handoff leg is lost.
    pub loss_probability: f64,
    /// Per-delivery probability that the network duplicates a
    /// `HandoffCommit` (the copy arrives right behind the original).
    pub commit_duplication: f64,
    /// Per-delivery probability that a stale `HandoffCommit` copy is
    /// reordered past later traffic (arrives much later).
    pub commit_reorder: f64,
    /// RNG seed for the mobility and backbone streams.
    pub seed: u64,
}

impl TopologyConfig {
    /// A topology of `cells` cells with the MC homed to cell 0, migrating
    /// at `migration_rate`, handoffs abandoned after `handoff_deadline`,
    /// per-cell invalidation and a lossless backbone. Refine with the
    /// `with_*` builders.
    ///
    /// # Errors
    ///
    /// [`ConfigError::NoCells`] for an empty topology,
    /// [`ConfigError::HandoffRate`] for a negative or non-finite migration
    /// rate, and [`ConfigError::HandoffDeadline`] for a non-positive or
    /// non-finite deadline.
    pub fn new(
        cells: usize,
        migration_rate: f64,
        handoff_deadline: f64,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        if cells == 0 {
            return Err(ConfigError::NoCells);
        }
        if !(migration_rate >= 0.0 && migration_rate.is_finite()) {
            return Err(ConfigError::HandoffRate {
                value: migration_rate,
            });
        }
        if !(handoff_deadline > 0.0 && handoff_deadline.is_finite()) {
            return Err(ConfigError::HandoffDeadline {
                deadline: handoff_deadline,
                rto: 0.0,
            });
        }
        Ok(TopologyConfig {
            cells,
            home_cell: 0,
            migration_rate,
            handoff_deadline,
            broadcast_invalidation: false,
            loss_probability: 0.0,
            commit_duplication: 0.0,
            commit_reorder: 0.0,
            seed,
        })
    }

    /// Homes the MC (and the initial replica ownership) to `home_cell`.
    ///
    /// # Errors
    ///
    /// [`ConfigError::UnknownHomeCell`] if the index is out of range.
    pub fn with_home_cell(mut self, home_cell: usize) -> Result<Self, ConfigError> {
        if home_cell >= self.cells {
            return Err(ConfigError::UnknownHomeCell {
                home: home_cell,
                cells: self.cells,
            });
        }
        self.home_cell = home_cell;
        Ok(self)
    }

    /// Selects broadcast invalidation (one message per commit) instead of
    /// the per-cell default (one message per stale replica).
    #[must_use]
    pub fn with_broadcast_invalidation(mut self) -> Self {
        self.broadcast_invalidation = true;
        self
    }

    /// Sets the per-attempt loss probability of backbone handoff legs.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Probability`] for a value outside `[0, 1]`.
    pub fn with_loss(mut self, loss_probability: f64) -> Result<Self, ConfigError> {
        if !(0.0..=1.0).contains(&loss_probability) {
            return Err(ConfigError::Probability {
                what: "handoff loss probability",
                value: loss_probability,
            });
        }
        self.loss_probability = loss_probability;
        Ok(self)
    }

    /// Enables `HandoffCommit` duplication and stale reordering — network
    /// misbehaviour the epoch fence must absorb without observable effect.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Probability`] for a value outside `[0, 1]`.
    pub fn with_commit_ghosts(
        mut self,
        duplication: f64,
        reorder: f64,
    ) -> Result<Self, ConfigError> {
        if !(0.0..=1.0).contains(&duplication) {
            return Err(ConfigError::Probability {
                what: "commit duplication probability",
                value: duplication,
            });
        }
        if !(0.0..=1.0).contains(&reorder) {
            return Err(ConfigError::Probability {
                what: "commit reorder probability",
                value: reorder,
            });
        }
        self.commit_duplication = duplication;
        self.commit_reorder = reorder;
        Ok(self)
    }

    /// Whether this plan can migrate the MC at all. An inert plan
    /// schedules no events and draws nothing, reproducing the single-cell
    /// execution exactly.
    pub fn is_inert(&self) -> bool {
        // Validation pins the rate to [0, ∞), so ≤ 0 means exactly zero.
        self.migration_rate <= 0.0
    }

    /// Whether commit ghosts (duplication or reordering) are enabled.
    pub fn has_ghosts(&self) -> bool {
        self.commit_duplication > 0.0 || self.commit_reorder > 0.0
    }
}

/// IEEE-754 total-order comparison on the float fields, exact equality on
/// everything else — same rationale as `SimConfig`'s `PartialEq`.
impl PartialEq for TopologyConfig {
    fn eq(&self, other: &Self) -> bool {
        self.cells == other.cells
            && self.home_cell == other.home_cell
            && self.migration_rate.total_cmp(&other.migration_rate).is_eq()
            && self
                .handoff_deadline
                .total_cmp(&other.handoff_deadline)
                .is_eq()
            && self.broadcast_invalidation == other.broadcast_invalidation
            && self
                .loss_probability
                .total_cmp(&other.loss_probability)
                .is_eq()
            && self
                .commit_duplication
                .total_cmp(&other.commit_duplication)
                .is_eq()
            && self.commit_reorder.total_cmp(&other.commit_reorder).is_eq()
            && self.seed == other.seed
    }
}

impl Eq for TopologyConfig {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_topologies_build() {
        let topology = TopologyConfig::new(4, 0.5, 2.0, 7)
            .and_then(|t| t.with_home_cell(2))
            .and_then(|t| t.with_loss(0.2))
            .and_then(|t| t.with_commit_ghosts(0.1, 0.05))
            .unwrap()
            .with_broadcast_invalidation();
        assert_eq!(topology.cells, 4);
        assert_eq!(topology.home_cell, 2);
        assert!(topology.broadcast_invalidation);
        assert!(!topology.is_inert());
        assert!(topology.has_ghosts());
    }

    #[test]
    fn ghost_flags_reflect_each_channel_independently() {
        // `has_ghosts` gates the ghost RNG stream: it must stay off when
        // both probabilities are exactly zero and arm for either channel
        // alone.
        let base = TopologyConfig::new(3, 0.5, 2.0, 7).unwrap();
        assert!(!base.has_ghosts());
        let dup_only = base.with_commit_ghosts(0.3, 0.0).unwrap();
        assert!(dup_only.has_ghosts());
        let reorder_only = base.with_commit_ghosts(0.0, 0.3).unwrap();
        assert!(reorder_only.has_ghosts());
    }

    /// Satellite: zero cells is rejected with exactly `NoCells`.
    #[test]
    fn zero_cells_are_rejected() {
        let err = TopologyConfig::new(0, 0.5, 2.0, 0).unwrap_err();
        assert_eq!(err, ConfigError::NoCells);
        assert!(err.to_string().contains("at least one cell"), "{err}");
    }

    /// Satellite: homing the MC to a cell the topology does not contain is
    /// rejected with exactly `UnknownHomeCell`.
    #[test]
    fn unknown_home_cell_is_rejected() {
        for bad in [3, 4, usize::MAX] {
            let err = TopologyConfig::new(3, 0.5, 2.0, 0)
                .unwrap()
                .with_home_cell(bad)
                .unwrap_err();
            assert!(
                matches!(err, ConfigError::UnknownHomeCell { home, cells } if home == bad && cells == 3),
                "{err}"
            );
            assert!(err.to_string().contains("home cell"), "{err}");
        }
        assert!(TopologyConfig::new(3, 0.5, 2.0, 0)
            .unwrap()
            .with_home_cell(2)
            .is_ok());
    }

    /// Satellite: a non-positive or non-finite deadline is rejected with
    /// exactly `HandoffDeadline` (the deadline-vs-RTO cross-check lives in
    /// the builder, where the ARQ configuration is visible).
    #[test]
    fn handoff_deadline_is_validated() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = TopologyConfig::new(2, 0.5, bad, 0).unwrap_err();
            assert!(
                matches!(err, ConfigError::HandoffDeadline { deadline, .. } if deadline.total_cmp(&bad).is_eq()),
                "{err}"
            );
            assert!(err.to_string().contains("handoff deadline"), "{err}");
        }
    }

    #[test]
    fn migration_rate_is_validated() {
        for bad in [-0.1, f64::NAN, f64::INFINITY] {
            let err = TopologyConfig::new(2, bad, 2.0, 0).unwrap_err();
            assert!(
                matches!(err, ConfigError::HandoffRate { value } if value.total_cmp(&bad).is_eq()),
                "{err}"
            );
        }
        // Zero is legal: the inert plan.
        assert!(TopologyConfig::new(2, 0.0, 2.0, 0).unwrap().is_inert());
    }

    #[test]
    fn backbone_probabilities_are_validated() {
        let base = TopologyConfig::new(2, 0.5, 2.0, 0).unwrap();
        for bad in [-0.1, 1.1, f64::NAN] {
            assert!(base.with_loss(bad).is_err());
            assert!(base.with_commit_ghosts(bad, 0.0).is_err());
            assert!(base.with_commit_ghosts(0.0, bad).is_err());
        }
    }

    #[test]
    fn equality_is_total_order_on_floats() {
        let a = TopologyConfig::new(3, 0.5, 2.0, 9).unwrap();
        let b = TopologyConfig::new(3, 0.5, 2.0, 9).unwrap();
        assert_eq!(a, b);
        let c = TopologyConfig::new(3, 0.5, 2.0, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn leg_names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<&str> = [
            HandoffLeg::Request,
            HandoffLeg::Transfer,
            HandoffLeg::Commit,
        ]
        .into_iter()
        .map(HandoffLeg::name)
        .collect();
        assert_eq!(names.len(), 3);
    }
}
