//! Crash-safe durability for the serving layer: a per-tenant write-ahead
//! journal, periodic checkpoints, and recovery-on-startup.
//!
//! The paper's replication schemes assume the stationary computer's
//! allocation state survives across sessions; [`crate::ServeEngine`]
//! alone keeps every tenant's [`DecisionCore`] purely in memory, so a
//! daemon crash would silently lose windows, streaks, and billing
//! ledgers. [`DurableServe`] wraps the engine with an on-disk record of
//! every state-changing operation:
//!
//! * **Journal** — per tenant, an append-only file of length-prefixed
//!   records (`[len u32][seq u64, kind u8, payload][fnv1a-64 u64]`, all
//!   little-endian). The checksum covers the sequence number, kind, and
//!   payload, so any single-bit flip is detected (each FNV-1a step is a
//!   bijection of the running digest). Sequence numbers increase by
//!   exactly one and never reset for the life of a tenant directory.
//! * **Checkpoint** — a whole-state image ([`Checkpoint`] wrapping the
//!   versioned [`CoreSnapshot`] plus the §6 adaptive bookkeeping),
//!   written atomically (temp file, fsync, rename, directory fsync).
//!   After a durable checkpoint the journal is compacted to zero length;
//!   the checkpoint's `seq` tells recovery where the journal resumes.
//! * **Recovery** — on startup, each tenant directory is restored from
//!   its latest valid checkpoint and the journal tail is replayed
//!   through the decision core. A torn or corrupt record *truncates* the
//!   journal at that point (the clean prefix wins); a journal that
//!   cannot be reconciled at all — checksum-valid records with a
//!   sequence gap, an undecodable record, a missing base — *quarantines*
//!   that one tenant (its directory moves aside for forensics) without
//!   taking down the daemon or any other tenant.
//!
//! Writes are acknowledged only after the journal append succeeds
//! (apply → journal → respond), so a crash at any instant loses at most
//! operations that were never acknowledged — the recovered state is
//! always the pre-crash state or a declared-clean prefix of it, never
//! silently wrong. The crash-torture tests (`tests/torture.rs`) prove
//! this by killing, truncating, and bit-flipping at every byte offset of
//! a tail record and asserting digest equality after recovery.
//!
//! Replay is independent of the daemon's current adaptive setting: §6
//! window re-selections are journaled as explicit [`JournalOp::Adopt`]
//! records when they happen, and replay applies those records instead of
//! re-running the adaptive trigger.

use crate::engine::{
    CoreSnapshot, DecisionCore, ServeConfig, ServeEngine, ServeRequest, ServeResponse,
};
use crate::faults::ConfigError;
use mdr_core::{CostModel, PolicySpec, Request};
use serde::Value;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The checkpoint format version this build writes and loads.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Journal file name inside a tenant directory.
const JOURNAL_FILE: &str = "journal.wal";
/// Checkpoint file name inside a tenant directory.
const CHECKPOINT_FILE: &str = "checkpoint.ckpt";
/// Scratch name the checkpoint is staged under before the atomic rename.
const CHECKPOINT_TMP: &str = "checkpoint.tmp";
/// Subdirectory of the data dir holding live tenant directories.
const TENANTS_DIR: &str = "tenants";
/// Subdirectory of the data dir where corrupt tenants are set aside.
const QUARANTINE_DIR: &str = "quarantine";

/// 64-bit FNV-1a over `bytes` — the per-record and checkpoint checksum.
/// Every step `d ← (d ⊕ b) · prime` is a bijection of the running
/// digest, so changing any single byte (a fortiori any single bit)
/// changes the result.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        digest ^= u64::from(b);
        digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
    digest
}

/// The parseable wire notation for a cost model (`connection` /
/// `message:<ω>`). [`CostModel`]'s `Display` is the paper's pretty
/// notation (`message(ω=0.4)`), which its `FromStr` does not accept, so
/// journal records use this grammar instead; Rust's shortest-round-trip
/// float formatting makes it exact.
fn model_wire(model: CostModel) -> String {
    match model {
        CostModel::Connection => "connection".to_owned(),
        CostModel::Message { omega } => format!("message:{omega}"),
    }
}

// ---------------------------------------------------------------------------
// The record format.
// ---------------------------------------------------------------------------

const KIND_OPEN: u8 = 1;
const KIND_DECIDE: u8 = 2;
const KIND_ADOPT: u8 = 3;
const KIND_RESTORE: u8 = 4;
const KIND_CLOSE: u8 = 5;

/// One journaled state-changing operation. Policies, models, and
/// snapshots are stored in parseable text forms (policy `Display`,
/// `connection`/`message:<ω>` model notation, snapshot JSON), which
/// round-trip exactly — so replay reconstructs precisely the values the
/// live engine resolved, independent of the restarted daemon's defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalOp {
    /// The tenant was opened with this resolved policy and cost model
    /// (canonical notation, defaults already applied).
    Open {
        /// Canonical policy notation, e.g. `SW5`.
        policy: String,
        /// Canonical cost-model notation, e.g. `message:0.4`.
        model: String,
    },
    /// One decided request, as the paper's `r`/`w` letter.
    Decide {
        /// The request letter.
        request: char,
    },
    /// A §6 adaptive window re-selection that fired on the preceding
    /// decision.
    Adopt {
        /// Canonical notation of the adopted policy.
        policy: String,
    },
    /// The tenant was rewound from a snapshot (the `restore` wire op).
    Restore {
        /// The [`CoreSnapshot`] as its canonical JSON.
        snapshot: String,
    },
    /// The tenant was closed; recovery treats the directory as disposed.
    Close,
}

fn push_str(body: &mut Vec<u8>, s: &str) {
    body.extend_from_slice(&(s.len() as u32).to_le_bytes());
    body.extend_from_slice(s.as_bytes());
}

/// Encodes one record as a self-delimiting frame:
/// `[body-len u32][seq u64, kind u8, payload][fnv1a64(body) u64]`,
/// all little-endian.
pub fn encode_record(seq: u64, op: &JournalOp) -> Vec<u8> {
    let mut body = Vec::with_capacity(16);
    body.extend_from_slice(&seq.to_le_bytes());
    match op {
        JournalOp::Open { policy, model } => {
            body.push(KIND_OPEN);
            push_str(&mut body, policy);
            push_str(&mut body, model);
        }
        JournalOp::Decide { request } => {
            body.push(KIND_DECIDE);
            body.extend_from_slice(&u32::from(*request).to_le_bytes());
        }
        JournalOp::Adopt { policy } => {
            body.push(KIND_ADOPT);
            push_str(&mut body, policy);
        }
        JournalOp::Restore { snapshot } => {
            body.push(KIND_RESTORE);
            push_str(&mut body, snapshot);
        }
        JournalOp::Close => body.push(KIND_CLOSE),
    }
    let mut frame = Vec::with_capacity(body.len() + 12);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    frame.extend_from_slice(&fnv1a64(&body).to_le_bytes());
    frame
}

/// Takes `n` bytes off the front of `input`, or fails totally.
fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], String> {
    if input.len() < n {
        return Err(format!(
            "record body ends early (needed {n} bytes, had {})",
            input.len()
        ));
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

fn take_u32(input: &mut &[u8]) -> Result<u32, String> {
    let bytes = take(input, 4)?;
    let mut buf = [0u8; 4];
    buf.copy_from_slice(bytes);
    Ok(u32::from_le_bytes(buf))
}

fn take_u64(input: &mut &[u8]) -> Result<u64, String> {
    let bytes = take(input, 8)?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(bytes);
    Ok(u64::from_le_bytes(buf))
}

fn take_string(input: &mut &[u8]) -> Result<String, String> {
    let len = take_u32(input)? as usize;
    let bytes = take(input, len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| "string payload is not UTF-8".to_owned())
}

/// Decodes one record body (everything the checksum covers) into its
/// sequence number and operation. Total: any byte sequence yields either
/// a record or a reason, never a panic.
pub fn decode_record(body: &[u8]) -> Result<(u64, JournalOp), String> {
    let mut input = body;
    let seq = take_u64(&mut input)?;
    let kind = take(&mut input, 1)?[0];
    let op = match kind {
        KIND_OPEN => JournalOp::Open {
            policy: take_string(&mut input)?,
            model: take_string(&mut input)?,
        },
        KIND_DECIDE => {
            let raw = take_u32(&mut input)?;
            let request =
                char::from_u32(raw).ok_or_else(|| format!("invalid request scalar {raw:#x}"))?;
            JournalOp::Decide { request }
        }
        KIND_ADOPT => JournalOp::Adopt {
            policy: take_string(&mut input)?,
        },
        KIND_RESTORE => JournalOp::Restore {
            snapshot: take_string(&mut input)?,
        },
        KIND_CLOSE => JournalOp::Close,
        other => return Err(format!("unknown record kind {other}")),
    };
    if !input.is_empty() {
        return Err(format!("{} trailing bytes after payload", input.len()));
    }
    Ok((seq, op))
}

/// How a journal scan ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailOutcome {
    /// Every byte belonged to a valid record.
    Clean,
    /// The file ends mid-record — the expected shape after a crash
    /// during an append. The partial record was never acknowledged;
    /// recovery truncates it away.
    Torn {
        /// Byte offset of the incomplete record.
        offset: usize,
    },
    /// A record failed validation (checksum mismatch, undecodable body,
    /// or a sequence gap). Recovery truncates here; everything from this
    /// offset on is discarded.
    Corrupt {
        /// Byte offset of the failing record.
        offset: usize,
        /// What the scan found.
        reason: String,
    },
}

/// The result of scanning a journal file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalScan {
    /// Every valid record, in order.
    pub records: Vec<(u64, JournalOp)>,
    /// How the scan ended.
    pub outcome: TailOutcome,
    /// Length in bytes of the valid prefix — what the journal is
    /// truncated to when the tail is torn or corrupt.
    pub clean_len: usize,
}

/// Scans raw journal bytes into validated records. Checksums are
/// verified, bodies decoded, and sequence numbers required to increase
/// by exactly one from the first record; the scan stops at the first
/// violation and reports the valid prefix. Total over arbitrary bytes.
pub fn scan_journal(bytes: &[u8]) -> JournalScan {
    let mut records: Vec<(u64, JournalOp)> = Vec::new();
    let mut offset = 0usize;
    let outcome = loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            break TailOutcome::Clean;
        }
        if remaining < 4 {
            break TailOutcome::Torn { offset };
        }
        let mut len_buf = [0u8; 4];
        len_buf.copy_from_slice(&bytes[offset..offset + 4]);
        let body_len = u32::from_le_bytes(len_buf) as usize;
        // A frame needs the length word, the body, and the checksum. A
        // bit-flipped length word usually lands here (the frame appears
        // to run past the end of the file) — checked *before* slicing,
        // so corruption can never trigger a huge allocation or a panic.
        let Some(frame_len) = body_len.checked_add(12) else {
            break TailOutcome::Torn { offset };
        };
        if frame_len > remaining {
            break TailOutcome::Torn { offset };
        }
        if body_len < 9 {
            break TailOutcome::Corrupt {
                offset,
                reason: format!("record body of {body_len} bytes is below the 9-byte minimum"),
            };
        }
        let body = &bytes[offset + 4..offset + 4 + body_len];
        let mut check_buf = [0u8; 8];
        check_buf.copy_from_slice(&bytes[offset + 4 + body_len..offset + frame_len]);
        let stored = u64::from_le_bytes(check_buf);
        let computed = fnv1a64(body);
        if stored != computed {
            break TailOutcome::Corrupt {
                offset,
                reason: format!(
                    "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
                ),
            };
        }
        let (seq, op) = match decode_record(body) {
            Ok(parsed) => parsed,
            Err(reason) => break TailOutcome::Corrupt { offset, reason },
        };
        if let Some(&(prev_seq, _)) = records.last() {
            if seq != prev_seq + 1 {
                break TailOutcome::Corrupt {
                    offset,
                    reason: format!("sequence gap: expected {}, found {seq}", prev_seq + 1),
                };
            }
        }
        records.push((seq, op));
        offset += frame_len;
    };
    JournalScan {
        records,
        outcome,
        clean_len: offset,
    }
}

// ---------------------------------------------------------------------------
// Checkpoints.
// ---------------------------------------------------------------------------

/// A whole-state image of one tenant: the versioned core snapshot plus
/// the serve layer's §6 adaptive bookkeeping and the journal sequence
/// number the image is current through. Stored as two lines — a 16-hex
/// FNV-1a checksum of the JSON, then the JSON itself.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Checkpoint {
    /// Checkpoint format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The journal sequence number this image is current through;
    /// replay resumes at `seq + 1`.
    pub seq: u64,
    /// The decision core's restorable image.
    pub snapshot: CoreSnapshot,
    /// Whether the §6 re-selection already fired for this tenant.
    pub adapted: bool,
    /// θ̂ numerator/denominator at the previous adaptive checkpoint.
    pub adapt_checkpoint: Option<(u64, u64)>,
}

/// Renders a checkpoint to its two-line on-disk form.
pub fn encode_checkpoint(checkpoint: &Checkpoint) -> String {
    let Ok(json) = serde_json::to_string(checkpoint) else {
        unreachable!("every Checkpoint value serializes");
    };
    format!("{:016x}\n{json}\n", fnv1a64(json.as_bytes()))
}

/// Parses and validates the two-line checkpoint form: checksum first,
/// then format version, then the snapshot itself. Total over arbitrary
/// text.
pub fn decode_checkpoint(text: &str) -> Result<Checkpoint, ConfigError> {
    let corrupt = |reason: String| ConfigError::JournalCorrupt {
        tenant: String::new(),
        reason,
    };
    let mut lines = text.lines();
    let (Some(check_line), Some(json)) = (lines.next(), lines.next()) else {
        return Err(corrupt(
            "checkpoint file is missing its two lines".to_owned(),
        ));
    };
    let stored = u64::from_str_radix(check_line.trim(), 16).map_err(|_| {
        corrupt(format!(
            "checkpoint checksum line {check_line:?} is not hex"
        ))
    })?;
    let computed = fnv1a64(json.as_bytes());
    if stored != computed {
        return Err(corrupt(format!(
            "checkpoint checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
        )));
    }
    let checkpoint: Checkpoint = serde_json::from_str(json)
        .map_err(|e| corrupt(format!("checkpoint JSON does not parse: {e}")))?;
    if checkpoint.version != CHECKPOINT_VERSION {
        return Err(ConfigError::CheckpointVersion {
            found: checkpoint.version,
            supported: CHECKPOINT_VERSION,
        });
    }
    Ok(checkpoint)
}

// ---------------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------------

/// When journal appends are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every appended record — at most zero acknowledged
    /// operations lost, at the cost of one disk flush per operation.
    Always,
    /// fsync after every `n` appended records — bounds the loss window
    /// to `n - 1` acknowledged operations.
    Interval(u64),
    /// Never fsync explicitly; the OS flushes on its own schedule.
    /// Torn-tail recovery still works, but acknowledged operations since
    /// the last OS flush can be lost on power failure.
    Never,
}

/// Where and how the durability layer persists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalConfig {
    /// The data directory (created if absent). Tenants live under
    /// `<dir>/tenants/`, quarantined state under `<dir>/quarantine/`.
    pub dir: PathBuf,
    /// The fsync cadence for journal appends.
    pub fsync: FsyncPolicy,
    /// Write a checkpoint (and compact the journal) after this many
    /// journaled records per tenant.
    pub checkpoint_every: u64,
}

impl JournalConfig {
    /// A config with the production defaults: fsync every 64 records,
    /// checkpoint every 1024.
    pub fn new(dir: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Interval(64),
            checkpoint_every: 1024,
        }
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.checkpoint_every == 0 {
            return Err(ConfigError::ZeroCount {
                what: "checkpoint interval",
            });
        }
        if self.fsync == FsyncPolicy::Interval(0) {
            return Err(ConfigError::ZeroCount {
                what: "fsync interval",
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Stats and reports.
// ---------------------------------------------------------------------------

/// Deterministic durability counters, surfaced on the daemon-level
/// `stats` wire response. Recovery *time* goes to stderr instead — the
/// wire format stays byte-reproducible for the pinned fixtures and the
/// determinism audit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Tenants recovered at startup.
    pub recovered_tenants: u64,
    /// Journal records replayed at startup.
    pub replayed_records: u64,
    /// Bytes discarded from torn or corrupt journal tails at startup.
    pub truncated_bytes: u64,
    /// Tenants quarantined (at startup or after a live journal failure).
    pub quarantined_tenants: u64,
    /// Records appended to journals since startup.
    pub journal_appends: u64,
    /// Checkpoints written since startup (including recovery compaction).
    pub checkpoints: u64,
    /// Checkpoint attempts that failed and were deferred to the next
    /// interval (the journal still holds the records, so no state risk).
    pub checkpoint_failures: u64,
    /// Explicit fsync calls issued for journal appends.
    pub fsyncs: u64,
}

impl DurabilityStats {
    /// The stats as wire-format pairs, nested under the server-stats
    /// response.
    pub(crate) fn pairs(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("recovered_tenants", Value::UInt(self.recovered_tenants)),
            ("replayed_records", Value::UInt(self.replayed_records)),
            ("truncated_bytes", Value::UInt(self.truncated_bytes)),
            ("quarantined_tenants", Value::UInt(self.quarantined_tenants)),
            ("journal_appends", Value::UInt(self.journal_appends)),
            ("checkpoints", Value::UInt(self.checkpoints)),
            ("checkpoint_failures", Value::UInt(self.checkpoint_failures)),
            ("fsyncs", Value::UInt(self.fsyncs)),
        ]
    }
}

/// What happened to one tenant directory during recovery.
#[derive(Debug, Clone, PartialEq)]
pub enum TenantRecovery {
    /// The tenant was restored and reopened.
    Recovered {
        /// Journal records replayed past the checkpoint.
        replayed: u64,
        /// Bytes discarded from a torn or corrupt tail.
        truncated_bytes: u64,
    },
    /// The journal's last record was `close`; the directory was disposed.
    Closed,
    /// The tenant's state could not be reconciled; its directory was
    /// moved to the quarantine area and the tenant is not open.
    Quarantined {
        /// Why recovery gave up.
        error: ConfigError,
    },
}

/// The full story of one startup recovery pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Per-tenant outcomes, in directory order.
    pub tenants: Vec<(String, TenantRecovery)>,
    /// Directory names under `tenants/` that are not valid escaped
    /// tenant ids; left untouched.
    pub skipped_dirs: Vec<String>,
}

impl RecoveryReport {
    /// Names of tenants that were recovered and are open.
    pub fn recovered(&self) -> Vec<&str> {
        self.tenants
            .iter()
            .filter(|(_, outcome)| matches!(outcome, TenantRecovery::Recovered { .. }))
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// Names of tenants that were quarantined.
    pub fn quarantined(&self) -> Vec<&str> {
        self.tenants
            .iter()
            .filter(|(_, outcome)| matches!(outcome, TenantRecovery::Quarantined { .. }))
            .map(|(name, _)| name.as_str())
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Tenant-name escaping.
// ---------------------------------------------------------------------------

/// Escapes a tenant id into a filesystem-safe directory name:
/// `[A-Za-z0-9_-]` bytes pass through, everything else becomes `%XX`
/// (uppercase hex, per byte). Injective, so distinct tenants never
/// collide on disk.
pub fn escape_tenant(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for &b in name.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'-' => out.push(b as char),
            other => {
                out.push('%');
                out.push_str(&format!("{other:02X}"));
            }
        }
    }
    out
}

/// Inverts [`escape_tenant`]; `None` for names no escape produces
/// (stray directories are skipped by recovery, never guessed at).
pub fn unescape_tenant(escaped: &str) -> Option<String> {
    let bytes = escaped.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let text = std::str::from_utf8(hex).ok()?;
                // Only the canonical uppercase form round-trips.
                if text.chars().any(|c| c.is_ascii_lowercase()) {
                    return None;
                }
                out.push(u8::from_str_radix(text, 16).ok()?);
                i += 3;
            }
            b @ (b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'-') => {
                out.push(b);
                i += 1;
            }
            _ => return None,
        }
    }
    let name = String::from_utf8(out).ok()?;
    // Reject non-canonical escapes of safe bytes (e.g. "%41" for "A"),
    // so escape ∘ unescape is the identity on directory names.
    if escape_tenant(&name) != escaped {
        return None;
    }
    Some(name)
}

// ---------------------------------------------------------------------------
// The durable engine.
// ---------------------------------------------------------------------------

/// One tenant's open journal handle.
#[derive(Debug)]
struct TenantStore {
    /// The tenant's directory under `tenants/`.
    dir: PathBuf,
    /// Append handle on the journal file.
    file: File,
    /// Sequence number the next record will carry.
    next_seq: u64,
    /// Appends since the last explicit fsync.
    since_sync: u64,
    /// Appends since the last checkpoint.
    since_checkpoint: u64,
}

/// [`ServeEngine`] wrapped with the write-ahead journal, checkpoints,
/// and recovery. Construction ([`DurableServe::open`]) performs the
/// recovery pass; [`DurableServe::handle_line`] then speaks exactly the
/// engine's wire format, with every acknowledged state change journaled
/// first.
#[derive(Debug)]
pub struct DurableServe {
    engine: ServeEngine,
    config: JournalConfig,
    stores: BTreeMap<String, TenantStore>,
    stats: DurabilityStats,
    /// Monotonic counter that keeps quarantine directory names unique.
    quarantine_counter: u64,
}

fn io_err(path: &Path, e: &std::io::Error) -> ConfigError {
    ConfigError::DataDir {
        path: path.display().to_string(),
        reason: e.to_string(),
    }
}

impl DurableServe {
    /// Opens (creating if needed) the data directory, recovers every
    /// tenant found in it, and returns the ready engine plus the
    /// recovery report. Tenant-level corruption quarantines that tenant
    /// and keeps going; only data-directory-level I/O failure is fatal.
    pub fn open(
        config: ServeConfig,
        journal: JournalConfig,
    ) -> Result<(DurableServe, RecoveryReport), ConfigError> {
        journal.validate()?;
        let mut engine = ServeEngine::new(config)?;
        let tenants_dir = journal.dir.join(TENANTS_DIR);
        fs::create_dir_all(&tenants_dir).map_err(|e| io_err(&tenants_dir, &e))?;
        let quarantine_dir = journal.dir.join(QUARANTINE_DIR);
        fs::create_dir_all(&quarantine_dir).map_err(|e| io_err(&quarantine_dir, &e))?;

        let mut report = RecoveryReport::default();
        let mut stats = DurabilityStats::default();
        let mut stores = BTreeMap::new();
        let mut quarantine_counter = 0u64;

        let mut dir_names: Vec<String> = Vec::new();
        let entries = fs::read_dir(&tenants_dir).map_err(|e| io_err(&tenants_dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&tenants_dir, &e))?;
            dir_names.push(entry.file_name().to_string_lossy().into_owned());
        }
        dir_names.sort();

        for escaped in dir_names {
            let Some(name) = unescape_tenant(&escaped) else {
                report.skipped_dirs.push(escaped);
                continue;
            };
            let dir = tenants_dir.join(&escaped);
            match Self::recover_tenant(&mut engine, &name, &dir) {
                Ok(RecoveredTenant::Open {
                    last_seq,
                    replayed,
                    truncated_bytes,
                }) => {
                    stats.recovered_tenants += 1;
                    stats.replayed_records += replayed;
                    stats.truncated_bytes += truncated_bytes;
                    // Compact immediately: checkpoint the recovered
                    // state and restart the journal empty, so repeated
                    // crash/recover cycles never re-replay old work.
                    let mut store =
                        Self::create_store(&dir, last_seq + 1).map_err(|e| io_err(&dir, &e))?;
                    match Self::write_tenant_checkpoint(&engine, &name, &mut store) {
                        Ok(()) => stats.checkpoints += 1,
                        Err(_) => stats.checkpoint_failures += 1,
                    }
                    stores.insert(name.clone(), store);
                    report.tenants.push((
                        name,
                        TenantRecovery::Recovered {
                            replayed,
                            truncated_bytes,
                        },
                    ));
                }
                Ok(RecoveredTenant::Closed) => {
                    let _ = fs::remove_dir_all(&dir);
                    report.tenants.push((name, TenantRecovery::Closed));
                }
                Err(error) => {
                    engine.evict_tenant(&name);
                    stats.quarantined_tenants += 1;
                    Self::move_to_quarantine(&journal.dir, &escaped, &dir, &mut quarantine_counter);
                    report
                        .tenants
                        .push((name, TenantRecovery::Quarantined { error }));
                }
            }
        }

        let lifetime: u64 = report
            .recovered()
            .iter()
            .filter_map(|name| engine.tenant_core(name))
            .map(DecisionCore::decided)
            .sum();
        engine.restore_lifetime(lifetime);

        Ok((
            DurableServe {
                engine,
                config: journal,
                stores,
                stats,
                quarantine_counter,
            },
            report,
        ))
    }

    /// The wrapped engine (read access for stats and tests).
    pub fn engine(&self) -> &ServeEngine {
        &self.engine
    }

    /// Whether a `shutdown` op ended the session.
    pub fn is_done(&self) -> bool {
        self.engine.is_done()
    }

    /// The durability counters so far.
    pub fn stats(&self) -> &DurabilityStats {
        &self.stats
    }

    /// Handles one wire line exactly like
    /// [`ServeEngine::handle_line`], with state changes journaled before
    /// the response is produced. Total: one line in, one JSON line out.
    pub fn handle_line(&mut self, line: &str) -> String {
        let response = match serde_json::from_str::<ServeRequest>(line) {
            Ok(request) => self.apply(&request),
            Err(e) => ServeEngine::error(&ConfigError::BadDecisionRequest {
                reason: e.to_string(),
            }),
        };
        let Ok(wire) = serde_json::to_string(&response) else {
            unreachable!("every ServeResponse value serializes");
        };
        wire
    }

    /// Applies one typed request with write-ahead durability. The order
    /// is apply → journal → respond: a crash between apply and append
    /// loses only the in-flight, never-acknowledged operation.
    pub fn apply(&mut self, request: &ServeRequest) -> ServeResponse {
        match request {
            ServeRequest::Stats { tenant: None } => ServeResponse::ServerStats {
                tenants: self.engine.tenant_count(),
                decisions: self.engine.decisions(),
                durability: Some(self.stats.clone()),
            },
            ServeRequest::Open { tenant, .. } => {
                let response = self.engine.apply(request);
                if let ServeResponse::Opened { policy, .. } = &response {
                    // The response's model string is display notation
                    // (`message(ω=0.4)`); the journal needs the parseable
                    // wire grammar, so re-derive it from the live core.
                    // The open just succeeded, so the core exists; the
                    // fallback only keeps this branch total.
                    let model = self.engine.tenant_core(tenant).map_or_else(
                        || "connection".to_owned(),
                        |core| model_wire(core.model()),
                    );
                    let op = JournalOp::Open {
                        policy: policy.clone(),
                        model,
                    };
                    if let Err(error) = self.open_store(tenant, &op) {
                        return self.journal_failed(tenant, error);
                    }
                }
                response
            }
            ServeRequest::Decide {
                tenant,
                request: letter,
            } => {
                let before = self.engine.tenant_policy(tenant);
                let response = self.engine.apply(request);
                if matches!(response, ServeResponse::Decided { .. }) {
                    let mut ops = vec![JournalOp::Decide { request: *letter }];
                    let after = self.engine.tenant_policy(tenant);
                    if let Some(spec) = after {
                        if before != Some(spec) {
                            // The §6 adaptive re-selection fired on this
                            // decision; journal it explicitly so replay
                            // never has to re-run the trigger.
                            ops.push(JournalOp::Adopt {
                                policy: spec.to_string(),
                            });
                        }
                    }
                    if let Err(error) = self.append_ops(tenant, &ops) {
                        return self.journal_failed(tenant, error);
                    }
                    self.maybe_checkpoint(tenant);
                }
                response
            }
            ServeRequest::Restore { tenant, snapshot } => {
                let response = self.engine.apply(request);
                if matches!(response, ServeResponse::Restored { .. }) {
                    let Ok(json) = serde_json::to_string(snapshot) else {
                        unreachable!("every CoreSnapshot value serializes");
                    };
                    let op = JournalOp::Restore { snapshot: json };
                    let result = if self.stores.contains_key(tenant) {
                        self.append_ops(tenant, std::slice::from_ref(&op))
                    } else {
                        // `restore` can create the tenant.
                        self.open_store(tenant, &op)
                    };
                    if let Err(error) = result {
                        return self.journal_failed(tenant, error);
                    }
                    self.maybe_checkpoint(tenant);
                }
                response
            }
            ServeRequest::Close { tenant } => {
                let response = self.engine.apply(request);
                if matches!(response, ServeResponse::Closed { .. }) {
                    self.close_store(tenant);
                }
                response
            }
            ServeRequest::Shutdown => {
                let response = self.engine.apply(request);
                self.finalize();
                response
            }
            // Reads change nothing; no journaling.
            ServeRequest::Stats { tenant: Some(_) } | ServeRequest::Snapshot { .. } => {
                self.engine.apply(request)
            }
        }
    }

    /// Flushes every open tenant: final checkpoint, compacted journal,
    /// everything fsynced. Called on `shutdown` and at end-of-input;
    /// a per-tenant failure defers to the journal (which still holds the
    /// records) rather than aborting the rest.
    pub fn finalize(&mut self) {
        let names: Vec<String> = self.stores.keys().cloned().collect();
        for name in names {
            let Some(mut store) = self.stores.remove(&name) else {
                continue;
            };
            // The journal may hold unsynced acknowledged records; the
            // checkpoint below supersedes them, and is itself fsynced.
            match Self::write_tenant_checkpoint(&self.engine, &name, &mut store) {
                Ok(()) => self.stats.checkpoints += 1,
                Err(_) => {
                    self.stats.checkpoint_failures += 1;
                    // Fall back to making the journal itself durable.
                    if store.file.sync_all().is_ok() {
                        self.stats.fsyncs += 1;
                    }
                }
            }
            self.stores.insert(name, store);
        }
    }

    // -- internals ---------------------------------------------------------

    fn journal_path(dir: &Path) -> PathBuf {
        dir.join(JOURNAL_FILE)
    }

    fn create_store(dir: &Path, next_seq: u64) -> std::io::Result<TenantStore> {
        fs::create_dir_all(dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(Self::journal_path(dir))?;
        Ok(TenantStore {
            dir: dir.to_path_buf(),
            file,
            next_seq,
            since_sync: 0,
            since_checkpoint: 0,
        })
    }

    /// Creates a fresh tenant directory (clearing any stale leftovers)
    /// and journals the tenant-creating record.
    fn open_store(&mut self, tenant: &str, first_op: &JournalOp) -> Result<(), ConfigError> {
        let dir = self
            .config
            .dir
            .join(TENANTS_DIR)
            .join(escape_tenant(tenant));
        if dir.exists() {
            fs::remove_dir_all(&dir).map_err(|e| io_err(&dir, &e))?;
        }
        let store = Self::create_store(&dir, 1).map_err(|e| io_err(&dir, &e))?;
        self.stores.insert(tenant.to_owned(), store);
        self.append_ops(tenant, std::slice::from_ref(first_op))
    }

    /// Appends records for `ops` (consecutive sequence numbers) and
    /// applies the fsync policy.
    fn append_ops(&mut self, tenant: &str, ops: &[JournalOp]) -> Result<(), ConfigError> {
        let Some(store) = self.stores.get_mut(tenant) else {
            return Err(ConfigError::JournalCorrupt {
                tenant: tenant.to_owned(),
                reason: "no journal store is open for this tenant".to_owned(),
            });
        };
        let mut frame = Vec::new();
        for op in ops {
            frame.extend_from_slice(&encode_record(store.next_seq, op));
            store.next_seq += 1;
        }
        store
            .file
            .write_all(&frame)
            .map_err(|e| io_err(&store.dir, &e))?;
        let appended = ops.len() as u64;
        self.stats.journal_appends += appended;
        store.since_checkpoint += appended;
        match self.config.fsync {
            FsyncPolicy::Always => {
                store.file.sync_all().map_err(|e| io_err(&store.dir, &e))?;
                self.stats.fsyncs += 1;
            }
            FsyncPolicy::Interval(n) => {
                store.since_sync += appended;
                if store.since_sync >= n {
                    store.file.sync_all().map_err(|e| io_err(&store.dir, &e))?;
                    self.stats.fsyncs += 1;
                    store.since_sync = 0;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Writes a checkpoint if the per-tenant record interval elapsed.
    /// Failure is deferred, not fatal: the journal still holds every
    /// acknowledged record.
    fn maybe_checkpoint(&mut self, tenant: &str) {
        let due = self
            .stores
            .get(tenant)
            .is_some_and(|s| s.since_checkpoint >= self.config.checkpoint_every);
        if !due {
            return;
        }
        let Some(mut store) = self.stores.remove(tenant) else {
            return;
        };
        match Self::write_tenant_checkpoint(&self.engine, tenant, &mut store) {
            Ok(()) => self.stats.checkpoints += 1,
            Err(_) => self.stats.checkpoint_failures += 1,
        }
        self.stores.insert(tenant.to_owned(), store);
    }

    /// Checkpoints one tenant's current state atomically and compacts
    /// its journal to zero length.
    fn write_tenant_checkpoint(
        engine: &ServeEngine,
        tenant: &str,
        store: &mut TenantStore,
    ) -> std::io::Result<()> {
        let (Some(core), Some((adapted, adapt_checkpoint))) =
            (engine.tenant_core(tenant), engine.adapt_state(tenant))
        else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "tenant is not open in the engine",
            ));
        };
        let checkpoint = Checkpoint {
            version: CHECKPOINT_VERSION,
            seq: store.next_seq - 1,
            snapshot: core.snapshot(),
            adapted,
            adapt_checkpoint,
        };
        let text = encode_checkpoint(&checkpoint);
        let tmp = store.dir.join(CHECKPOINT_TMP);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, store.dir.join(CHECKPOINT_FILE))?;
        // Make the rename itself durable before discarding the journal.
        File::open(&store.dir).and_then(|d| d.sync_all())?;
        store.file.set_len(0)?;
        store.file.sync_all()?;
        store.since_checkpoint = 0;
        store.since_sync = 0;
        Ok(())
    }

    /// Durably closes a tenant: journal the close, fsync, then dispose
    /// of the directory (checkpoint first, journal second, directory
    /// last — every intermediate crash state is recognized by recovery).
    fn close_store(&mut self, tenant: &str) {
        if self.append_ops(tenant, &[JournalOp::Close]).is_ok() {
            if let Some(store) = self.stores.get_mut(tenant) {
                if store.file.sync_all().is_ok() {
                    self.stats.fsyncs += 1;
                }
            }
        }
        if let Some(store) = self.stores.remove(tenant) {
            let _ = fs::remove_file(store.dir.join(CHECKPOINT_FILE));
            drop(store.file);
            let _ = fs::remove_file(Self::journal_path(&store.dir));
            let _ = fs::remove_dir_all(&store.dir);
        }
    }

    /// A live journal append failed: the tenant can no longer be made
    /// durable, so it is evicted from the engine and its directory set
    /// aside — degraded, not fatal, and isolated to this tenant.
    fn journal_failed(&mut self, tenant: &str, error: ConfigError) -> ServeResponse {
        self.engine.evict_tenant(tenant);
        self.stores.remove(tenant);
        self.stats.quarantined_tenants += 1;
        let escaped = escape_tenant(tenant);
        let dir = self.config.dir.join(TENANTS_DIR).join(&escaped);
        Self::move_to_quarantine(
            &self.config.dir,
            &escaped,
            &dir,
            &mut self.quarantine_counter,
        );
        ServeEngine::error(&error)
    }

    /// Best-effort move of a tenant directory into the quarantine area,
    /// with a counter suffix when the name is already taken.
    fn move_to_quarantine(root: &Path, escaped: &str, dir: &Path, counter: &mut u64) {
        let quarantine = root.join(QUARANTINE_DIR);
        let mut target = quarantine.join(escaped);
        while target.exists() {
            *counter += 1;
            target = quarantine.join(format!("{escaped}-{counter}"));
        }
        let _ = fs::create_dir_all(&quarantine);
        let _ = fs::rename(dir, &target);
    }

    /// Recovers one tenant directory into the engine.
    fn recover_tenant(
        engine: &mut ServeEngine,
        name: &str,
        dir: &Path,
    ) -> Result<RecoveredTenant, ConfigError> {
        let corrupt = |reason: String| ConfigError::JournalCorrupt {
            tenant: name.to_owned(),
            reason,
        };
        let ckpt_path = dir.join(CHECKPOINT_FILE);
        let checkpoint = if ckpt_path.exists() {
            let text = fs::read_to_string(&ckpt_path)
                .map_err(|e| corrupt(format!("checkpoint unreadable: {e}")))?;
            let loaded = decode_checkpoint(&text).map_err(|e| match e {
                ConfigError::JournalCorrupt { reason, .. } => corrupt(reason),
                other => other,
            })?;
            Some(loaded)
        } else {
            None
        };
        let journal_bytes = match fs::read(Self::journal_path(dir)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(corrupt(format!("journal unreadable: {e}"))),
        };
        let scan = scan_journal(&journal_bytes);

        // A journal ending in `close` means the tenant was durably
        // closed; whatever deletion steps the crash interrupted, finish
        // them now.
        if matches!(scan.records.last(), Some((_, JournalOp::Close))) {
            return Ok(RecoveredTenant::Closed);
        }

        let after_seq = match &checkpoint {
            Some(c) => {
                let core = DecisionCore::restore(&c.snapshot)?;
                engine.install_tenant(name, core, c.adapted, c.adapt_checkpoint);
                c.seq
            }
            None => 0,
        };

        // Records at or below the checkpoint's seq are pre-compaction
        // leftovers (a crash between checkpoint write and journal
        // truncate); skip them.
        let tail: Vec<&(u64, JournalOp)> = scan
            .records
            .iter()
            .filter(|(seq, _)| *seq > after_seq)
            .collect();

        let undo = |engine: &mut ServeEngine, e: ConfigError| {
            engine.evict_tenant(name);
            Err(e)
        };

        if let Some((first_seq, first_op)) = tail.first() {
            if *first_seq != after_seq + 1 {
                return undo(
                    engine,
                    corrupt(format!(
                        "sequence gap after checkpoint: expected {}, journal resumes at {first_seq}",
                        after_seq + 1
                    )),
                );
            }
            if checkpoint.is_none()
                && !matches!(first_op, JournalOp::Open { .. } | JournalOp::Restore { .. })
            {
                return undo(
                    engine,
                    corrupt("journal does not begin with a tenant-creating record".to_owned()),
                );
            }
        } else if checkpoint.is_none() {
            // No checkpoint and no usable records: the crash landed
            // between directory creation and the first durable append.
            // The open was never acknowledged, so the clean prefix is
            // "tenant absent".
            return Ok(RecoveredTenant::Closed);
        }

        let mut replayed = 0u64;
        for (_, op) in &tail {
            let step = Self::replay_op(engine, name, op);
            if let Err(e) = step {
                return undo(engine, e);
            }
            replayed += 1;
        }

        let last_seq = tail
            .last()
            .map_or(after_seq, |(seq, _)| *seq)
            .max(scan.records.last().map_or(0, |(seq, _)| *seq));

        Ok(RecoveredTenant::Open {
            last_seq,
            replayed,
            truncated_bytes: (journal_bytes.len() - scan.clean_len) as u64,
        })
    }

    /// Replays one validated journal record through the engine.
    fn replay_op(engine: &mut ServeEngine, name: &str, op: &JournalOp) -> Result<(), ConfigError> {
        let corrupt = |reason: String| ConfigError::JournalCorrupt {
            tenant: name.to_owned(),
            reason,
        };
        match op {
            JournalOp::Open { policy, model } => {
                let spec: PolicySpec = policy
                    .parse()
                    .map_err(|e| corrupt(format!("journaled policy {policy:?}: {e}")))?;
                let model: CostModel = model
                    .parse()
                    .map_err(|e| corrupt(format!("journaled model {model:?}: {e}")))?;
                let core = DecisionCore::new(spec, model)?;
                engine.install_tenant(name, core, false, None);
                Ok(())
            }
            JournalOp::Decide { request } => {
                let req = Request::from_letter(*request)
                    .map_err(|e| corrupt(format!("journaled request: {e}")))?;
                engine.replay_decide(name, req)
            }
            JournalOp::Adopt { policy } => {
                let spec: PolicySpec = policy
                    .parse()
                    .map_err(|e| corrupt(format!("journaled adopted policy {policy:?}: {e}")))?;
                engine.replay_adopt(name, spec)
            }
            JournalOp::Restore { snapshot } => {
                let snapshot: CoreSnapshot = serde_json::from_str(snapshot)
                    .map_err(|e| corrupt(format!("journaled snapshot does not parse: {e}")))?;
                engine.replay_restore(name, &snapshot)
            }
            JournalOp::Close => Err(corrupt("close record mid-journal".to_owned())),
        }
    }
}

/// Internal outcome of one tenant's recovery.
enum RecoveredTenant {
    /// The tenant is open in the engine.
    Open {
        /// Highest journal sequence number seen (checkpoint or record).
        last_seq: u64,
        /// Records replayed past the checkpoint.
        replayed: u64,
        /// Bytes discarded from the tail.
        truncated_bytes: u64,
    },
    /// The tenant was durably closed (or never durably opened).
    Closed,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mdr-journal-{tag}-{}-{}",
            std::process::id(),
            // A per-call discriminator without clocks: the address of a
            // fresh leaked allocation is unique for the process life.
            Box::leak(Box::new(0u8)) as *const u8 as usize,
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn open_at(dir: &Path) -> (DurableServe, RecoveryReport) {
        DurableServe::open(ServeConfig::default(), JournalConfig::new(dir)).expect("open")
    }

    #[test]
    fn fnv_matches_the_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn record_byte_layout_is_pinned() {
        // The on-disk format is a compatibility promise: seq 7, decide
        // 'r'. Body = seq(8) + kind(1) + scalar(4) = 13 bytes.
        let frame = encode_record(7, &JournalOp::Decide { request: 'r' });
        assert_eq!(frame.len(), 4 + 13 + 8);
        assert_eq!(&frame[0..4], &13u32.to_le_bytes());
        assert_eq!(&frame[4..12], &7u64.to_le_bytes());
        assert_eq!(frame[12], KIND_DECIDE);
        assert_eq!(&frame[13..17], &u32::from('r').to_le_bytes());
        let check = fnv1a64(&frame[4..17]);
        assert_eq!(&frame[17..25], &check.to_le_bytes());
    }

    #[test]
    fn every_op_kind_round_trips() {
        let ops = [
            JournalOp::Open {
                policy: "SW5".to_owned(),
                model: "message:0.4".to_owned(),
            },
            JournalOp::Decide { request: 'w' },
            JournalOp::Adopt {
                policy: "SW3".to_owned(),
            },
            JournalOp::Restore {
                snapshot: "{\"version\":1}".to_owned(),
            },
            JournalOp::Close,
        ];
        let mut bytes = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            bytes.extend_from_slice(&encode_record(i as u64 + 1, op));
        }
        let scan = scan_journal(&bytes);
        assert_eq!(scan.outcome, TailOutcome::Clean);
        assert_eq!(scan.clean_len, bytes.len());
        assert_eq!(scan.records.len(), ops.len());
        for (i, (seq, op)) in scan.records.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            assert_eq!(op, &ops[i]);
        }
    }

    #[test]
    fn truncation_at_any_point_is_torn_never_panics() {
        let mut bytes = encode_record(1, &JournalOp::Decide { request: 'r' });
        bytes.extend_from_slice(&encode_record(
            2,
            &JournalOp::Adopt {
                policy: "SW7".to_owned(),
            },
        ));
        let first_len = encode_record(1, &JournalOp::Decide { request: 'r' }).len();
        for cut in 0..bytes.len() {
            let scan = scan_journal(&bytes[..cut]);
            if cut == 0 {
                assert_eq!(scan.outcome, TailOutcome::Clean);
            } else if cut < first_len {
                assert_eq!(scan.outcome, TailOutcome::Torn { offset: 0 }, "cut {cut}");
                assert!(scan.records.is_empty());
            } else if cut == first_len {
                assert_eq!(scan.outcome, TailOutcome::Clean, "cut {cut}");
                assert_eq!(scan.records.len(), 1);
            } else {
                assert_eq!(
                    scan.outcome,
                    TailOutcome::Torn { offset: first_len },
                    "cut {cut}"
                );
                assert_eq!(scan.records.len(), 1);
                assert_eq!(scan.clean_len, first_len);
            }
        }
    }

    #[test]
    fn sequence_gaps_are_corrupt_with_the_offset() {
        let mut bytes = encode_record(1, &JournalOp::Decide { request: 'r' });
        let off = bytes.len();
        bytes.extend_from_slice(&encode_record(3, &JournalOp::Decide { request: 'w' }));
        let scan = scan_journal(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.clean_len, off);
        match scan.outcome {
            TailOutcome::Corrupt { offset, ref reason } => {
                assert_eq!(offset, off);
                assert!(reason.contains("sequence gap"), "{reason}");
                assert!(reason.contains("expected 2"), "{reason}");
            }
            ref other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn undersized_body_length_is_corrupt() {
        // A frame claiming a 3-byte body (below the 9-byte seq+kind
        // minimum) with a valid checksum over those 3 bytes.
        let body = [1u8, 2, 3];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        let scan = scan_journal(&bytes);
        assert!(
            matches!(scan.outcome, TailOutcome::Corrupt { offset: 0, .. }),
            "{:?}",
            scan.outcome
        );
    }

    #[test]
    fn huge_length_word_is_torn_not_an_allocation() {
        let mut bytes = vec![0xFFu8; 4]; // len ≈ u32::MAX
        bytes.extend_from_slice(&[0u8; 32]);
        let scan = scan_journal(&bytes);
        assert_eq!(scan.outcome, TailOutcome::Torn { offset: 0 });
    }

    #[test]
    fn checkpoint_round_trips_and_rejects_tampering() {
        let core = DecisionCore::new(PolicySpec::SlidingWindow { k: 3 }, CostModel::message(0.25))
            .expect("core");
        let checkpoint = Checkpoint {
            version: CHECKPOINT_VERSION,
            seq: 42,
            snapshot: core.snapshot(),
            adapted: true,
            adapt_checkpoint: Some((5, 64)),
        };
        let text = encode_checkpoint(&checkpoint);
        assert_eq!(decode_checkpoint(&text).expect("round trip"), checkpoint);

        // Flip one character of the JSON line: the checksum must refuse.
        let mut tampered = text.clone().into_bytes();
        let json_start = text.find('\n').expect("two lines") + 1;
        tampered[json_start + 3] ^= 0x01;
        let tampered = String::from_utf8(tampered).expect("still utf-8");
        assert!(decode_checkpoint(&tampered).is_err());
    }

    #[test]
    fn checkpoint_version_skew_is_a_typed_error() {
        let core = DecisionCore::new(PolicySpec::St1, CostModel::Connection).expect("core");
        let mut checkpoint = Checkpoint {
            version: CHECKPOINT_VERSION + 9,
            seq: 0,
            snapshot: core.snapshot(),
            adapted: false,
            adapt_checkpoint: None,
        };
        let text = encode_checkpoint(&checkpoint);
        match decode_checkpoint(&text) {
            Err(ConfigError::CheckpointVersion { found, supported }) => {
                assert_eq!(found, CHECKPOINT_VERSION + 9);
                assert_eq!(supported, CHECKPOINT_VERSION);
            }
            other => panic!("expected CheckpointVersion, got {other:?}"),
        }
        checkpoint.version = CHECKPOINT_VERSION;
        assert!(decode_checkpoint(&encode_checkpoint(&checkpoint)).is_ok());
    }

    #[test]
    fn tenant_escaping_round_trips_and_rejects_noncanonical() {
        for name in ["mc1", "a/b", "..", "café", "%", "A-Z_0", ""] {
            let escaped = escape_tenant(name);
            assert!(
                escaped
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'%'),
                "{escaped}"
            );
            assert_eq!(unescape_tenant(&escaped).as_deref(), Some(name));
        }
        assert_eq!(escape_tenant("a/b"), "a%2Fb");
        // Non-canonical or malformed escapes never round-trip.
        for bad in ["%2f", "%GG", "%2", "a b", "%41"] {
            assert_eq!(unescape_tenant(bad), None, "{bad}");
        }
    }

    #[test]
    fn open_decide_survives_a_restart() {
        let dir = temp_dir("restart");
        {
            let (mut serve, _) = open_at(&dir);
            serve.handle_line(r#"{"op":"open","tenant":"mc1","policy":"SW3"}"#);
            for letter in ["r", "w", "r", "r"] {
                serve.handle_line(&format!(
                    r#"{{"op":"decide","tenant":"mc1","request":"{letter}"}}"#
                ));
            }
            serve.finalize();
        }
        let before_snapshot;
        {
            let (mut serve, report) = open_at(&dir);
            assert_eq!(report.recovered(), vec!["mc1"]);
            before_snapshot = serve.handle_line(r#"{"op":"snapshot","tenant":"mc1"}"#);
            assert!(
                before_snapshot.contains("\"decided\":4"),
                "{before_snapshot}"
            );
        }
        // A third open recovers the same state again (compaction made
        // the second recovery checkpoint-only).
        let (mut serve, report) = open_at(&dir);
        assert_eq!(report.recovered(), vec!["mc1"]);
        let again = serve.handle_line(r#"{"op":"snapshot","tenant":"mc1"}"#);
        assert_eq!(before_snapshot, again);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unflushed_journal_tail_still_replays() {
        let dir = temp_dir("tail");
        {
            let (mut serve, _) = open_at(&dir);
            serve.handle_line(r#"{"op":"open","tenant":"t","policy":"T1:2"}"#);
            serve.handle_line(r#"{"op":"decide","tenant":"t","request":"w"}"#);
            // No finalize: simulate a hard kill. File contents are still
            // visible to a same-machine reopen even without fsync.
        }
        let (mut serve, report) = open_at(&dir);
        assert_eq!(report.recovered(), vec!["t"]);
        let stats = serve.handle_line(r#"{"op":"stats","tenant":"t"}"#);
        assert!(stats.contains("\"decided\":1"), "{stats}");
        let server = serve.handle_line(r#"{"op":"stats"}"#);
        assert!(server.contains("\"replayed_records\":2"), "{server}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn closed_tenants_stay_closed_across_restart() {
        let dir = temp_dir("close");
        {
            let (mut serve, _) = open_at(&dir);
            serve.handle_line(r#"{"op":"open","tenant":"gone"}"#);
            serve.handle_line(r#"{"op":"decide","tenant":"gone","request":"r"}"#);
            serve.handle_line(r#"{"op":"close","tenant":"gone"}"#);
            serve.finalize();
        }
        let (mut serve, report) = open_at(&dir);
        assert!(report.recovered().is_empty(), "{report:?}");
        let resp = serve.handle_line(r#"{"op":"stats","tenant":"gone"}"#);
        assert!(resp.contains("unknown-tenant"), "{resp}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_tenant_quarantines_without_harming_neighbours() {
        let dir = temp_dir("quarantine");
        {
            let (mut serve, _) = open_at(&dir);
            serve.handle_line(r#"{"op":"open","tenant":"good","policy":"ST2"}"#);
            serve.handle_line(r#"{"op":"open","tenant":"bad","policy":"ST2"}"#);
            serve.handle_line(r#"{"op":"decide","tenant":"good","request":"r"}"#);
            serve.handle_line(r#"{"op":"decide","tenant":"bad","request":"r"}"#);
            serve.finalize();
        }
        // Corrupt `bad`'s checkpoint beyond recognition.
        let bad_ckpt = dir.join(TENANTS_DIR).join("bad").join(CHECKPOINT_FILE);
        fs::write(&bad_ckpt, "garbage\n").expect("overwrite checkpoint");
        let (mut serve, report) = open_at(&dir);
        assert_eq!(report.recovered(), vec!["good"]);
        assert_eq!(report.quarantined(), vec!["bad"]);
        assert!(dir.join(QUARANTINE_DIR).join("bad").exists());
        assert!(!dir.join(TENANTS_DIR).join("bad").exists());
        let good = serve.handle_line(r#"{"op":"stats","tenant":"good"}"#);
        assert!(good.contains("\"decided\":1"), "{good}");
        let bad = serve.handle_line(r#"{"op":"stats","tenant":"bad"}"#);
        assert!(bad.contains("unknown-tenant"), "{bad}");
        let server = serve.handle_line(r#"{"op":"stats"}"#);
        assert!(server.contains("\"quarantined_tenants\":1"), "{server}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stray_directories_are_skipped_not_guessed() {
        let dir = temp_dir("stray");
        fs::create_dir_all(dir.join(TENANTS_DIR).join("not%zzvalid")).expect("stray dir");
        let (_, report) = open_at(&dir);
        assert_eq!(report.skipped_dirs, vec!["not%zzvalid".to_owned()]);
        assert!(report.tenants.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_intervals_are_rejected() {
        let dir = temp_dir("zeroes");
        let mut cfg = JournalConfig::new(&dir);
        cfg.checkpoint_every = 0;
        assert!(DurableServe::open(ServeConfig::default(), cfg).is_err());
        let mut cfg = JournalConfig::new(&dir);
        cfg.fsync = FsyncPolicy::Interval(0);
        assert!(DurableServe::open(ServeConfig::default(), cfg).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_survives_restart_and_creates_tenants() {
        let dir = temp_dir("restore");
        let snapshot_json;
        {
            let (mut serve, _) = open_at(&dir);
            serve.handle_line(r#"{"op":"open","tenant":"src","policy":"SW3"}"#);
            serve.handle_line(r#"{"op":"decide","tenant":"src","request":"w"}"#);
            let resp = serve.handle_line(r#"{"op":"snapshot","tenant":"src"}"#);
            let start = resp.find("\"snapshot\":").expect("snapshot field") + "\"snapshot\":".len();
            // The snapshot value runs to the closing brace of the response.
            snapshot_json = resp[start..resp.len() - 1].to_owned();
            let restore =
                format!(r#"{{"op":"restore","tenant":"copy","snapshot":{snapshot_json}}}"#);
            let resp = serve.handle_line(&restore);
            assert!(resp.contains("\"ok\":\"restore\""), "{resp}");
            // Hard kill: no finalize, the restore lives only in the journal.
        }
        let (mut serve, report) = open_at(&dir);
        let mut recovered = report.recovered();
        recovered.sort_unstable();
        assert_eq!(recovered, vec!["copy", "src"]);
        let copy = serve.handle_line(r#"{"op":"stats","tenant":"copy"}"#);
        assert!(copy.contains("\"decided\":1"), "{copy}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_interval_compacts_the_journal() {
        let dir = temp_dir("compact");
        let mut cfg = JournalConfig::new(&dir);
        cfg.checkpoint_every = 4;
        let (mut serve, _) = DurableServe::open(ServeConfig::default(), cfg).expect("open");
        serve.handle_line(r#"{"op":"open","tenant":"t","policy":"SW3"}"#);
        for _ in 0..7 {
            serve.handle_line(r#"{"op":"decide","tenant":"t","request":"r"}"#);
        }
        // 8 records appended; the 4-record interval fired at least once.
        assert!(serve.stats().checkpoints >= 1);
        let journal = dir.join(TENANTS_DIR).join("t").join(JOURNAL_FILE);
        let len = fs::metadata(&journal).expect("journal").len();
        let full: u64 = (0..8)
            .map(|i| encode_record(i + 1, &JournalOp::Decide { request: 'r' }).len() as u64)
            .sum();
        assert!(len < full, "journal was compacted ({len} < {full})");
        let _ = fs::remove_dir_all(&dir);
    }

    /// The checkpoint records the seq of the *last* journaled record:
    /// recovery skips exactly the records the checkpoint covers and
    /// expects the surviving tail to resume at `seq + 1`. An off-by-one
    /// here would silently replay (or drop) one operation after a crash
    /// that lands between the checkpoint rename and the compaction.
    #[test]
    fn checkpoint_seq_pins_the_last_appended_record() {
        let dir = temp_dir("ckpt-seq");
        let mut cfg = JournalConfig::new(&dir);
        cfg.checkpoint_every = 4;
        let (mut serve, _) = DurableServe::open(ServeConfig::default(), cfg).expect("open");
        serve.handle_line(r#"{"op":"open","tenant":"t","policy":"SW3"}"#);
        for _ in 0..6 {
            serve.handle_line(r#"{"op":"decide","tenant":"t","request":"r"}"#);
        }
        // 7 records appended (open + 6 decides); the 4-record interval
        // fired exactly once, at append 4, so the checkpoint covers
        // seqs 1..=4 and the journal holds exactly seqs 5..=7.
        assert_eq!(serve.stats().checkpoints, 1);
        let tdir = dir.join(TENANTS_DIR).join("t");
        let text = fs::read_to_string(tdir.join(CHECKPOINT_FILE)).expect("checkpoint");
        let ckpt = decode_checkpoint(&text).expect("decode");
        assert_eq!(ckpt.seq, 4);
        let scan = scan_journal(&fs::read(tdir.join(JOURNAL_FILE)).expect("journal"));
        assert_eq!(scan.outcome, TailOutcome::Clean);
        let seqs: Vec<u64> = scan.records.iter().map(|(seq, _)| *seq).collect();
        assert_eq!(seqs, vec![5, 6, 7]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn adaptive_reselection_is_journaled_and_replayed() {
        use crate::engine::ADAPT_INTERVAL;
        let dir = temp_dir("adopt");
        let config = ServeConfig {
            adaptive: true,
            ..ServeConfig::default()
        };
        let pre;
        {
            let (mut serve, _) =
                DurableServe::open(config, JournalConfig::new(&dir)).expect("open");
            serve.handle_line(r#"{"op":"open","tenant":"a","policy":"T1:2"}"#);
            for i in 0..(ADAPT_INTERVAL * 3) {
                let letter = if i % 10 == 0 { "w" } else { "r" };
                serve.handle_line(&format!(
                    r#"{{"op":"decide","tenant":"a","request":"{letter}"}}"#
                ));
            }
            pre = serve.handle_line(r#"{"op":"stats","tenant":"a"}"#);
            assert!(pre.contains("\"policy\":\"SW"), "re-selection fired: {pre}");
            // Hard kill — replay must reproduce the adopted window even
            // though the restarted daemon runs with adaptive *off*.
        }
        let (mut serve, report) =
            DurableServe::open(ServeConfig::default(), JournalConfig::new(&dir)).expect("open");
        assert_eq!(report.recovered(), vec!["a"]);
        let post = serve.handle_line(r#"{"op":"stats","tenant":"a"}"#);
        assert_eq!(pre, post);
        let _ = fs::remove_dir_all(&dir);
    }
}
