//! The discrete-event simulation: Poisson arrivals drive the MC/SC protocol
//! over a latency-ful wireless link, with exact cost accounting and
//! continuous invariant checking.
//!
//! Requests are serialized (§3: "In practice they may occur concurrently,
//! but then some concurrency control mechanism will serialize them,
//! therefore our analysis still holds"): an arrival that lands while a
//! protocol exchange is in flight queues FIFO behind it. Under
//! serialization the cost of the run depends only on the serialized request
//! order, which is what makes the distributed execution provably equivalent
//! to the pure-policy replay — an equivalence this crate asserts at runtime
//! in oracle mode and the workspace re-checks in integration tests.

use crate::protocol::{Envelope, ProtocolState, StepOutcome};
use crate::workload::{Arrival, ArrivalProcess};
use mdr_core::{Action, ActionCounts, AllocationPolicy, CostModel, PolicySpec, Request, Schedule};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The allocation policy both nodes run.
    pub policy: PolicySpec,
    /// One-way message latency on the wireless link (time units).
    pub latency: f64,
    /// Run the in-process reference policy alongside the protocol and panic
    /// on any divergence (cheap; recommended everywhere but hot benches).
    pub oracle_check: bool,
    /// Optional lossy-link model: messages are lost independently and
    /// retransmitted until delivered (link-layer ARQ with free
    /// acknowledgements). Every transmission attempt is billed, so loss
    /// inflates the message bill by ≈ 1/(1 − p) without changing the
    /// protocol's actions — the analysis extends to unreliable links by a
    /// multiplicative factor.
    pub loss: Option<LossConfig>,
    /// Optional cellular-mobility model (§1: "the geographical area is
    /// usually divided into cells"). The MC roams between cells with
    /// different radio conditions (per-cell extra latency); the stationary
    /// computer is fixed, so — as the paper asserts — mobility changes
    /// *when* messages arrive, never *what* they cost.
    pub mobility: Option<MobilityConfig>,
}

/// Parameters of the cellular-mobility model.
#[derive(Debug, Clone)]
pub struct MobilityConfig {
    /// Extra one-way latency experienced in each cell (the cell count is
    /// this vector's length).
    pub cell_extra_latency: Vec<f64>,
    /// Rate of the exponential dwell time in a cell (handoffs per time
    /// unit).
    pub handoff_rate: f64,
    /// RNG seed for the movement process.
    pub seed: u64,
}

/// Parameters of the lossy-link model.
#[derive(Debug, Clone, Copy)]
pub struct LossConfig {
    /// Per-transmission loss probability in `[0, 1)`.
    pub loss_probability: f64,
    /// Sender timeout before each retransmission (time units).
    pub retry_timeout: f64,
    /// RNG seed for the loss process.
    pub seed: u64,
}

/// Configuration equality is deliberate about its floating-point fields:
/// they are compared by IEEE-754 total order (`f64::total_cmp`), so the
/// semantics of NaN and signed zero are explicit rather than inherited from
/// a derived float `==` (which the workspace lint bans in accounting paths).
/// Two configs compare equal exactly when they bit-for-bit describe the same
/// run.
impl PartialEq for SimConfig {
    fn eq(&self, other: &Self) -> bool {
        self.policy == other.policy
            && self.latency.total_cmp(&other.latency).is_eq()
            && self.oracle_check == other.oracle_check
            && self.loss == other.loss
            && self.mobility == other.mobility
    }
}

impl Eq for SimConfig {}

/// See [`SimConfig`]'s `PartialEq`: total-order comparison on the latency
/// vector, exact equality elsewhere.
impl PartialEq for MobilityConfig {
    fn eq(&self, other: &Self) -> bool {
        self.cell_extra_latency.len() == other.cell_extra_latency.len()
            && self
                .cell_extra_latency
                .iter()
                .zip(&other.cell_extra_latency)
                .all(|(a, b)| a.total_cmp(b).is_eq())
            && self.handoff_rate.total_cmp(&other.handoff_rate).is_eq()
            && self.seed == other.seed
    }
}

impl Eq for MobilityConfig {}

/// See [`SimConfig`]'s `PartialEq`: total-order comparison on the float
/// fields, exact equality on the seed.
impl PartialEq for LossConfig {
    fn eq(&self, other: &Self) -> bool {
        self.loss_probability
            .total_cmp(&other.loss_probability)
            .is_eq()
            && self.retry_timeout.total_cmp(&other.retry_timeout).is_eq()
            && self.seed == other.seed
    }
}

impl Eq for LossConfig {}

impl SimConfig {
    /// A config with the default link latency (0.01 time units) and oracle
    /// checking enabled.
    pub fn new(policy: PolicySpec) -> Self {
        SimConfig {
            policy,
            latency: 0.01,
            oracle_check: true,
            loss: None,
            mobility: None,
        }
    }

    /// Sets the one-way latency.
    pub fn with_latency(mut self, latency: f64) -> Self {
        assert!(latency >= 0.0, "latency must be non-negative");
        self.latency = latency;
        self
    }

    /// Disables the oracle equivalence check.
    pub fn without_oracle(mut self) -> Self {
        self.oracle_check = false;
        self
    }

    /// Enables the lossy-link model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ loss_probability < 1` and `retry_timeout > 0`.
    pub fn with_loss(mut self, loss_probability: f64, retry_timeout: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss_probability),
            "loss probability must lie in [0, 1), got {loss_probability}"
        );
        assert!(retry_timeout > 0.0, "retry timeout must be positive");
        self.loss = Some(LossConfig {
            loss_probability,
            retry_timeout,
            seed,
        });
        self
    }

    /// Enables the cellular-mobility model.
    ///
    /// # Panics
    ///
    /// Panics if no cells are given, any extra latency is negative, or the
    /// handoff rate is not positive.
    pub fn with_mobility(
        mut self,
        cell_extra_latency: Vec<f64>,
        handoff_rate: f64,
        seed: u64,
    ) -> Self {
        assert!(!cell_extra_latency.is_empty(), "at least one cell required");
        assert!(
            cell_extra_latency.iter().all(|&l| l >= 0.0),
            "cell latencies must be non-negative"
        );
        assert!(handoff_rate > 0.0, "handoff rate must be positive");
        self.mobility = Some(MobilityConfig {
            cell_extra_latency,
            handoff_rate,
            seed,
        });
        self
    }
}

/// Stopping rule for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunLimit {
    /// Stop after this many relevant requests have been *served*.
    Requests(usize),
    /// Stop at the first arrival after this simulation time.
    Time(f64),
}

/// What happened during a run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// The serialized request order the run actually served.
    pub schedule: Schedule,
    /// Action tallies (prices derive from these).
    pub counts: ActionCounts,
    /// Wireless messages sent, by billing class.
    pub data_messages: u64,
    /// Control messages sent.
    pub control_messages: u64,
    /// Cellular connections used.
    pub connections: u64,
    /// Simulation time of the last served request's completion.
    pub makespan: f64,
    /// Mean time from a read's arrival to its completion (queueing +
    /// protocol latency).
    pub mean_read_latency: f64,
    /// Requests that had to queue behind an in-flight exchange.
    pub queued_requests: u64,
    /// Replica allocations performed.
    pub allocations: u64,
    /// Replica deallocations performed.
    pub deallocations: u64,
    /// Transmission attempts lost and repeated by the link-layer ARQ
    /// (0 on a lossless link).
    pub retransmissions: u64,
    /// Cell handoffs the MC performed (0 without the mobility model).
    pub handoffs: u64,
}

impl SimReport {
    /// Total communication cost under `model`.
    pub fn cost(&self, model: CostModel) -> f64 {
        match model {
            CostModel::Connection => self.connections as f64,
            CostModel::Message { omega } => {
                self.data_messages as f64 + omega * self.control_messages as f64
            }
        }
    }

    /// Mean communication cost per relevant request under `model`.
    pub fn cost_per_request(&self, model: CostModel) -> f64 {
        let n = self.counts.total();
        if n == 0 {
            0.0
        } else {
            self.cost(model) / n as f64
        }
    }
}

#[derive(Debug)]
enum Event {
    Arrival(Arrival),
    /// The single in-flight envelope reaches its destination (requests are
    /// serialized, so the protocol wire never holds more than one).
    Deliver,
    /// The MC crosses into another cell.
    Handoff,
}

/// Heap entry ordered by time (earliest first), FIFO within ties.
struct Scheduled {
    at: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .at
            .partial_cmp(&self.at)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The simulator. Owns the two protocol nodes and the event queue.
pub struct Simulation {
    config: SimConfig,
    /// The protocol transition relation (both nodes + wire + ledger); the
    /// event loop only adds time, queueing and billing on top.
    protocol: ProtocolState,
    oracle: Option<Box<dyn AllocationPolicy>>,
    events: BinaryHeap<Scheduled>,
    seq: u64,
    /// Arrivals waiting for the in-flight exchange to finish.
    pending: VecDeque<Arrival>,
    in_flight: Option<Exchange>,
    now: f64,
    // accounting
    schedule: Schedule,
    data_messages: u64,
    control_messages: u64,
    queued_requests: u64,
    retransmissions: u64,
    link_rng: Option<rand::rngs::StdRng>,
    mobility_rng: Option<rand::rngs::StdRng>,
    current_cell: usize,
    handoffs: u64,
    read_latency_sum: f64,
    reads_completed: u64,
    served: usize,
    /// Absolute request-count target for the current `run` call (serving
    /// stops exactly there, even mid-drain).
    target: usize,
}

/// Book-keeping for the exchange currently on the wire.
#[derive(Debug, Clone, Copy)]
struct Exchange {
    request: Request,
    arrived_at: f64,
}

impl Simulation {
    /// Creates a simulation in the policy's initial state.
    pub fn new(config: SimConfig) -> Self {
        use rand::SeedableRng;
        let link_rng = config
            .loss
            .map(|l| rand::rngs::StdRng::seed_from_u64(l.seed));
        let mobility_rng = config
            .mobility
            .as_ref()
            .map(|m| rand::rngs::StdRng::seed_from_u64(m.seed));
        Simulation {
            protocol: ProtocolState::new(config.policy),
            oracle: config.oracle_check.then(|| config.policy.build()),
            config,
            events: BinaryHeap::new(),
            seq: 0,
            pending: VecDeque::new(),
            in_flight: None,
            now: 0.0,
            schedule: Schedule::new(),
            data_messages: 0,
            control_messages: 0,
            queued_requests: 0,
            retransmissions: 0,
            link_rng,
            mobility_rng,
            current_cell: 0,
            handoffs: 0,
            read_latency_sum: 0.0,
            reads_completed: 0,
            served: 0,
            target: usize::MAX,
        }
    }

    fn push_event(&mut self, at: f64, event: Event) {
        self.seq += 1;
        self.events.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
    }

    /// Bills and schedules the delivery of an envelope the protocol just put
    /// on the wire. Under the lossy-link model the sender retransmits after
    /// each timeout until one attempt gets through; every attempt is billed.
    fn transmit(&mut self, envelope: &Envelope) {
        let attempts = match (self.config.loss, &mut self.link_rng) {
            (Some(loss), Some(rng)) => {
                use rand::RngExt;
                let mut attempts = 1u64;
                while rng.random::<f64>() < loss.loss_probability {
                    attempts += 1;
                }
                attempts
            }
            _ => 1,
        };
        self.retransmissions += attempts - 1;
        match envelope.message.class() {
            crate::wire::MessageClass::Data => self.data_messages += attempts,
            crate::wire::MessageClass::Control => self.control_messages += attempts,
        }
        let retry_delay = (attempts - 1) as f64 * self.config.loss.map_or(0.0, |l| l.retry_timeout);
        let cell_extra = self
            .config
            .mobility
            .as_ref()
            .map_or(0.0, |m| m.cell_extra_latency[self.current_cell]);
        self.push_event(
            self.now + retry_delay + self.config.latency + cell_extra,
            Event::Deliver,
        );
    }

    /// Runs the protocol over `workload` until `limit`, returning the
    /// report.
    ///
    /// # Panics
    ///
    /// Panics (in oracle mode) if the distributed execution ever diverges
    /// from the reference policy, or if a protocol invariant (single window
    /// owner, replica freshness) is violated.
    pub fn run(&mut self, workload: &mut dyn ArrivalProcess, limit: RunLimit) -> SimReport {
        self.target = match limit {
            RunLimit::Requests(n) => self.served.saturating_add(n),
            RunLimit::Time(_) => usize::MAX,
        };
        let target = self.target;
        // Prime the movement process.
        if self.config.mobility.is_some() {
            self.schedule_next_handoff();
        }
        // Prime the first arrival.
        if let Some(a) = workload.next_arrival() {
            if !matches!(limit, RunLimit::Time(t) if a.time > t) {
                self.push_event(a.time, Event::Arrival(a));
            }
        }
        while self.served < target {
            let Some(Scheduled { at, event, .. }) = self.events.pop() else {
                break;
            };
            debug_assert!(at >= self.now - 1e-9, "time went backwards");
            self.now = at.max(self.now);
            match event {
                Event::Arrival(arrival) => {
                    // Fetch the next arrival before handling this one so the
                    // queue never starves.
                    if let Some(next) = workload.next_arrival() {
                        let stop = matches!(limit, RunLimit::Time(t) if next.time > t);
                        if !stop {
                            self.push_event(next.time, Event::Arrival(next));
                        }
                    }
                    if self.in_flight.is_some() {
                        self.queued_requests += 1;
                        self.pending.push_back(arrival);
                    } else {
                        self.begin_service(arrival);
                    }
                }
                Event::Deliver => self.handle_delivery(),
                Event::Handoff => {
                    self.perform_handoff();
                    self.schedule_next_handoff();
                }
            }
        }
        self.report()
    }

    /// Draws the next exponential dwell time and schedules the handoff.
    fn schedule_next_handoff(&mut self) {
        let (Some(mobility), Some(rng)) =
            (self.config.mobility.as_ref(), self.mobility_rng.as_mut())
        else {
            unreachable!("handoff scheduling requires the mobility model")
        };
        let rate = mobility.handoff_rate;
        use rand::RngExt;
        let u: f64 = rng.random();
        let dwell = -f64::ln(1.0 - u) / rate;
        self.push_event(self.now + dwell, Event::Handoff);
    }

    /// Moves the MC to a uniformly chosen *different* cell.
    fn perform_handoff(&mut self) {
        let (Some(mobility), Some(rng)) =
            (self.config.mobility.as_ref(), self.mobility_rng.as_mut())
        else {
            unreachable!("handoffs require the mobility model")
        };
        let cells = mobility.cell_extra_latency.len();
        if cells > 1 {
            use rand::RngExt;
            let mut next = (rng.random::<f64>() * (cells - 1) as f64) as usize;
            if next >= self.current_cell {
                next += 1;
            }
            self.current_cell = next.min(cells - 1);
        }
        self.handoffs += 1;
    }

    /// Starts serving one arrival by submitting it to the protocol. Local
    /// operations complete inline; remote ones put a message on the wire and
    /// park in `in_flight`.
    fn begin_service(&mut self, arrival: Arrival) {
        debug_assert!(self.in_flight.is_none());
        self.schedule.push(arrival.request);
        match self.protocol.submit(arrival.request) {
            StepOutcome::Completed(action) => {
                if action == Action::LocalRead {
                    self.reads_completed += 1; // zero added latency
                }
                self.complete(arrival, action);
            }
            StepOutcome::Sent(envelope) => {
                self.in_flight = Some(Exchange {
                    request: arrival.request,
                    arrived_at: arrival.time,
                });
                self.transmit(&envelope);
            }
        }
    }

    /// Handles the scheduled arrival of the in-flight envelope by stepping
    /// the protocol's transition relation.
    fn handle_delivery(&mut self) {
        let Some(exchange) = self.in_flight else {
            unreachable!("delivery without an exchange in flight")
        };
        match self.protocol.deliver(0) {
            StepOutcome::Sent(envelope) => self.transmit(&envelope),
            StepOutcome::Completed(action) => {
                if matches!(action, Action::RemoteRead { .. }) {
                    self.read_latency_sum += self.now - exchange.arrived_at;
                    self.reads_completed += 1;
                }
                self.finish_exchange(action);
            }
        }
    }

    fn finish_exchange(&mut self, action: Action) {
        let Some(exchange) = self.in_flight.take() else {
            unreachable!("no exchange to finish")
        };
        self.complete(
            Arrival {
                time: exchange.arrived_at,
                request: exchange.request,
            },
            action,
        );
        // Serve queued arrivals until one needs the wire (or none are left):
        // local reads and silent writes complete inline and must not stall
        // the queue. Respect the request target exactly.
        while self.in_flight.is_none() && self.served < self.target {
            let Some(next) = self.pending.pop_front() else {
                break;
            };
            self.begin_service(next);
        }
    }

    /// Records the served request (the protocol ledger already tallied the
    /// action) and re-checks all invariants.
    fn complete(&mut self, arrival: Arrival, action: Action) {
        self.served += 1;
        self.check_invariants(arrival.request, action);
    }

    fn check_invariants(&mut self, request: Request, action: Action) {
        let (sc, mc) = (self.protocol.sc(), self.protocol.mc());
        // Replica agreement between the two sides.
        assert_eq!(
            sc.mc_has_copy(),
            mc.has_copy(),
            "SC and MC disagree about the replica after {action}"
        );
        // Fresh replica after any completed exchange.
        if let Some(v) = mc.cached_version() {
            assert_eq!(v, sc.version(), "replica left stale after {action}");
        }
        // Single window owner for window policies.
        if matches!(self.config.policy, PolicySpec::SlidingWindow { .. }) {
            assert_ne!(
                sc.in_charge(),
                mc.in_charge(),
                "window ownership must live on exactly one side"
            );
        }
        // Oracle equivalence: the distributed protocol must take exactly the
        // action the reference policy takes.
        if let Some(oracle) = &mut self.oracle {
            let expected = oracle.on_request(request);
            assert_eq!(
                action, expected,
                "distributed execution diverged from the reference policy on request {}",
                self.served
            );
            assert_eq!(
                oracle.has_copy(),
                self.protocol.mc().has_copy(),
                "replica state diverged"
            );
        }
    }

    fn report(&self) -> SimReport {
        let counts = self.protocol.counts();
        SimReport {
            schedule: self.schedule.clone(),
            counts,
            data_messages: self.data_messages,
            control_messages: self.control_messages,
            connections: counts.connections(),
            makespan: self.now,
            mean_read_latency: if self.reads_completed == 0 {
                0.0
            } else {
                self.read_latency_sum / self.reads_completed as f64
            },
            queued_requests: self.queued_requests,
            allocations: counts.allocations(),
            deallocations: counts.deallocations(),
            retransmissions: self.retransmissions,
            handoffs: self.handoffs,
        }
    }
}

/// Convenience: simulate `spec` over a fresh Poisson workload.
pub fn simulate_poisson(spec: PolicySpec, theta: f64, requests: usize, seed: u64) -> SimReport {
    let mut sim = Simulation::new(SimConfig::new(spec));
    let mut workload = crate::workload::PoissonWorkload::from_theta(1.0, theta, seed);
    sim.run(&mut workload, RunLimit::Requests(requests))
}

/// Convenience: push an explicit schedule through the full protocol.
pub fn simulate_schedule(spec: PolicySpec, schedule: &Schedule) -> SimReport {
    let mut sim = Simulation::new(SimConfig::new(spec).with_latency(0.001));
    let mut workload = crate::workload::TraceWorkload::new(schedule.clone(), 1.0);
    sim.run(&mut workload, RunLimit::Requests(schedule.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdr_core::run_spec;

    #[test]
    fn protocol_equals_reference_policy_on_fixed_schedules() {
        let schedules = ["rrrwwwrrr", "rwrwrwrwrw", "wwwwwrrrrrwwwww", "r", "w", ""];
        for spec in PolicySpec::roster(&[1, 3, 5, 9], &[1, 2, 4]) {
            for s in schedules {
                let sched: Schedule = s.parse().unwrap();
                let report = simulate_schedule(spec, &sched);
                let reference = run_spec(spec, &sched, CostModel::Connection);
                assert_eq!(report.counts, reference.counts, "{spec} on {s}");
                assert_eq!(report.cost(CostModel::Connection), reference.total_cost);
                for omega in [0.0, 0.3, 1.0] {
                    let model = CostModel::message(omega);
                    let reference = run_spec(spec, &sched, model);
                    assert!(
                        (report.cost(model) - reference.total_cost).abs() < 1e-9,
                        "{spec} on {s} at ω={omega}"
                    );
                }
            }
        }
    }

    #[test]
    fn protocol_equals_reference_on_poisson_workloads() {
        for spec in PolicySpec::roster(&[1, 7], &[3]) {
            for theta in [0.2, 0.5, 0.8] {
                // oracle_check is on by default: the run itself asserts
                // step-by-step equivalence.
                let report = simulate_poisson(spec, theta, 2_000, 99);
                assert_eq!(report.counts.total(), 2_000);
            }
        }
    }

    #[test]
    fn empirical_cost_matches_analytic_exp() {
        // SW5 at θ = 0.3 in the connection model, 60k requests: the
        // per-request cost must approach Eq. 5.
        let report = simulate_poisson(PolicySpec::SlidingWindow { k: 5 }, 0.3, 60_000, 7);
        let measured = report.cost_per_request(CostModel::Connection);
        // π_5(0.3) = P(Bin(5, 0.3) ≤ 2).
        let pi = (0..=2)
            .map(|j| {
                let c = [1.0, 5.0, 10.0][j];
                c * 0.3f64.powi(j as i32) * 0.7f64.powi(5 - j as i32)
            })
            .sum::<f64>();
        let analytic = 0.3 * pi + 0.7 * (1.0 - pi);
        assert!(
            (measured - analytic).abs() < 0.01,
            "{measured} vs {analytic}"
        );
    }

    #[test]
    fn makespan_and_latency_grow_with_link_latency() {
        let sched: Schedule = "rwrwrwrwrw".parse().unwrap();
        let run = |latency: f64| {
            let mut sim = Simulation::new(SimConfig::new(PolicySpec::St1).with_latency(latency));
            let mut w = crate::workload::TraceWorkload::new(sched.clone(), 1.0);
            sim.run(&mut w, RunLimit::Requests(sched.len()))
        };
        let fast = run(0.0);
        let slow = run(0.4);
        assert!(slow.mean_read_latency > fast.mean_read_latency);
        assert!(slow.makespan >= fast.makespan);
        // ST1 remote read costs a round trip.
        assert!((slow.mean_read_latency - 0.8).abs() < 1e-9);
    }

    #[test]
    fn queueing_happens_when_arrivals_outpace_the_link() {
        // Requests every 0.1 time units, round trip 2×0.3: reads must queue.
        let sched = Schedule::all_reads(50);
        let mut sim = Simulation::new(SimConfig::new(PolicySpec::St1).with_latency(0.3));
        let mut w = crate::workload::TraceWorkload::new(sched, 0.1);
        let report = sim.run(&mut w, RunLimit::Requests(50));
        assert!(report.queued_requests > 0);
        assert_eq!(report.counts.total(), 50);
        // Serialization keeps the cost exactly reads × 1 connection.
        assert_eq!(report.cost(CostModel::Connection), 50.0);
    }

    #[test]
    fn time_limit_stops_the_run() {
        let mut sim = Simulation::new(SimConfig::new(PolicySpec::St2));
        let mut w = crate::workload::PoissonWorkload::from_theta(10.0, 0.5, 3);
        let report = sim.run(&mut w, RunLimit::Time(5.0));
        // ≈ 50 expected arrivals; generous envelope.
        let n = report.counts.total();
        assert!(n > 10 && n < 150, "{n}");
        assert!(report.makespan <= 5.0 + 1.0, "{}", report.makespan);
    }

    #[test]
    fn message_counts_split_by_class() {
        // SW1 on r,w,r,w…: each read = 1 control + 1 data; each write = 1
        // control (delete-request).
        let sched = Schedule::alternating(Request::Read, 20);
        let report = simulate_schedule(PolicySpec::SlidingWindow { k: 1 }, &sched);
        assert_eq!(report.data_messages, 10);
        assert_eq!(report.control_messages, 20);
        assert_eq!(report.cost(CostModel::message(0.5)), 10.0 + 0.5 * 20.0);
    }

    #[test]
    fn report_costs_are_consistent_with_counts() {
        let report = simulate_poisson(PolicySpec::SlidingWindow { k: 3 }, 0.5, 3_000, 21);
        assert_eq!(report.data_messages, report.counts.data_messages());
        assert_eq!(report.control_messages, report.counts.control_messages());
        assert_eq!(report.connections, report.counts.connections());
        assert_eq!(report.allocations, report.counts.allocations());
        assert_eq!(report.deallocations, report.counts.deallocations());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate_poisson(PolicySpec::SlidingWindow { k: 9 }, 0.4, 5_000, 1234);
        let b = simulate_poisson(PolicySpec::SlidingWindow { k: 9 }, 0.4, 5_000, 1234);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;
    use mdr_core::run_spec;

    fn lossy_run(loss: f64, seed: u64) -> SimReport {
        let spec = PolicySpec::SlidingWindow { k: 5 };
        let config = SimConfig::new(spec).with_loss(loss, 0.05, seed);
        let mut sim = Simulation::new(config);
        let mut workload = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 99);
        sim.run(&mut workload, RunLimit::Requests(8_000))
    }

    #[test]
    fn zero_loss_is_identical_to_the_lossless_link() {
        let lossless = {
            let mut sim = Simulation::new(SimConfig::new(PolicySpec::SlidingWindow { k: 5 }));
            let mut w = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 99);
            sim.run(&mut w, RunLimit::Requests(8_000))
        };
        let zero = lossy_run(0.0, 1);
        assert_eq!(zero.counts, lossless.counts);
        assert_eq!(zero.data_messages, lossless.data_messages);
        assert_eq!(zero.retransmissions, 0);
    }

    #[test]
    fn loss_inflates_the_bill_without_changing_actions() {
        // The oracle check stays on: actions must match the reference
        // policy exactly even on a lossy link.
        let lossy = lossy_run(0.3, 7);
        let spec = PolicySpec::SlidingWindow { k: 5 };
        let reference = run_spec(spec, &lossy.schedule, CostModel::Connection);
        assert_eq!(lossy.counts, reference.counts, "actions unchanged by loss");
        assert!(lossy.retransmissions > 0);
        // Bill inflation ≈ 1/(1 − p): each transmission succeeds with
        // probability 0.7, so attempts per message average 1/0.7.
        let base = (lossy.counts.data_messages() + lossy.counts.control_messages()) as f64;
        let billed = (lossy.data_messages + lossy.control_messages) as f64;
        let inflation = billed / base;
        assert!(
            (inflation - 1.0 / 0.7).abs() < 0.05,
            "inflation {inflation} vs expected {:.4}",
            1.0 / 0.7
        );
    }

    #[test]
    fn retransmissions_add_latency() {
        let lossless = lossy_run(0.0, 3);
        let lossy = lossy_run(0.5, 3);
        assert!(lossy.mean_read_latency > lossless.mean_read_latency);
    }

    #[test]
    fn loss_model_is_deterministic_per_seed() {
        let a = lossy_run(0.4, 11);
        let b = lossy_run(0.4, 11);
        assert_eq!(a, b);
        let c = lossy_run(0.4, 12);
        assert_ne!(a.retransmissions, c.retransmissions);
    }

    #[test]
    fn invalid_loss_parameters_are_rejected() {
        let spec = PolicySpec::St1;
        assert!(std::panic::catch_unwind(|| SimConfig::new(spec).with_loss(1.0, 0.1, 0)).is_err());
        assert!(std::panic::catch_unwind(|| SimConfig::new(spec).with_loss(-0.1, 0.1, 0)).is_err());
        assert!(std::panic::catch_unwind(|| SimConfig::new(spec).with_loss(0.3, 0.0, 0)).is_err());
    }
}

#[cfg(test)]
mod mobility_tests {
    use super::*;

    fn mobile_run(mobility: bool, seed: u64) -> SimReport {
        let spec = PolicySpec::SlidingWindow { k: 5 };
        let mut config = SimConfig::new(spec).with_latency(0.02);
        if mobility {
            // Three cells: a fast downtown microcell, a mid suburb, and a
            // slow rural macrocell.
            config = config.with_mobility(vec![0.0, 0.05, 0.2], 0.5, seed);
        }
        let mut sim = Simulation::new(config);
        let mut workload = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 4242);
        sim.run(&mut workload, RunLimit::Requests(6_000))
    }

    #[test]
    fn mobility_never_changes_cost() {
        // §1: the stationary computer "does not change when the mobile
        // computer moves from cell to cell" — so neither does the bill.
        let fixed = mobile_run(false, 0);
        let roaming = mobile_run(true, 9);
        assert_eq!(fixed.counts, roaming.counts);
        assert_eq!(
            fixed.cost(CostModel::message(0.5)),
            roaming.cost(CostModel::message(0.5))
        );
        assert_eq!(
            fixed.cost(CostModel::Connection),
            roaming.cost(CostModel::Connection)
        );
    }

    #[test]
    fn mobility_changes_latency_and_counts_handoffs() {
        let fixed = mobile_run(false, 0);
        let roaming = mobile_run(true, 9);
        assert!(
            roaming.handoffs > 100,
            "dwell 2 time units over a ~6000-unit run"
        );
        assert!(roaming.mean_read_latency > fixed.mean_read_latency);
        assert_eq!(fixed.handoffs, 0);
    }

    #[test]
    fn mobility_is_deterministic_per_seed() {
        let a = mobile_run(true, 5);
        let b = mobile_run(true, 5);
        assert_eq!(a, b);
        let c = mobile_run(true, 6);
        assert_ne!(a.handoffs, c.handoffs);
    }

    #[test]
    fn handoff_always_moves_to_a_different_cell() {
        // With two cells the MC must alternate; verified indirectly via the
        // latency mix: both cells' latencies must appear.
        let spec = PolicySpec::St1;
        let config = SimConfig::new(spec)
            .with_latency(0.0)
            .with_mobility(vec![0.0, 1.0], 5.0, 3);
        let mut sim = Simulation::new(config);
        let mut workload = crate::workload::PoissonWorkload::from_theta(0.2, 0.0, 7);
        let report = sim.run(&mut workload, RunLimit::Requests(400));
        // All requests are reads (θ = 0); mean read latency is a mix of
        // 2·0.0 and 2·1.0 round trips — strictly between the extremes.
        assert!(report.mean_read_latency > 0.1 && report.mean_read_latency < 1.9);
        assert!(report.handoffs > 50);
    }

    #[test]
    fn invalid_mobility_parameters_are_rejected() {
        let spec = PolicySpec::St1;
        assert!(
            std::panic::catch_unwind(|| SimConfig::new(spec).with_mobility(vec![], 1.0, 0))
                .is_err()
        );
        assert!(
            std::panic::catch_unwind(|| SimConfig::new(spec).with_mobility(
                vec![0.1, -0.2],
                1.0,
                0
            ))
            .is_err()
        );
        assert!(
            std::panic::catch_unwind(|| SimConfig::new(spec).with_mobility(vec![0.1], 0.0, 0))
                .is_err()
        );
    }
}
