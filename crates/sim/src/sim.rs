//! The discrete-event simulation: Poisson arrivals drive the MC/SC protocol
//! over a latency-ful wireless link, with exact cost accounting and
//! continuous invariant checking.
//!
//! Requests are serialized (§3: "In practice they may occur concurrently,
//! but then some concurrency control mechanism will serialize them,
//! therefore our analysis still holds"): an arrival that lands while a
//! protocol exchange is in flight queues FIFO behind it. Under
//! serialization the cost of the run depends only on the serialized request
//! order, which is what makes the distributed execution provably equivalent
//! to the pure-policy replay — an equivalence this crate asserts at runtime
//! in oracle mode and the workspace re-checks in integration tests.

use crate::calendar::{key_lt, CalendarQueue};
use crate::engine::DecisionCore;
use crate::faults::{ArqConfig, FaultKind, FaultPlan};
use crate::perf::{BatchedF64, PerfStats, Stopwatch};
use crate::protocol::{Envelope, ProtocolState, StepOutcome};
use crate::topology::{HandoffLeg, HandoffSnapshot, TopologyConfig};
use crate::workload::{Arrival, ArrivalProcess};
use mdr_core::{Action, ActionCounts, CostModel, PolicySpec, Request, Schedule};
use std::collections::VecDeque;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The allocation policy both nodes run.
    pub policy: PolicySpec,
    /// One-way message latency on the wireless link (time units).
    pub latency: f64,
    /// Run the in-process reference policy alongside the protocol and panic
    /// on any divergence (cheap; recommended everywhere but hot benches).
    pub oracle_check: bool,
    /// Optional *instant* lossy-link model: messages are lost independently
    /// and repeated until one attempt gets through, with the whole retry
    /// sequence resolved at send time (acknowledgements are free and
    /// unlosable). Every transmission attempt is billed, so loss inflates
    /// the message bill by ≈ 1/(1 − p) without changing the protocol's
    /// actions — the analysis extends to unreliable links by a
    /// multiplicative factor. For a transport that actually plays the
    /// timeout/retransmit game in simulated time — bounded retries,
    /// declared disconnections, degraded mode — use [`SimConfig::arq`];
    /// the two link models are mutually exclusive.
    pub loss: Option<LossConfig>,
    /// Optional deterministic ARQ transport (robustness extension, see
    /// `docs/faults.md`): per-envelope stop-and-wait acknowledgement,
    /// timeout-driven retransmission with exponential backoff and
    /// seed-derived jitter, a bounded retry budget escalating to a declared
    /// disconnection, and graceful degradation under sustained partition.
    /// Mutually exclusive with [`SimConfig::loss`].
    pub arq: Option<ArqConfig>,
    /// Optional cellular-mobility model (§1: "the geographical area is
    /// usually divided into cells"). The MC roams between cells with
    /// different radio conditions (per-cell extra latency); the stationary
    /// computer is fixed, so — as the paper asserts — mobility changes
    /// *when* messages arrive, never *what* they cost.
    pub mobility: Option<MobilityConfig>,
    /// Optional fault injection: deterministic disconnection windows, MC
    /// crashes, SC outages and message duplication/reordering (see
    /// [`FaultPlan`] and `docs/faults.md`).
    pub faults: Option<FaultPlan>,
    /// Optional multi-cell topology with fault-hardened handoff (mobility
    /// extension, see `docs/topology.md`): the MC migrates between cells
    /// on a seed-driven plan and window ownership follows it via a
    /// three-way, epoch-fenced handoff protocol over the wired backbone.
    /// An inert plan (zero migration rate) schedules no events and draws
    /// no randomness, so it reproduces the single-cell run exactly.
    pub topology: Option<TopologyConfig>,
}

/// Parameters of the cellular-mobility model.
#[derive(Debug, Clone)]
pub struct MobilityConfig {
    /// Extra one-way latency experienced in each cell (the cell count is
    /// this vector's length).
    pub cell_extra_latency: Vec<f64>,
    /// Rate of the exponential dwell time in a cell (handoffs per time
    /// unit).
    pub handoff_rate: f64,
    /// RNG seed for the movement process.
    pub seed: u64,
}

/// Parameters of the lossy-link model.
#[derive(Debug, Clone, Copy)]
pub struct LossConfig {
    /// Per-transmission loss probability in `[0, 1)`.
    pub loss_probability: f64,
    /// Sender timeout before each retransmission (time units).
    pub retry_timeout: f64,
    /// RNG seed for the loss process.
    pub seed: u64,
}

/// Configuration equality is deliberate about its floating-point fields:
/// they are compared by IEEE-754 total order (`f64::total_cmp`), so the
/// semantics of NaN and signed zero are explicit rather than inherited from
/// a derived float `==` (which the workspace lint bans in accounting paths).
/// Two configs compare equal exactly when they bit-for-bit describe the same
/// run.
impl PartialEq for SimConfig {
    fn eq(&self, other: &Self) -> bool {
        self.policy == other.policy
            && self.latency.total_cmp(&other.latency).is_eq()
            && self.oracle_check == other.oracle_check
            && self.loss == other.loss
            && self.arq == other.arq
            && self.mobility == other.mobility
            && self.faults == other.faults
            && self.topology == other.topology
    }
}

impl Eq for SimConfig {}

/// See [`SimConfig`]'s `PartialEq`: total-order comparison on the latency
/// vector, exact equality elsewhere.
impl PartialEq for MobilityConfig {
    fn eq(&self, other: &Self) -> bool {
        self.cell_extra_latency.len() == other.cell_extra_latency.len()
            && self
                .cell_extra_latency
                .iter()
                .zip(&other.cell_extra_latency)
                .all(|(a, b)| a.total_cmp(b).is_eq())
            && self.handoff_rate.total_cmp(&other.handoff_rate).is_eq()
            && self.seed == other.seed
    }
}

impl Eq for MobilityConfig {}

/// See [`SimConfig`]'s `PartialEq`: total-order comparison on the float
/// fields, exact equality on the seed.
impl PartialEq for LossConfig {
    fn eq(&self, other: &Self) -> bool {
        self.loss_probability
            .total_cmp(&other.loss_probability)
            .is_eq()
            && self.retry_timeout.total_cmp(&other.retry_timeout).is_eq()
            && self.seed == other.seed
    }
}

impl Eq for LossConfig {}

impl SimConfig {
    /// Crate-internal default construction shared with the
    /// [`crate::SimBuilder`] front door.
    pub(crate) fn defaults(policy: PolicySpec) -> Self {
        SimConfig {
            policy,
            latency: 0.01,
            oracle_check: true,
            loss: None,
            arq: None,
            mobility: None,
            faults: None,
            topology: None,
        }
    }
}

/// Stopping rule for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunLimit {
    /// Stop after this many relevant requests have been *served*.
    Requests(usize),
    /// Stop at the first arrival after this simulation time.
    Time(f64),
}

/// What happened during a run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// The serialized request order the run actually served.
    pub schedule: Schedule,
    /// Action tallies (prices derive from these).
    pub counts: ActionCounts,
    /// Wireless messages sent, by billing class.
    pub data_messages: u64,
    /// Control messages sent.
    pub control_messages: u64,
    /// Cellular connections used.
    pub connections: u64,
    /// Simulation time of the last served request's completion.
    pub makespan: f64,
    /// Mean time from a read's arrival to its completion (queueing +
    /// protocol latency).
    pub mean_read_latency: f64,
    /// Requests that had to queue behind an in-flight exchange.
    pub queued_requests: u64,
    /// Replica allocations performed.
    pub allocations: u64,
    /// Replica deallocations performed.
    pub deallocations: u64,
    /// Transmission attempts beyond each envelope's first — repeats by the
    /// instant loss model, or timed retransmissions by the ARQ transport
    /// (0 on a lossless link).
    pub retransmissions: u64,
    /// Retransmissions whose exchange eventually settled (completed or
    /// reconciled) rather than being aborted; together with
    /// `aborted_messages`, `reconciliation_messages` and `arq_acks` these
    /// close the billing identity `billed = ledger + settled retransmissions
    /// + aborted + reconciliation + acks`, which the online
    /// [`InvariantMonitor`] asserts at every completion.
    pub settled_retransmissions: u64,
    /// Transport-level ARQ acknowledgements sent (billed as control
    /// messages; 0 without the ARQ transport).
    pub arq_acks: u64,
    /// Times the ARQ retry budget was exhausted and the transport declared
    /// the link disconnected.
    pub retry_escalations: u64,
    /// Requests the degraded-mode transport refused during a sustained
    /// partition (typed outcomes; these never enter the schedule, the
    /// ledger, or the oracle).
    pub shed: Vec<ShedRequest>,
    /// Reads served from the MC replica while partitioned beyond the
    /// degradation deadline (staleness-tracked; included in the normal
    /// local-read ledger counts).
    pub degraded_reads: u64,
    /// Total partition age over all degraded reads (time units); divide by
    /// `degraded_reads` for the mean staleness bound.
    pub staleness_sum: f64,
    /// Total time from partition start to the first successful delivery
    /// after it, over all recoveries (time units).
    pub recovery_time_sum: f64,
    /// Partitions the transport recovered from (a successful delivery
    /// followed the declared or injected outage).
    pub recoveries: u64,
    /// Online invariant checks the [`InvariantMonitor`] performed during
    /// the run.
    pub invariant_checks: u64,
    /// Events the simulation loop processed — a deterministic fact of
    /// config, workload and seeds (the denominator-free half of the
    /// [`perf`](crate::perf) measurements; wall time stays out of the
    /// report so serial and parallel sweeps compare equal).
    pub events_processed: u64,
    /// Cell handoffs the MC performed (0 without the mobility model).
    pub handoffs: u64,
    /// Disconnection windows injected by the fault plan.
    pub disconnects: u64,
    /// Disconnections that were MC crashes (volatile or stable).
    pub mc_crashes: u64,
    /// Disconnections that were SC outages.
    pub sc_outages: u64,
    /// Ghost envelope copies the network injected (duplication and stale
    /// reordering). Ghosts are never billed — they are a network artifact,
    /// not a send.
    pub duplicated_deliveries: u64,
    /// Deliveries the epoch/sequence guards discarded (ghost copies plus
    /// envelopes destroyed by a disconnection).
    pub discarded_deliveries: u64,
    /// Billed transmission attempts that belonged to exchanges a
    /// disconnection later aborted (wasted traffic; included in the
    /// message totals above).
    pub aborted_messages: u64,
    /// Billed transmission attempts of the reconnection handshake
    /// (included in the message totals above).
    pub reconciliation_messages: u64,
    /// Reconnection handshakes completed after MC crashes.
    pub reconciliations: u64,
    /// Cell migrations the topology's mobility plan performed (0 without
    /// a [`TopologyConfig`]; distinct from `handoffs`, which counts the
    /// latency-only cellular model's crossings).
    pub migrations: u64,
    /// Three-way ownership handoffs that committed at the target cell.
    pub handoffs_committed: u64,
    /// Handoff attempts aborted by the deadline or re-fenced by a
    /// migration mid-flight (ownership rolled back to the origin cell).
    pub handoffs_aborted: u64,
    /// Backbone transmission attempts of handoff legs (billed as their
    /// own traffic class, *not* part of the §3 wireless bill above).
    pub handoff_messages: u64,
    /// Handoff leg attempts whose flight eventually committed.
    pub settled_handoff_messages: u64,
    /// Handoff leg attempts whose flight was aborted (wasted backbone
    /// traffic; included in `handoff_messages`).
    pub aborted_handoff_messages: u64,
    /// Invalidation traffic billed on commit (third message class): one
    /// broadcast per commit round, or one unicast per stale replica.
    pub invalidation_messages: u64,
    /// Commits that triggered a broadcast invalidation round.
    pub invalidation_rounds: u64,
    /// Stale non-owner replicas dropped by invalidation.
    pub replicas_invalidated: u64,
    /// Reads served from the origin cell's replica while window ownership
    /// was away from (or migrating toward) the MC's current cell.
    pub stale_reads: u64,
    /// Handoff legs the epoch fence discarded: duplicated or reordered
    /// commit copies, and stragglers of aborted flights.
    pub handoff_discards: u64,
}

impl SimReport {
    /// Total communication cost under `model`.
    pub fn cost(&self, model: CostModel) -> f64 {
        match model {
            CostModel::Connection => self.connections as f64,
            CostModel::Message { omega } => {
                self.data_messages as f64 + omega * self.control_messages as f64
            }
        }
    }

    /// Mean communication cost per relevant request under `model`.
    ///
    /// An empty run (zero relevant requests) reports a cost of `0.0` by
    /// definition rather than dividing by zero — convenient for the table
    /// formatters, which print every cell unconditionally. Callers that
    /// must distinguish "free" from "empty" (e.g. sweep cells whose grid
    /// produced no requests) should use
    /// [`try_cost_per_request`](Self::try_cost_per_request).
    pub fn cost_per_request(&self, model: CostModel) -> f64 {
        self.try_cost_per_request(model).unwrap_or(0.0)
    }

    /// Mean communication cost per relevant request under `model`, or
    /// `None` for an empty run (zero relevant requests served).
    pub fn try_cost_per_request(&self, model: CostModel) -> Option<f64> {
        let n = self.counts.total();
        if n == 0 {
            None
        } else {
            Some(self.cost(model) / n as f64)
        }
    }

    /// Number of requests the degraded-mode transport shed.
    pub fn shed_requests(&self) -> u64 {
        self.shed.len() as u64
    }

    /// Mean time from partition start to recovery, or `None` if the run
    /// recovered from no partition.
    pub fn mean_time_to_recovery(&self) -> Option<f64> {
        (self.recoveries > 0).then(|| self.recovery_time_sum / self.recoveries as f64)
    }

    /// Mean partition age at which degraded reads were served, or `None`
    /// if no read was served degraded.
    pub fn mean_staleness(&self) -> Option<f64> {
        (self.degraded_reads > 0).then(|| self.staleness_sum / self.degraded_reads as f64)
    }
}

/// Typed outcome for a request the transport refused instead of queueing
/// forever: the request needed the wire while the simulator was degraded —
/// partitioned beyond the ARQ degradation deadline, or mid-migration with
/// a handoff stuck past its deadline (`docs/faults.md`, `docs/topology.md`).
#[derive(Debug, Clone, PartialEq)]
pub struct ShedRequest {
    /// Simulation time at which the request was shed.
    pub at: f64,
    /// The refused request.
    pub request: Request,
    /// Which degradation shed it.
    pub reason: ShedReason,
}

/// Why the transport refused a request instead of queueing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// The MC was partitioned beyond the ARQ degradation deadline.
    DegradedPartition,
    /// A cell handoff was stuck past its deadline: window ownership was
    /// mid-migration, so wire-needing requests could not be served
    /// correctly by either cell.
    HandoffStuck,
}

impl ShedReason {
    /// Stable lower-case name for reports and ledgers.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::DegradedPartition => "degraded-partition",
            ShedReason::HandoffStuck => "handoff-stuck",
        }
    }
}

/// Online invariant monitor (robustness extension): re-checks the §4
/// safety properties and the billing ledger *during* a run — including
/// faulty and degraded ones — rather than only in `mdr-verify`'s offline
/// state-space search.
///
/// The simulator consults it at every completed request; each method
/// panics on violation, so a faulty run that mis-bills or splits the
/// replica state dies loudly at the first bad completion instead of
/// producing a quietly wrong report.
#[derive(Debug, Default, Clone)]
pub struct InvariantMonitor {
    checks: u64,
}

impl InvariantMonitor {
    /// A fresh monitor with zero checks performed.
    pub fn new() -> Self {
        InvariantMonitor::default()
    }

    /// How many invariant checks this monitor has performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Single-owner / replica-agreement / freshness checks after a
    /// completed request.
    ///
    /// # Panics
    ///
    /// Panics if the two nodes disagree about the replica, the replica is
    /// stale, or (for window policies) the request window has zero or two
    /// owners.
    pub fn check_completion(
        &mut self,
        policy: PolicySpec,
        protocol: &ProtocolState,
        action: Action,
    ) {
        self.checks += 1;
        let (sc, mc) = (protocol.sc(), protocol.mc());
        assert_eq!(
            sc.mc_has_copy(),
            mc.has_copy(),
            "SC and MC disagree about the replica after {action}"
        );
        if let Some(v) = mc.cached_version() {
            assert_eq!(v, sc.version(), "replica left stale after {action}");
        }
        if matches!(policy, PolicySpec::SlidingWindow { .. }) {
            assert_ne!(
                sc.in_charge(),
                mc.in_charge(),
                "window ownership must live on exactly one side"
            );
        }
    }

    /// Ledger-consistency check: every billed transmission attempt is
    /// accounted for exactly once, as ledger-derived protocol traffic, a
    /// settled retransmission, aborted at-risk traffic, reconciliation
    /// traffic, or a transport acknowledgement.
    ///
    /// # Panics
    ///
    /// Panics if the identity does not hold.
    pub fn check_billing(
        &mut self,
        billed: u64,
        ledger: u64,
        settled_retransmissions: u64,
        aborted: u64,
        reconciliation: u64,
        acks: u64,
    ) {
        self.checks += 1;
        assert_eq!(
            billed,
            ledger + settled_retransmissions + aborted + reconciliation + acks,
            "billing identity broken: {billed} billed vs {ledger} ledger + \
             {settled_retransmissions} settled retransmissions + {aborted} aborted + \
             {reconciliation} reconciliation + {acks} acks"
        );
    }

    /// Handoff-ledger consistency check (mobility extension): every billed
    /// backbone leg attempt is accounted for exactly once — settled with a
    /// committed flight, aborted with a fenced one, or still in the air —
    /// and the invalidation bill matches its class's pricing rule (one
    /// broadcast per round, or one unicast per dropped replica).
    ///
    /// # Panics
    ///
    /// Panics if either identity does not hold.
    pub fn check_handoff_billing(
        &mut self,
        billed: u64,
        settled: u64,
        aborted: u64,
        in_flight: u64,
        invalidation_billed: u64,
        invalidation_expected: u64,
    ) {
        self.checks += 1;
        assert_eq!(
            billed,
            settled + aborted + in_flight,
            "handoff billing identity broken: {billed} billed vs {settled} settled + \
             {aborted} aborted + {in_flight} in flight"
        );
        assert_eq!(
            invalidation_billed, invalidation_expected,
            "invalidation billing identity broken: {invalidation_billed} billed vs \
             {invalidation_expected} owed by the invalidation class's pricing rule"
        );
    }
}

#[derive(Debug)]
enum Event {
    Arrival(Arrival),
    /// An envelope reaches its destination. Validity is re-checked at
    /// delivery time ([`ProtocolState::receive`]): faults leave ghost
    /// deliveries in the queue — duplicates, reordered stale copies, and
    /// envelopes a disconnection destroyed — which self-discard against
    /// the protocol's epoch/sequence guards. The payload is a slot index
    /// into the simulation's [`EnvelopePool`], so a queued delivery is a
    /// handful of bytes instead of a cloned envelope.
    Deliver(u32),
    /// A ghost copy the network injected (duplication or stale reordering).
    /// Ghosts are never billed and are only counted as duplicated when they
    /// actually land (a run may end with ghosts still in the air). Ghost
    /// copies share the original delivery's pool slot.
    GhostDeliver(u32),
    /// The MC crosses into another cell.
    Handoff,
    /// A fault from the [`FaultPlan`] severs the link.
    LinkDown,
    /// The current outage ends and the link is re-established. The token
    /// guards against stale events: a declared (ARQ) partition and an
    /// injected outage can overlap, and only the newest scheduled link-up
    /// may fire.
    LinkUp {
        /// Matches the simulation's `link_token` when current.
        token: u64,
    },
    /// The ARQ retransmission timer for the outstanding envelope fires.
    /// Stale timers (the envelope was acknowledged, superseded, or destroyed
    /// by an outage in the meantime) are identified by id and ignored.
    ArqTimeout {
        /// Matches the outstanding transmission's timer id when current.
        timer: u64,
    },
    /// The topology's mobility plan moves the MC to another cell
    /// (mobility extension, `docs/topology.md`).
    Migrate,
    /// A handoff leg lands at its destination SC over the backbone.
    /// Stale copies — legs of an aborted (fenced) epoch, duplicated or
    /// reordered commits — self-discard against the epoch fence.
    HandoffLegArrive {
        /// The flight epoch stamped on the leg at send time.
        epoch: u64,
        /// Which of the three legs this is.
        leg: HandoffLeg,
    },
    /// The retransmission timer for an in-flight handoff leg fires (only
    /// scheduled when the ARQ transport is installed; its timeout law and
    /// retry budget govern backbone legs too). Stale timers — the leg
    /// landed, the flight advanced, or the epoch was fenced — are
    /// identified by (epoch, leg, attempt) and ignored.
    HandoffRetry {
        /// The flight epoch the timer belongs to.
        epoch: u64,
        /// The leg that was in the air when the timer was armed.
        leg: HandoffLeg,
        /// The attempt count when the timer was armed.
        attempt: u32,
    },
    /// The handoff deadline expires: if the flight with this epoch is
    /// still in the air, it aborts and rolls back to the origin cell.
    HandoffDeadline {
        /// The flight epoch the deadline was armed for.
        epoch: u64,
    },
}

impl Event {
    /// Actor rank for same-instant ties, the first tie-break after time
    /// in the [`CalendarQueue`]'s `(time, actor-id, seq)` order: the
    /// network/SC actor (an injected outage severing the link) resolves
    /// first, ordinary protocol and workload events second, and MC-side
    /// timers (retransmission timers, handoff deadlines) last. This pins
    /// the documented order for the corner where an SC outage and a
    /// simultaneous MC-side event land at the same instant — the outage
    /// wins, deterministically, instead of depending on scheduling order.
    fn actor_rank(&self) -> u8 {
        match self {
            Event::LinkDown => 0,
            Event::ArqTimeout { .. }
            | Event::HandoffRetry { .. }
            | Event::HandoffDeadline { .. } => 2,
            _ => PROTOCOL_RANK,
        }
    }
}

/// The [`Event::actor_rank`] of ordinary protocol and workload events —
/// in particular of arrivals and deliveries, the two event kinds the run
/// loop stages outside the calendar queue.
const PROTOCOL_RANK: u8 = 1;

/// Which source holds the earliest pending event: one of the two staged
/// slots, or the calendar queue's head.
#[derive(Clone, Copy)]
enum NextEvent {
    StagedArrival,
    StagedDelivery,
    Queue,
}

/// Slab of envelopes awaiting delivery. A transmission parks its envelope
/// here once and the scheduled [`Event::Deliver`]/[`Event::GhostDeliver`]
/// copies carry the slot index; the reference count (original + ghosts)
/// lets the last delivery move the envelope out without cloning — the hot
/// ghost-free path never copies an envelope at all. Slots are recycled
/// through a free list, so a long run touches a handful of slots forever.
struct EnvelopePool {
    slots: Vec<Option<Envelope>>,
    refs: Vec<u32>,
    free: Vec<u32>,
}

impl EnvelopePool {
    fn new() -> Self {
        EnvelopePool {
            slots: Vec::new(),
            refs: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Parks `envelope` under `refs` pending deliveries and returns its
    /// slot.
    fn insert(&mut self, envelope: Envelope, refs: u32) -> u32 {
        debug_assert!(refs >= 1, "a pooled envelope needs at least one taker");
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(envelope);
                self.refs[slot as usize] = refs;
                slot
            }
            None => {
                self.slots.push(Some(envelope));
                self.refs.push(refs);
                let Ok(slot) = u32::try_from(self.slots.len() - 1) else {
                    unreachable!("pool slots outnumbered u32::MAX in-flight envelopes")
                };
                slot
            }
        }
    }

    /// Redeems one scheduled delivery of the envelope in `slot`: the last
    /// taker moves the envelope out and recycles the slot, earlier takers
    /// (ghost copies sharing it) receive a clone.
    fn take(&mut self, slot: u32) -> Envelope {
        let index = slot as usize;
        self.refs[index] -= 1;
        if self.refs[index] == 0 {
            let Some(envelope) = self.slots[index].take() else {
                unreachable!("pool slot redeemed past its reference count")
            };
            self.free.push(slot);
            envelope
        } else {
            let Some(envelope) = self.slots[index].as_ref() else {
                unreachable!("pool slot redeemed past its reference count")
            };
            envelope.clone()
        }
    }
}

/// The simulator. Owns the two protocol nodes and the event queue.
pub struct Simulation {
    config: SimConfig,
    /// The protocol transition relation (both nodes + wire + ledger); the
    /// event loop only adds time, queueing and billing on top.
    protocol: ProtocolState,
    /// The per-request reference in oracle mode: a sans-io
    /// [`DecisionCore`] fed the same serialized request order, so every
    /// run doubles as an equivalence test of the decision engine.
    oracle: Option<DecisionCore>,
    events: CalendarQueue<Event>,
    /// Envelopes parked between transmission and delivery, indexed by the
    /// slot the queued [`Event::Deliver`]/[`Event::GhostDeliver`] carries.
    pool: EnvelopePool,
    seq: u64,
    /// The next workload arrival, staged outside the calendar under the
    /// `(time, seq)` key (rank 1) the queued [`Event::Arrival`] would have
    /// carried. At most one future arrival is known at a time, so in the
    /// steady state arrivals never touch the queue at all: the run loop
    /// picks the earliest of the staged events and the queue head.
    staged_arrival: Option<(f64, u64, Arrival)>,
    /// A ghost-free delivery staged outside the calendar and the pool,
    /// same scheme. The §3 exchange serialization leaves at most one
    /// envelope in the air, so the fault-free hot path pays neither a
    /// queue round trip nor a pool slot per delivery; ghost-bearing
    /// deliveries (and a rare second in-flight envelope under ARQ
    /// retransmission) still go through the queue.
    staged_delivery: Option<(f64, u64, Envelope)>,
    /// Events the run loop has processed over the simulation's lifetime
    /// (a deterministic fact of config + workload + seeds, surfaced on
    /// [`SimReport::events_processed`] and the [`perf`](crate::perf)
    /// measurements).
    events_processed: u64,
    /// Arrivals waiting for the in-flight exchange to finish.
    pending: VecDeque<Arrival>,
    in_flight: Option<Exchange>,
    now: f64,
    // accounting
    schedule: Schedule,
    data_messages: u64,
    control_messages: u64,
    queued_requests: u64,
    retransmissions: u64,
    link_rng: Option<BatchedF64>,
    mobility_rng: Option<BatchedF64>,
    current_cell: usize,
    /// Cached `cell_extra_latency[current_cell]` (0 without the mobility
    /// model), so the per-transmit hot path reads one `f64` instead of
    /// indexing through the config.
    cell_extra: f64,
    handoffs: u64,
    read_latency_sum: f64,
    reads_completed: u64,
    served: usize,
    /// Absolute request-count target for the current `run` call (serving
    /// stops exactly there, even mid-drain).
    target: usize,
    // --- fault injection (None / quiescent without a FaultPlan) ---
    fault_rng: Option<BatchedF64>,
    /// Whether the initial link-down has been scheduled (once per
    /// simulation, not per `run` call).
    fault_primed: bool,
    link_up: bool,
    /// Kind of the outage in progress, while the link is down.
    outage_kind: Option<FaultKind>,
    /// An exchange a disconnection aborted, waiting to be retried once the
    /// link (and any owed reconciliation) is back.
    suspended: Option<Exchange>,
    /// An MC crash owing a reconnection handshake at the next link-up;
    /// the flag records whether volatile state was lost.
    pending_crash: Option<bool>,
    /// Whether the reconnection handshake is on the wire right now.
    reconciling: bool,
    /// Whether the workload has no further arrivals to offer (lets the
    /// event loop stop instead of chasing self-perpetuating maintenance
    /// events forever).
    arrivals_done: bool,
    disconnects: u64,
    mc_crashes: u64,
    sc_outages: u64,
    duplicated_deliveries: u64,
    discarded_deliveries: u64,
    aborted_messages: u64,
    reconciliation_messages: u64,
    reconciliations: u64,
    /// Billed attempts of the exchange currently in flight — moved into
    /// `aborted_messages` if a disconnection kills the exchange.
    exchange_messages: u64,
    /// Retransmitted attempts within `exchange_messages` — settled into
    /// `settled_retransmissions` when the exchange completes.
    exchange_retrans: u64,
    /// Connections beyond the ledger-derived count: one per aborted
    /// exchange (the wasted setup), one per reconnection handshake, and one
    /// per ARQ retransmission (connection model: every retransmit re-dials).
    extra_connections: u64,
    // --- ARQ transport (None / quiescent without an ArqConfig) ---
    arq_rng: Option<BatchedF64>,
    /// The envelope currently awaiting acknowledgement, if any (stop-and-
    /// wait: at most one).
    arq_outstanding: Option<ArqOutstanding>,
    /// Monotone timer-id source; a timeout event whose id differs from the
    /// outstanding transmission's is stale and ignored.
    arq_timer_seq: u64,
    /// Monotone link-up token source (see [`Event::LinkUp`]).
    link_token: u64,
    /// Whether the current outage was declared by ARQ escalation rather
    /// than injected by the fault plan.
    declared_down: bool,
    /// When the partition in progress began (set at escalation or, with ARQ
    /// enabled, at an injected link-down; cleared at the first successful
    /// delivery after it).
    partitioned_since: Option<f64>,
    settled_retransmissions: u64,
    arq_acks: u64,
    retry_escalations: u64,
    shed: Vec<ShedRequest>,
    degraded_reads: u64,
    staleness_sum: f64,
    recovery_time_sum: f64,
    recoveries: u64,
    // --- multi-cell topology (None / quiescent without a TopologyConfig) ---
    /// Dwell times, destination cells, and handoff-leg loss/jitter draws.
    topology_rng: Option<BatchedF64>,
    /// Commit duplication/reordering draws. A separate stream so turning
    /// ghosts on cannot perturb the legs' loss fates — the idempotence
    /// property in `properties.rs` relies on this.
    topology_ghost_rng: Option<BatchedF64>,
    /// The cell the MC currently sits in (distinct from `current_cell`,
    /// the latency-only cellular model's position).
    mc_cell: usize,
    /// The cell whose SC currently owns the window and replica state.
    owner_cell: usize,
    /// Cells left holding a stale replica copy by an aborted transfer or
    /// a committed migration; cleared by invalidation on commit.
    stale_replica: Vec<bool>,
    /// The handoff flight currently in the air, if any.
    handoff: Option<HandoffFlight>,
    /// Monotone epoch source; every flight gets a fresh epoch and legs of
    /// older epochs self-discard (the fence).
    handoff_epoch: u64,
    /// Whether the last handoff attempt aborted with the MC still away
    /// from the owner cell: reads are served stale from the origin and
    /// wire-needing requests are shed with a typed outcome.
    handoff_stuck: bool,
    migrations: u64,
    handoffs_committed: u64,
    handoffs_aborted: u64,
    handoff_messages: u64,
    settled_handoff_messages: u64,
    aborted_handoff_messages: u64,
    invalidation_messages: u64,
    invalidation_rounds: u64,
    replicas_invalidated: u64,
    stale_reads: u64,
    handoff_discards: u64,
    monitor: InvariantMonitor,
}

/// Book-keeping for the envelope the ARQ transport currently has in the
/// air (stop-and-wait: the one unacknowledged transmission).
#[derive(Debug, Clone)]
struct ArqOutstanding {
    envelope: Envelope,
    /// Transmissions so far (1 = the original send).
    attempts: u32,
    /// Whether this envelope belongs to the reconnection handshake.
    reconciliation: bool,
    /// Id of the armed retransmission timer.
    timer: u64,
}

/// Book-keeping for the exchange currently on the wire.
#[derive(Debug, Clone, Copy)]
struct Exchange {
    request: Request,
    arrived_at: f64,
}

/// Book-keeping for the three-way handoff flight currently in the air
/// (mobility extension, `docs/topology.md`). At most one flight exists at
/// a time; a migration mid-flight fences the epoch and starts over.
#[derive(Debug, Clone)]
struct HandoffFlight {
    /// The cell ownership departs from (and rolls back to on abort).
    origin: usize,
    /// The cell ownership is migrating toward (always the MC's cell at
    /// initiation; a migration mid-flight aborts and re-initiates).
    target: usize,
    /// The fence: legs stamped with an older epoch self-discard.
    epoch: u64,
    /// The leg currently in the air.
    awaiting: HandoffLeg,
    /// Transmission attempts of the awaiting leg (1 = the original send);
    /// reset when the flight advances to the next leg.
    attempts: u32,
    /// Billed backbone attempts of this flight — settled on commit, moved
    /// to the aborted tally if the deadline or a migration fences it.
    messages: u64,
    /// Whether the state-transfer leg landed at the target (an abort then
    /// leaves an orphaned stale replica there to invalidate later).
    transfer_landed: bool,
    /// The window/replica state captured at initiation and shipped on the
    /// state-transfer leg.
    snapshot: HandoffSnapshot,
}

impl Simulation {
    /// Creates a simulation in the policy's initial state.
    pub fn new(config: SimConfig) -> Self {
        // Every stream head below goes through `BatchedF64::new`, which
        // seeds the same SplitMix64-expanded `StdRng` the unbatched
        // simulator used — stream identity is pinned by the ledger-digest
        // regression tests.
        let link_rng = config.loss.map(|l| BatchedF64::new(l.seed));
        let mobility_rng = config.mobility.as_ref().map(|m| BatchedF64::new(m.seed));
        let fault_rng = config.faults.as_ref().map(|f| BatchedF64::new(f.seed));
        let arq_rng = config.arq.as_ref().map(|a| BatchedF64::new(a.seed));
        let topology_rng = config.topology.as_ref().map(|t| BatchedF64::new(t.seed));
        // Salted so the ghost stream is independent of the leg stream.
        let topology_ghost_rng = config
            .topology
            .as_ref()
            .map(|t| BatchedF64::new(t.seed ^ 0x9e37_79b9_7f4a_7c15));
        let cell_extra = config
            .mobility
            .as_ref()
            .map_or(0.0, |m| m.cell_extra_latency[0]);
        let home_cell = config.topology.as_ref().map_or(0, |t| t.home_cell);
        let cells = config.topology.as_ref().map_or(1, |t| t.cells);
        Simulation {
            protocol: ProtocolState::new(config.policy),
            oracle: config.oracle_check.then(|| {
                let Ok(core) = DecisionCore::new(config.policy, CostModel::Connection) else {
                    panic!("the simulation config carries a validated policy spec");
                };
                core
            }),
            config,
            events: CalendarQueue::new(),
            pool: EnvelopePool::new(),
            seq: 0,
            staged_arrival: None,
            staged_delivery: None,
            events_processed: 0,
            pending: VecDeque::new(),
            in_flight: None,
            now: 0.0,
            schedule: Schedule::new(),
            data_messages: 0,
            control_messages: 0,
            queued_requests: 0,
            retransmissions: 0,
            link_rng,
            mobility_rng,
            current_cell: 0,
            cell_extra,
            handoffs: 0,
            read_latency_sum: 0.0,
            reads_completed: 0,
            served: 0,
            target: usize::MAX,
            fault_rng,
            fault_primed: false,
            link_up: true,
            outage_kind: None,
            suspended: None,
            pending_crash: None,
            reconciling: false,
            arrivals_done: false,
            disconnects: 0,
            mc_crashes: 0,
            sc_outages: 0,
            duplicated_deliveries: 0,
            discarded_deliveries: 0,
            aborted_messages: 0,
            reconciliation_messages: 0,
            reconciliations: 0,
            exchange_messages: 0,
            exchange_retrans: 0,
            extra_connections: 0,
            arq_rng,
            arq_outstanding: None,
            arq_timer_seq: 0,
            link_token: 0,
            declared_down: false,
            partitioned_since: None,
            settled_retransmissions: 0,
            arq_acks: 0,
            retry_escalations: 0,
            shed: Vec::new(),
            degraded_reads: 0,
            staleness_sum: 0.0,
            recovery_time_sum: 0.0,
            recoveries: 0,
            topology_rng,
            topology_ghost_rng,
            mc_cell: home_cell,
            owner_cell: home_cell,
            stale_replica: vec![false; cells],
            handoff: None,
            handoff_epoch: 0,
            handoff_stuck: false,
            migrations: 0,
            handoffs_committed: 0,
            handoffs_aborted: 0,
            handoff_messages: 0,
            settled_handoff_messages: 0,
            aborted_handoff_messages: 0,
            invalidation_messages: 0,
            invalidation_rounds: 0,
            replicas_invalidated: 0,
            stale_reads: 0,
            handoff_discards: 0,
            monitor: InvariantMonitor::new(),
        }
    }

    fn push_event(&mut self, at: f64, event: Event) {
        self.seq += 1;
        let rank = event.actor_rank();
        self.events.push(at, rank, self.seq, event);
    }

    /// Fetches the next arrival from the workload and stages it (or, when
    /// a staged arrival is already pending from an earlier `run` call,
    /// queues it behind that one). Consumes a `seq` either way, at the
    /// exact point the old queue-everything loop consumed it, so event
    /// keys — and therefore tie-breaks and digests — are unchanged.
    fn stage_next_arrival(&mut self, workload: &mut dyn ArrivalProcess, limit: RunLimit) {
        match workload.next_arrival() {
            Some(a) if !matches!(limit, RunLimit::Time(t) if a.time > t) => {
                if self.staged_arrival.is_none() {
                    self.seq += 1;
                    self.staged_arrival = Some((a.time, self.seq, a));
                } else {
                    self.push_event(a.time, Event::Arrival(a));
                }
            }
            _ => self.arrivals_done = true,
        }
    }

    /// Processes one arrival: stage its successor first (so service never
    /// starves), then begin service, shed, or queue it.
    fn handle_arrival(
        &mut self,
        arrival: Arrival,
        workload: &mut dyn ArrivalProcess,
        limit: RunLimit,
    ) {
        self.stage_next_arrival(workload, limit);
        if self.can_begin_service(arrival.request) {
            self.begin_service(arrival);
        } else if self.degraded()
            && self.pending.is_empty()
            && self.suspended.is_none()
            && self.needs_wire(arrival.request)
        {
            // Degraded mode: a wire-needing request is shed with a typed
            // outcome instead of queueing behind a partition of unknown
            // length. (With a non-empty queue the earlier entries were
            // already shed or are locally servable, so this branch keeps
            // FIFO intact.)
            self.shed_request(arrival, ShedReason::DegradedPartition);
        } else if self.handoff_stuck
            && self.pending.is_empty()
            && self.suspended.is_none()
            && self.needs_wire(arrival.request)
        {
            // A handoff stuck past its deadline degrades the same way:
            // ownership is mid-migration, so a wire-needing request is
            // shed instead of queueing behind a handoff of unknown
            // length. Reads the MC can serve from its copy still go
            // through (stale, from the origin cell).
            self.shed_request(arrival, ShedReason::HandoffStuck);
        } else {
            self.queued_requests += 1;
            self.pending.push_back(arrival);
        }
    }

    /// Bills and schedules the delivery of an envelope the protocol just put
    /// on the wire. Under the lossy-link model the sender retransmits after
    /// each timeout until one attempt gets through; every attempt is billed.
    /// `reconciliation` routes the attempt tally to the handshake counters
    /// instead of the at-risk exchange tally.
    ///
    /// Under a fault plan the network may additionally inject ghost copies
    /// (duplication, stale reordering). Ghosts are scheduled but never
    /// billed: they are a delivery artifact, not a send, and the protocol's
    /// epoch/sequence guards discard them — which is exactly the property
    /// the `properties.rs` proptests pin down.
    fn transmit(&mut self, envelope: Envelope, reconciliation: bool) {
        if self.config.arq.is_some() {
            self.transmit_arq(envelope, reconciliation, 1);
            return;
        }
        let attempts = match (self.config.loss, &mut self.link_rng) {
            (Some(loss), Some(rng)) => {
                let mut attempts = 1u64;
                while rng.draw() < loss.loss_probability {
                    attempts += 1;
                }
                attempts
            }
            _ => 1,
        };
        self.retransmissions += attempts - 1;
        match envelope.message.class() {
            crate::wire::MessageClass::Data => self.data_messages += attempts,
            crate::wire::MessageClass::Control => self.control_messages += attempts,
            crate::wire::MessageClass::Invalidation => {
                // Invalidation traffic rides the wired backbone, never the
                // MC/SC wireless link this transport models.
                unreachable!("invalidation-class traffic on the wireless link")
            }
        }
        if reconciliation {
            self.reconciliation_messages += attempts;
        } else {
            self.exchange_messages += attempts;
            self.exchange_retrans += attempts - 1;
        }
        let retry_delay = (attempts - 1) as f64 * self.config.loss.map_or(0.0, |l| l.retry_timeout);
        let arrives = self.now + retry_delay + self.config.latency + self.cell_extra;
        self.schedule_delivery(envelope, arrives);
    }

    /// Parks the envelope in the pool and schedules its delivery plus any
    /// ghost copies (duplication, stale reordering) a fault plan asks for.
    /// Ghost fates are drawn up front so the pool slot's reference count
    /// covers every scheduled taker; the fault stream sees the draws in
    /// the same order as ever. Ghosts are scheduled but never billed: they
    /// are a delivery artifact, not a send, and the protocol's
    /// epoch/sequence guards discard them.
    fn schedule_delivery(&mut self, envelope: Envelope, arrives: f64) {
        let (duplicate, reorder) = match (self.config.faults.as_ref(), self.fault_rng.as_mut()) {
            (Some(plan), Some(rng)) => (
                plan.duplication > 0.0 && rng.draw() < plan.duplication,
                plan.reorder > 0.0 && rng.draw() < plan.reorder,
            ),
            _ => (false, false),
        };
        if !duplicate && !reorder && self.staged_delivery.is_none() {
            // The common ghost-free case: stage the sole in-flight
            // delivery outside the queue and the pool. It is consumed in
            // exact `(time, rank, seq)` order by the run loop's
            // three-way pick, under the very seq it would have queued
            // with — so billing, tie-breaks and digests are unchanged.
            self.seq += 1;
            self.staged_delivery = Some((arrives, self.seq, envelope));
            return;
        }
        let refs = 1 + u32::from(duplicate) + u32::from(reorder);
        let slot = self.pool.insert(envelope, refs);
        self.push_event(arrives, Event::Deliver(slot));
        let latency = self.config.latency;
        if duplicate {
            // The copy takes a marginally longer path and arrives right
            // behind the original: a straight duplicate.
            self.push_event(arrives + 0.25 * latency + 1e-6, Event::GhostDeliver(slot));
        }
        if reorder {
            // The copy is held up long enough to land behind *subsequent*
            // traffic: a genuinely out-of-order stale delivery.
            self.push_event(arrives + 2.5 * latency + 1e-3, Event::GhostDeliver(slot));
        }
    }

    /// One ARQ transmission attempt: bill it, draw its fate from the
    /// dedicated ARQ loss stream, schedule the delivery if it survives, and
    /// arm the backoff timer. `attempts` counts this transmission (1 = the
    /// original send); retransmissions re-enter here from
    /// [`Simulation::handle_arq_timeout`].
    fn transmit_arq(&mut self, envelope: Envelope, reconciliation: bool, attempts: u32) {
        let (Some(arq), Some(rng)) = (self.config.arq, self.arq_rng.as_mut()) else {
            unreachable!("ARQ transmission requires an ArqConfig")
        };
        // Two draws per attempt — loss fate, then jitter — so the stream
        // position is a function of the attempt count alone.
        let lost = rng.draw() < arq.loss_probability;
        let jitter_u = rng.draw();
        match envelope.message.class() {
            crate::wire::MessageClass::Data => self.data_messages += 1,
            crate::wire::MessageClass::Control => self.control_messages += 1,
            crate::wire::MessageClass::Invalidation => {
                // See `transmit`: the backbone class never enters the
                // wireless transport.
                unreachable!("invalidation-class traffic on the wireless link")
            }
        }
        if reconciliation {
            self.reconciliation_messages += 1;
        } else {
            self.exchange_messages += 1;
        }
        if attempts > 1 {
            self.retransmissions += 1;
            if !reconciliation {
                self.exchange_retrans += 1;
            }
            // Connection model: every retransmission re-dials.
            self.extra_connections += 1;
        }
        if !lost {
            let arrives = self.now + self.config.latency + self.cell_extra;
            // The outstanding slot keeps the owned envelope for
            // retransmission and ack-matching; only a delivered attempt
            // pays for a clone.
            self.schedule_delivery(envelope.clone(), arrives);
        }
        let rto = arq.timeout_for_attempt(attempts) * (1.0 + arq.jitter * jitter_u);
        self.arq_timer_seq += 1;
        let timer = self.arq_timer_seq;
        self.arq_outstanding = Some(ArqOutstanding {
            envelope,
            attempts,
            reconciliation,
            timer,
        });
        self.push_event(self.now + rto, Event::ArqTimeout { timer });
    }

    /// A retransmission timer fired. If the envelope it guarded is still
    /// unacknowledged, either retransmit (budget permitting) or escalate to
    /// a declared disconnection.
    fn handle_arq_timeout(&mut self, timer: u64) {
        let current = self
            .arq_outstanding
            .as_ref()
            .is_some_and(|out| out.timer == timer);
        if !current {
            return; // acknowledged, superseded, or destroyed: stale timer
        }
        let Some(out) = self.arq_outstanding.take() else {
            unreachable!("checked above")
        };
        let Some(arq) = self.config.arq else {
            unreachable!("ARQ timeout without an ArqConfig")
        };
        if out.attempts <= arq.retry_budget {
            self.transmit_arq(out.envelope, out.reconciliation, out.attempts + 1);
        } else {
            self.escalate_partition(out, arq);
        }
    }

    /// The retry budget is exhausted: declare the link disconnected, feed
    /// the exchange to the existing reconnect/suspend machinery, and probe
    /// for the link later (the backoff law continues past the budget).
    fn escalate_partition(&mut self, out: ArqOutstanding, arq: ArqConfig) {
        self.retry_escalations += 1;
        self.link_up = false;
        self.declared_down = true;
        // A declared partition behaves like a doze: both sides keep their
        // state; only the wire is gone.
        self.outage_kind = Some(FaultKind::Doze);
        if self.partitioned_since.is_none() {
            self.partitioned_since = Some(self.now);
        }
        if out.reconciliation {
            // The handshake gave out mid-flight: clear it off the wire; it
            // restarts wholesale at the next probe (`pending_crash` and the
            // protocol's `recovering` flag persist).
            let _ = self.protocol.disconnect();
            self.reconciling = false;
        } else {
            let aborted = self.protocol.disconnect();
            let Some(exchange) = self.in_flight.take() else {
                unreachable!("non-reconciliation ARQ traffic implies an exchange in flight")
            };
            debug_assert_eq!(aborted, Some(exchange.request));
            self.aborted_messages += self.exchange_messages;
            self.exchange_messages = 0;
            self.exchange_retrans = 0;
            self.extra_connections += 1; // the wasted connection setup
            self.suspended = Some(exchange);
        }
        if self.degraded() {
            self.degrade_pending();
        }
        let jitter_u = match self.arq_rng.as_mut() {
            Some(rng) => rng.draw(),
            None => 0.0,
        };
        let probe = arq.timeout_for_attempt(out.attempts + 1) * (1.0 + arq.jitter * jitter_u);
        self.link_token += 1;
        let token = self.link_token;
        self.push_event(self.now + probe, Event::LinkUp { token });
    }

    /// Whether the ARQ transport is in degraded mode: partitioned beyond
    /// the degradation deadline.
    fn degraded(&self) -> bool {
        match (self.config.arq.as_ref(), self.partitioned_since) {
            (Some(arq), Some(since)) if !self.link_up => self.now - since >= arq.degrade_deadline,
            _ => false,
        }
    }

    /// Whether serving `request` requires the wireless link in the current
    /// protocol state (the complement of local reads and silent writes).
    fn needs_wire(&self, request: Request) -> bool {
        match request {
            Request::Read => !self.protocol.mc().has_copy(),
            Request::Write => self.protocol.sc().mc_has_copy(),
        }
    }

    /// Sheds a request with a typed outcome: it never enters the schedule,
    /// the ledger, or the oracle.
    fn shed_request(&mut self, arrival: Arrival, reason: ShedReason) {
        self.shed.push(ShedRequest {
            at: self.now,
            request: arrival.request,
            reason,
        });
    }

    /// Degraded mode just engaged (or deepened): shed the suspended
    /// exchange and every queued request that needs the wire, then serve
    /// what can complete locally.
    fn degrade_pending(&mut self) {
        if let Some(exchange) = self.suspended.take() {
            // A suspended exchange needed the wire by construction.
            self.shed_request(
                Arrival {
                    time: exchange.arrived_at,
                    request: exchange.request,
                },
                ShedReason::DegradedPartition,
            );
        }
        let queued = std::mem::take(&mut self.pending);
        for arrival in queued {
            if self.needs_wire(arrival.request) {
                self.shed_request(arrival, ShedReason::DegradedPartition);
            } else {
                self.pending.push_back(arrival);
            }
        }
        self.drain_pending();
    }

    /// Bills the transport-level acknowledgement that closes a completed
    /// exchange (control class; never retransmitted, never acked).
    fn bill_ack(&mut self) {
        if self.config.arq.is_none() {
            return;
        }
        self.control_messages += 1;
        self.arq_acks += 1;
    }

    /// Runs the protocol over `workload` until `limit`, returning the
    /// report.
    ///
    /// # Panics
    ///
    /// Panics (in oracle mode) if the distributed execution ever diverges
    /// from the reference policy, or if a protocol invariant (single window
    /// owner, replica freshness) is violated.
    pub fn run(&mut self, workload: &mut dyn ArrivalProcess, limit: RunLimit) -> SimReport {
        self.target = match limit {
            RunLimit::Requests(n) => self.served.saturating_add(n),
            RunLimit::Time(_) => usize::MAX,
        };
        let target = self.target;
        self.arrivals_done = false;
        // Prime the movement process.
        if self.config.mobility.is_some() {
            self.schedule_next_handoff();
        }
        // Prime the topology's mobility plan. An inert plan (zero
        // migration rate) schedules nothing and draws nothing, so it
        // reproduces the single-cell run bit for bit.
        if self.topology_active() {
            self.schedule_next_migration();
        }
        // Prime the fault process (once per simulation).
        if !self.fault_primed {
            self.fault_primed = true;
            self.schedule_next_link_down();
        }
        // Prime the first arrival.
        self.stage_next_arrival(workload, limit);
        while self.served < target {
            // With no arrivals left and nothing in service, the only events
            // remaining are self-perpetuating maintenance (link faults,
            // handoffs) and ghost deliveries: stop instead of chasing them.
            if self.arrivals_done
                && self.in_flight.is_none()
                && self.suspended.is_none()
                && !self.reconciling
                && self.pending.is_empty()
            {
                break;
            }
            // Pick the earliest of the two staged events and the queue
            // head under the queue's own `(time, rank, seq)` total order
            // (keys are unique — every event consumed a distinct seq).
            let mut best = self.events.peek_key().map(|key| (key, NextEvent::Queue));
            if let Some((t, s, _)) = &self.staged_delivery {
                let key = (*t, PROTOCOL_RANK, *s);
                if best.is_none_or(|(b, _)| key_lt(key, b)) {
                    best = Some((key, NextEvent::StagedDelivery));
                }
            }
            if let Some((t, s, _)) = &self.staged_arrival {
                let key = (*t, PROTOCOL_RANK, *s);
                if best.is_none_or(|(b, _)| key_lt(key, b)) {
                    best = Some((key, NextEvent::StagedArrival));
                }
            }
            let Some(((at, _, _), source)) = best else {
                break;
            };
            debug_assert!(at >= self.now - 1e-9, "time went backwards");
            self.now = at.max(self.now);
            self.events_processed += 1;
            match source {
                NextEvent::StagedArrival => {
                    let Some((_, _, arrival)) = self.staged_arrival.take() else {
                        unreachable!("picked a staged arrival that is not there")
                    };
                    self.handle_arrival(arrival, workload, limit);
                    continue;
                }
                NextEvent::StagedDelivery => {
                    let Some((_, _, envelope)) = self.staged_delivery.take() else {
                        unreachable!("picked a staged delivery that is not there")
                    };
                    self.handle_delivery(&envelope);
                    continue;
                }
                NextEvent::Queue => {}
            }
            let Some((_, event)) = self.events.pop() else {
                unreachable!("picked a queue head from an empty queue")
            };
            match event {
                Event::Arrival(arrival) => self.handle_arrival(arrival, workload, limit),
                Event::Deliver(slot) => {
                    let envelope = self.pool.take(slot);
                    self.handle_delivery(&envelope);
                }
                Event::GhostDeliver(slot) => {
                    self.duplicated_deliveries += 1;
                    let envelope = self.pool.take(slot);
                    self.handle_delivery(&envelope);
                }
                Event::Handoff => {
                    self.perform_handoff();
                    self.schedule_next_handoff();
                }
                Event::LinkDown => self.handle_link_down(),
                Event::LinkUp { token } => self.handle_link_up(token),
                Event::ArqTimeout { timer } => self.handle_arq_timeout(timer),
                Event::Migrate => {
                    self.perform_migration();
                    self.schedule_next_migration();
                }
                Event::HandoffLegArrive { epoch, leg } => self.handle_handoff_leg(epoch, leg),
                Event::HandoffRetry {
                    epoch,
                    leg,
                    attempt,
                } => self.handle_handoff_retry(epoch, leg, attempt),
                Event::HandoffDeadline { epoch } => self.handle_handoff_deadline(epoch),
            }
        }
        self.report()
    }

    /// Runs like [`Simulation::run`] while timing the event loop: returns
    /// the usual deterministic report plus a [`PerfStats`] measurement
    /// (events processed by *this* call, wall time, events/sec). The
    /// report is bit-identical to what `run` produces — wall time never
    /// feeds simulation state, ledgers, or digests.
    pub fn run_timed(
        &mut self,
        workload: &mut dyn ArrivalProcess,
        limit: RunLimit,
    ) -> (SimReport, PerfStats) {
        let before = self.events_processed;
        let watch = Stopwatch::start();
        let report = self.run(workload, limit);
        let stats = watch.stats(self.events_processed - before);
        (report, stats)
    }

    /// Draws the next exponential dwell time and schedules the handoff.
    fn schedule_next_handoff(&mut self) {
        let (Some(mobility), Some(rng)) =
            (self.config.mobility.as_ref(), self.mobility_rng.as_mut())
        else {
            unreachable!("handoff scheduling requires the mobility model")
        };
        let rate = mobility.handoff_rate;
        let u = rng.draw();
        let dwell = -f64::ln(1.0 - u) / rate;
        self.push_event(self.now + dwell, Event::Handoff);
    }

    /// Moves the MC to a uniformly chosen *different* cell.
    fn perform_handoff(&mut self) {
        let (Some(mobility), Some(rng)) =
            (self.config.mobility.as_ref(), self.mobility_rng.as_mut())
        else {
            unreachable!("handoffs require the mobility model")
        };
        let cells = mobility.cell_extra_latency.len();
        if cells > 1 {
            let mut next = (rng.draw() * (cells - 1) as f64) as usize;
            if next >= self.current_cell {
                next += 1;
            }
            self.current_cell = next.min(cells - 1);
        }
        self.handoffs += 1;
        self.cell_extra = self
            .config
            .mobility
            .as_ref()
            .map_or(0.0, |m| m.cell_extra_latency[self.current_cell]);
    }

    /// Whether the multi-cell topology layer is live: configured and not
    /// inert (an inert plan must behave exactly like no plan at all).
    fn topology_active(&self) -> bool {
        self.config.topology.as_ref().is_some_and(|t| !t.is_inert())
    }

    /// Draws the next exponential dwell time and schedules the migration.
    fn schedule_next_migration(&mut self) {
        let (Some(topology), Some(rng)) =
            (self.config.topology.as_ref(), self.topology_rng.as_mut())
        else {
            unreachable!("migration scheduling requires a topology")
        };
        let u = rng.draw();
        let dwell = -f64::ln(1.0 - u) / topology.migration_rate;
        self.push_event(self.now + dwell, Event::Migrate);
    }

    /// Moves the MC to a uniformly chosen *different* cell and kicks off
    /// the ownership handoff. A migration while a flight is already in the
    /// air fences that flight's epoch (abort + rollback to the origin) and
    /// re-initiates toward the new cell, so a live flight always targets
    /// the MC's current cell.
    fn perform_migration(&mut self) {
        let (Some(topology), Some(rng)) =
            (self.config.topology.as_ref(), self.topology_rng.as_mut())
        else {
            unreachable!("migrations require a topology")
        };
        let cells = topology.cells;
        if cells > 1 {
            let mut next = (rng.draw() * (cells - 1) as f64) as usize;
            if next >= self.mc_cell {
                next += 1;
            }
            self.mc_cell = next.min(cells - 1);
        }
        self.migrations += 1;
        if self.handoff.is_some() {
            self.abort_handoff();
        }
        if self.mc_cell != self.owner_cell {
            self.initiate_handoff();
        } else {
            // Moved back into the owner cell: nothing left to migrate.
            self.handoff_stuck = false;
            self.drain_pending();
        }
    }

    /// Starts a fresh three-way handoff flight from the owner cell toward
    /// the MC's current cell under a new epoch, arms its deadline, and
    /// sends the first leg.
    fn initiate_handoff(&mut self) {
        let Some(topology) = self.config.topology.as_ref() else {
            unreachable!("handoffs require a topology")
        };
        debug_assert!(self.handoff.is_none(), "at most one flight in the air");
        debug_assert_ne!(self.owner_cell, self.mc_cell);
        self.handoff_epoch += 1;
        let epoch = self.handoff_epoch;
        let deadline = topology.handoff_deadline;
        self.handoff = Some(HandoffFlight {
            origin: self.owner_cell,
            target: self.mc_cell,
            epoch,
            awaiting: HandoffLeg::Request,
            attempts: 0,
            messages: 0,
            transfer_landed: false,
            snapshot: self.protocol.handoff_snapshot(),
        });
        self.push_event(self.now + deadline, Event::HandoffDeadline { epoch });
        self.send_handoff_leg(HandoffLeg::Request);
    }

    /// One backbone transmission attempt of the awaiting leg: bill it,
    /// draw its fate, schedule the arrival if it survives, and — with the
    /// ARQ transport installed — arm a retransmission timer under the
    /// transport's own timeout law and retry budget. Without ARQ a leg is
    /// sent once and the deadline abort is the only recovery.
    fn send_handoff_leg(&mut self, leg: HandoffLeg) {
        let (Some(topology), Some(rng)) = (self.config.topology, self.topology_rng.as_mut()) else {
            unreachable!("handoff legs require a topology")
        };
        // Two draws per attempt — loss fate, then retry jitter — mirroring
        // the ARQ transport so the stream position is a function of the
        // attempt count alone.
        let lost = rng.draw() < topology.loss_probability;
        let jitter_u = rng.draw();
        let Some(flight) = self.handoff.as_mut() else {
            unreachable!("sending a leg requires a flight in the air")
        };
        flight.attempts += 1;
        flight.messages += 1;
        let attempt = flight.attempts;
        let epoch = flight.epoch;
        self.handoff_messages += 1;
        if !lost {
            // Backbone legs ride SC-to-SC wiring at the base latency: no
            // cellular extra, no wireless billing.
            let arrives = self.now + self.config.latency;
            self.push_event(arrives, Event::HandoffLegArrive { epoch, leg });
            if leg == HandoffLeg::Commit {
                self.inject_commit_ghosts(epoch, arrives);
            }
        }
        if let Some(arq) = self.config.arq.as_ref() {
            if attempt <= arq.retry_budget {
                let rto = arq.timeout_for_attempt(attempt) * (1.0 + arq.jitter * jitter_u);
                self.push_event(
                    self.now + rto,
                    Event::HandoffRetry {
                        epoch,
                        leg,
                        attempt,
                    },
                );
            }
            // Budget exhausted: stop retransmitting and let the deadline
            // abort recover (graceful degradation, not escalation — the
            // wireless link is fine).
        }
    }

    /// Schedules ghost copies of a commit leg (duplication, stale
    /// reordering) when the topology asks for them, from the dedicated
    /// ghost stream. Ghost copies land strictly after the original, so
    /// the epoch fence discards every one of them — the idempotence
    /// property `properties.rs` pins down.
    fn inject_commit_ghosts(&mut self, epoch: u64, arrives: f64) {
        let (duplicate, reorder) = match (
            self.config.topology.as_ref(),
            self.topology_ghost_rng.as_mut(),
        ) {
            (Some(t), Some(rng)) if t.has_ghosts() => (
                t.commit_duplication > 0.0 && rng.draw() < t.commit_duplication,
                t.commit_reorder > 0.0 && rng.draw() < t.commit_reorder,
            ),
            _ => (false, false),
        };
        let latency = self.config.latency;
        let leg = HandoffLeg::Commit;
        if duplicate {
            self.push_event(
                arrives + 0.25 * latency + 1e-6,
                Event::HandoffLegArrive { epoch, leg },
            );
        }
        if reorder {
            self.push_event(
                arrives + 2.5 * latency + 1e-3,
                Event::HandoffLegArrive { epoch, leg },
            );
        }
    }

    /// A handoff leg landed. Stale copies — wrong epoch (fenced flight),
    /// wrong leg (duplicated or reordered copy of an already-processed
    /// one) — self-discard against the fence; a current leg advances the
    /// flight's state machine.
    fn handle_handoff_leg(&mut self, epoch: u64, leg: HandoffLeg) {
        let current = self
            .handoff
            .as_ref()
            .is_some_and(|f| f.epoch == epoch && f.awaiting == leg);
        if !current {
            self.handoff_discards += 1;
            return;
        }
        match leg {
            HandoffLeg::Request => {
                let Some(flight) = self.handoff.as_mut() else {
                    unreachable!("checked above")
                };
                flight.awaiting = HandoffLeg::Transfer;
                flight.attempts = 0;
                self.send_handoff_leg(HandoffLeg::Transfer);
            }
            HandoffLeg::Transfer => {
                let Some(flight) = self.handoff.as_mut() else {
                    unreachable!("checked above")
                };
                debug_assert!(
                    flight.snapshot.version <= self.protocol.sc().version(),
                    "the shipped snapshot cannot be newer than the SC"
                );
                flight.transfer_landed = true;
                flight.awaiting = HandoffLeg::Commit;
                flight.attempts = 0;
                self.send_handoff_leg(HandoffLeg::Commit);
            }
            HandoffLeg::Commit => self.commit_handoff(),
        }
    }

    /// A leg retransmission timer fired. If the flight, leg, and attempt
    /// count still match — the leg neither landed nor was fenced in the
    /// meantime — retransmit it.
    fn handle_handoff_retry(&mut self, epoch: u64, leg: HandoffLeg, attempt: u32) {
        let current = self
            .handoff
            .as_ref()
            .is_some_and(|f| f.epoch == epoch && f.awaiting == leg && f.attempts == attempt);
        if !current {
            return; // landed, advanced, or fenced: stale timer
        }
        self.send_handoff_leg(leg);
    }

    /// The deadline for the flight with `epoch` expired. If that flight is
    /// still in the air, abort it (rollback to the origin cell) and — with
    /// the MC still away from the owner — try again under a fresh epoch.
    fn handle_handoff_deadline(&mut self, epoch: u64) {
        let current = self.handoff.as_ref().is_some_and(|f| f.epoch == epoch);
        if !current {
            return; // committed or already fenced: stale deadline
        }
        self.abort_handoff();
        if self.mc_cell != self.owner_cell {
            self.initiate_handoff();
        }
    }

    /// Aborts the flight in the air: ownership rolls back to (stays at)
    /// the origin cell, the flight's billed legs move to the aborted
    /// tally, an orphaned transfer leaves a stale replica at the target,
    /// and the simulator enters the stuck-handoff degradation — reads are
    /// served stale from the origin and wire-needing requests shed.
    fn abort_handoff(&mut self) {
        let Some(flight) = self.handoff.take() else {
            return;
        };
        self.handoffs_aborted += 1;
        self.aborted_handoff_messages += flight.messages;
        if flight.transfer_landed {
            self.stale_replica[flight.target] = true;
        }
        self.handoff_stuck = true;
        // Degrade like a sustained partition: shed queued wire-needing
        // requests (typed outcome) and serve what completes locally, so
        // the queue cannot wedge behind a handoff of unknown length.
        let queued = std::mem::take(&mut self.pending);
        for arrival in queued {
            if self.needs_wire(arrival.request) {
                self.shed_request(arrival, ShedReason::HandoffStuck);
            } else {
                self.pending.push_back(arrival);
            }
        }
        self.drain_pending();
    }

    /// The commit leg landed at the target: ownership moves, the origin's
    /// replica goes stale, and invalidation traffic (the third message
    /// class) makes every non-owner cell drop its stale copy — one
    /// broadcast per commit round, or one unicast per stale replica.
    fn commit_handoff(&mut self) {
        let Some(flight) = self.handoff.take() else {
            unreachable!("committing requires a flight in the air")
        };
        debug_assert_eq!(
            flight.target, self.mc_cell,
            "a migration mid-flight re-fences the handoff"
        );
        self.settled_handoff_messages += flight.messages;
        self.handoffs_committed += 1;
        self.stale_replica[flight.origin] = true;
        self.owner_cell = flight.target;
        self.stale_replica[flight.target] = false;
        self.handoff_stuck = false;
        let stale = self.stale_replica.iter().filter(|s| **s).count() as u64;
        if stale > 0 {
            let broadcast = self
                .config
                .topology
                .as_ref()
                .is_some_and(|t| t.broadcast_invalidation);
            if broadcast {
                self.invalidation_messages += 1;
                self.invalidation_rounds += 1;
            } else {
                self.invalidation_messages += stale;
            }
            self.replicas_invalidated += stale;
            for s in &mut self.stale_replica {
                *s = false;
            }
        }
        self.drain_pending();
    }

    /// Whether a fresh arrival can enter service right now. FIFO order is
    /// sacrosanct (the §3 serialization is what the oracle equivalence is
    /// proved against), so nothing may overtake an in-flight, suspended, or
    /// queued request. During an outage only requests the protocol serves
    /// without the wire may proceed: local reads survive a doze or an SC
    /// outage (not an MC crash), silent writes need a live SC only.
    fn can_begin_service(&self, request: Request) -> bool {
        if self.in_flight.is_some() || self.suspended.is_some() || !self.pending.is_empty() {
            return false;
        }
        self.request_is_servable(request)
    }

    /// Whether the protocol can accept `request` in its current state:
    /// never during a reconciliation handshake (in flight or owed — the
    /// protocol rejects submissions while recovering), always on a live
    /// link, and during an outage only for the local-read / silent-write
    /// cases `can_begin_service` documents. Shared by the fresh-arrival
    /// gate and the queue drain so neither can overtake a handshake.
    fn request_is_servable(&self, request: Request) -> bool {
        if self.reconciling || self.protocol.recovering() {
            return false;
        }
        // A handoff stuck past its deadline blocks wire-needing requests:
        // ownership is mid-migration between cells, so neither SC may run
        // the exchange. Local reads still go through (served stale from
        // the origin cell) and silent writes complete on the MC alone.
        if self.handoff_stuck && self.needs_wire(request) {
            return false;
        }
        if self.link_up {
            return true;
        }
        match (self.outage_kind, request) {
            (Some(FaultKind::Doze | FaultKind::ScOutage), Request::Read) => {
                self.protocol.mc().has_copy()
            }
            (
                Some(FaultKind::Doze | FaultKind::CrashVolatile | FaultKind::CrashStable),
                Request::Write,
            ) => !self.protocol.sc().mc_has_copy(),
            _ => false,
        }
    }

    /// Starts serving one arrival by submitting it to the protocol. Local
    /// operations complete inline; remote ones put a message on the wire and
    /// park in `in_flight`.
    fn begin_service(&mut self, arrival: Arrival) {
        debug_assert!(self.in_flight.is_none());
        match self.protocol.submit(arrival.request) {
            StepOutcome::Completed(action) => {
                if action == Action::LocalRead {
                    self.reads_completed += 1; // zero added latency
                    if self.degraded() {
                        // Served from the replica while partitioned beyond
                        // the deadline: a degraded, staleness-tracked read.
                        let Some(since) = self.partitioned_since else {
                            unreachable!("degraded mode implies a partition start time")
                        };
                        self.degraded_reads += 1;
                        self.staleness_sum += self.now - since;
                    }
                    if self.mc_cell != self.owner_cell {
                        // Window ownership is away from (or migrating
                        // toward) the MC's cell: the read is served stale
                        // from the origin cell's state.
                        self.stale_reads += 1;
                    }
                }
                self.complete(arrival, action);
            }
            StepOutcome::Sent(envelope) => {
                debug_assert!(
                    self.link_up,
                    "wire traffic submitted while the link is down"
                );
                self.in_flight = Some(Exchange {
                    request: arrival.request,
                    arrived_at: arrival.time,
                });
                self.transmit(envelope, false);
            }
            StepOutcome::Reconciled => unreachable!("submit never reconciles"),
        }
    }

    /// Re-submits an exchange a disconnection aborted. Its queueing stats
    /// were recorded at the original submission and its schedule entry is
    /// recorded at completion; only the protocol work is redone. The
    /// recovery may have changed the
    /// allocation state enough that the retry now completes locally (e.g.
    /// a propagating write turns silent once the replica was retracted).
    fn resume_service(&mut self, exchange: Exchange) {
        debug_assert!(self.in_flight.is_none());
        match self.protocol.submit(exchange.request) {
            StepOutcome::Completed(action) => {
                if exchange.request == Request::Read {
                    self.read_latency_sum += self.now - exchange.arrived_at;
                    self.reads_completed += 1;
                }
                self.complete(
                    Arrival {
                        time: exchange.arrived_at,
                        request: exchange.request,
                    },
                    action,
                );
            }
            StepOutcome::Sent(envelope) => {
                self.in_flight = Some(exchange);
                self.transmit(envelope, false);
            }
            StepOutcome::Reconciled => unreachable!("submit never reconciles"),
        }
    }

    /// Handles a scheduled delivery by stepping the protocol's transition
    /// relation — if the envelope is still current. Ghost deliveries
    /// (duplicates, stale reorders, envelopes destroyed by a disconnection)
    /// are discarded by the protocol's epoch/sequence guards.
    fn handle_delivery(&mut self, envelope: &Envelope) {
        let Some(outcome) = self.protocol.receive(envelope) else {
            self.discarded_deliveries += 1;
            return;
        };
        if self.config.arq.is_some() {
            // The envelope got through: its retransmission timer is settled
            // (a response supersedes it below; a completion acks it
            // explicitly), and any partition in progress has healed.
            if self
                .arq_outstanding
                .as_ref()
                .is_some_and(|out| out.envelope == *envelope)
            {
                self.arq_outstanding = None;
            }
            if let Some(since) = self.partitioned_since.take() {
                self.recovery_time_sum += self.now - since;
                self.recoveries += 1;
            }
        }
        match outcome {
            StepOutcome::Sent(response) => {
                // The response acknowledges the delivered envelope
                // implicitly; its own timer takes over the outstanding slot.
                let reconciliation = self.reconciling;
                self.transmit(response, reconciliation);
            }
            StepOutcome::Completed(action) => {
                let Some(exchange) = self.in_flight else {
                    unreachable!("completion without an exchange in flight")
                };
                if matches!(action, Action::RemoteRead { .. }) {
                    self.read_latency_sum += self.now - exchange.arrived_at;
                    self.reads_completed += 1;
                }
                // Nothing speaks next in this exchange: close it with an
                // explicit transport-level acknowledgement.
                self.bill_ack();
                self.finish_exchange(action);
            }
            StepOutcome::Reconciled => {
                self.bill_ack();
                self.reconciling = false;
                self.pending_crash = None;
                self.reconciliations += 1;
                self.resume_after_outage();
            }
        }
    }

    fn finish_exchange(&mut self, action: Action) {
        let Some(exchange) = self.in_flight.take() else {
            unreachable!("no exchange to finish")
        };
        self.exchange_messages = 0;
        self.settled_retransmissions += self.exchange_retrans;
        self.exchange_retrans = 0;
        self.complete(
            Arrival {
                time: exchange.arrived_at,
                request: exchange.request,
            },
            action,
        );
        self.drain_pending();
    }

    /// Serves queued arrivals until one cannot be served in the current
    /// state (or none are left): local reads and silent writes complete
    /// inline and must not stall the queue. Stops at the first unservable
    /// head — e.g. when an ARQ escalation interrupted the reconciliation
    /// handshake, so the protocol is still recovering; the pending LinkUp
    /// probe re-drains once the handshake settles. Respects the request
    /// target exactly.
    fn drain_pending(&mut self) {
        while self.in_flight.is_none() && self.served < self.target {
            let servable = self
                .pending
                .front()
                .is_some_and(|next| self.request_is_servable(next.request));
            if !servable {
                break;
            }
            let Some(next) = self.pending.pop_front() else {
                unreachable!("checked above")
            };
            self.begin_service(next);
        }
    }

    /// Draws the waiting time to the next disconnection and schedules it.
    /// No-op without a fault plan (or at disconnect rate zero).
    fn schedule_next_link_down(&mut self) {
        let (Some(plan), Some(rng)) = (self.config.faults.as_ref(), self.fault_rng.as_mut()) else {
            return;
        };
        if plan.disconnect_rate <= 0.0 {
            return;
        }
        let u = rng.draw();
        let gap = -f64::ln(1.0 - u) / plan.disconnect_rate;
        self.push_event(self.now + gap, Event::LinkDown);
    }

    /// Classifies the outage that just began and draws its duration.
    fn draw_outage(&mut self) -> (FaultKind, f64) {
        let (Some(plan), Some(rng)) = (self.config.faults.as_ref(), self.fault_rng.as_mut()) else {
            unreachable!("link events require a fault plan")
        };
        let classify = rng.draw();
        let kind = if classify < plan.crash_probability {
            if rng.draw() < plan.volatile_probability {
                FaultKind::CrashVolatile
            } else {
                FaultKind::CrashStable
            }
        } else if classify < plan.crash_probability + plan.sc_outage_probability {
            FaultKind::ScOutage
        } else {
            FaultKind::Doze
        };
        let u = rng.draw();
        (kind, -f64::ln(1.0 - u) * plan.mean_outage)
    }

    /// The link goes down: classify the outage, destroy everything in
    /// flight (suspending a mid-exchange request for retry), and note a
    /// crash's owed reconciliation.
    fn handle_link_down(&mut self) {
        debug_assert!(
            self.link_up || self.declared_down,
            "link-down while already down"
        );
        self.link_up = false;
        // An injected outage supersedes a declared (ARQ) partition in
        // progress; the partition start time is kept for MTTR purposes.
        self.declared_down = false;
        if self.config.arq.is_some() {
            self.arq_outstanding = None; // in-air timers are now stale
            if self.partitioned_since.is_none() {
                self.partitioned_since = Some(self.now);
            }
        }
        let (kind, duration) = self.draw_outage();
        self.disconnects += 1;
        match kind {
            FaultKind::CrashVolatile | FaultKind::CrashStable => self.mc_crashes += 1,
            FaultKind::ScOutage => self.sc_outages += 1,
            FaultKind::Doze => {}
        }
        self.outage_kind = Some(kind);
        // Resolution order for simultaneous faults is deterministic and
        // documented, matching the event queue's (time, actor-id, seq)
        // tie-break: the network/SC side resolves first — the outage tears
        // the in-flight exchange off the wire — and only then is MC-side
        // crash state (the owed reconciliation, volatile-replica loss)
        // applied. An SC outage landing during an in-flight exchange at
        // the same instant as an MC crash therefore always aborts the
        // exchange before the crash is bookkept, regardless of scheduling
        // order.
        if self.in_flight.is_some() {
            let aborted = self.protocol.disconnect();
            let Some(exchange) = self.in_flight.take() else {
                unreachable!("in_flight checked above")
            };
            debug_assert_eq!(aborted, Some(exchange.request));
            self.aborted_messages += self.exchange_messages;
            self.exchange_messages = 0;
            self.exchange_retrans = 0;
            self.extra_connections += 1; // the wasted connection setup
            self.suspended = Some(exchange);
        } else {
            // Clears a handshake (or nothing) off the wire; an interrupted
            // handshake restarts at the next link-up (`pending_crash` and
            // the protocol's `recovering` flag both persist).
            let _ = self.protocol.disconnect();
        }
        if matches!(kind, FaultKind::CrashVolatile | FaultKind::CrashStable) {
            let volatile = matches!(kind, FaultKind::CrashVolatile);
            // A second crash before the first reconciled keeps the stronger
            // (volatile) classification.
            self.pending_crash = Some(self.pending_crash.unwrap_or(false) || volatile);
            if volatile {
                // The oracle learns of the loss at crash time; the protocol
                // applies it when the handshake starts. No request is served
                // in between, so the two stay equivalent (and the policy
                // hook is idempotent over the gap).
                if let Some(oracle) = &mut self.oracle {
                    oracle.on_replica_lost();
                }
            }
        }
        self.reconciling = false;
        self.link_token += 1;
        let token = self.link_token;
        self.push_event(self.now + duration, Event::LinkUp { token });
    }

    /// The link comes back: bump the epoch (stale deliveries self-discard
    /// from here on), then either run the owed reconciliation handshake or
    /// resume service directly. Stale link-up events (an ARQ probe
    /// superseded by an injected outage, or vice versa) are ignored by
    /// token.
    fn handle_link_up(&mut self, token: u64) {
        if token != self.link_token {
            return;
        }
        debug_assert!(!self.link_up, "link-up while already up");
        // Healing a *declared* (ARQ-escalated) partition must not draw a
        // fresh disconnection: the up-period's injected LinkDown is still
        // in the queue and rescheduling would stack a duplicate that later
        // fires while the link is already down.
        let heals_injected = !self.declared_down;
        self.link_up = true;
        self.declared_down = false;
        self.outage_kind = None;
        self.protocol.reconnect();
        if heals_injected {
            self.schedule_next_link_down();
        }
        if let Some(volatile) = self.pending_crash {
            self.reconciling = true;
            match self.protocol.begin_reconciliation(volatile) {
                StepOutcome::Sent(envelope) => {
                    self.extra_connections += 1; // the handshake's connection
                    self.transmit(envelope, true);
                }
                outcome => unreachable!("reconciliation must start with a send: {outcome:?}"),
            }
        } else {
            self.resume_after_outage();
        }
    }

    /// Retries the suspended exchange (if any) and drains the queue —
    /// called at link-up for fault kinds that owe no handshake, and after
    /// `Reconciled` for the ones that do.
    fn resume_after_outage(&mut self) {
        if let Some(exchange) = self.suspended.take() {
            self.resume_service(exchange);
        }
        self.drain_pending();
    }

    /// Records the served request in the schedule (the protocol ledger
    /// already tallied the action) and re-checks all invariants. The
    /// schedule entry is made here, at completion, so shed requests never
    /// appear in it and `schedule.len()` always equals `counts.total()`.
    fn complete(&mut self, arrival: Arrival, action: Action) {
        self.schedule.push(arrival.request);
        self.served += 1;
        self.check_invariants(arrival.request, action);
    }

    fn check_invariants(&mut self, request: Request, action: Action) {
        // Protocol safety: replica agreement, freshness, single window
        // owner — checked online by the monitor, even mid-fault.
        self.monitor
            .check_completion(self.config.policy, &self.protocol, action);
        // Ledger consistency: every billed attempt is accounted for. The
        // at-risk tallies of the exchange that just completed were settled
        // before `complete` ran, so the identity is exact here.
        let counts = self.protocol.counts();
        self.monitor.check_billing(
            self.data_messages + self.control_messages,
            counts.data_messages() + counts.control_messages(),
            self.settled_retransmissions,
            self.aborted_messages + self.exchange_messages,
            self.reconciliation_messages,
            self.arq_acks,
        );
        // Handoff-ledger consistency (mobility extension): backbone legs
        // and invalidation traffic close their own identities — handoff
        // billing is a separate class, never mixed into the §3 wireless
        // bill above. Skipped for an inert plan, which must reproduce the
        // single-cell run exactly — including the check counter.
        if self.topology_active() {
            let in_flight = self.handoff.as_ref().map_or(0, |f| f.messages);
            let broadcast = self
                .config
                .topology
                .as_ref()
                .is_some_and(|t| t.broadcast_invalidation);
            let invalidation_expected = if broadcast {
                self.invalidation_rounds
            } else {
                self.replicas_invalidated
            };
            self.monitor.check_handoff_billing(
                self.handoff_messages,
                self.settled_handoff_messages,
                self.aborted_handoff_messages,
                in_flight,
                self.invalidation_messages,
                invalidation_expected,
            );
        }
        // Oracle equivalence: the distributed protocol must take exactly
        // the action the decision core decides for the same request.
        if let Some(oracle) = &mut self.oracle {
            let decision = oracle.decide(request);
            assert_eq!(
                action, decision.action,
                "distributed execution diverged from the decision core on request {}",
                self.served
            );
            assert_eq!(
                decision.has_copy,
                self.protocol.mc().has_copy(),
                "replica state diverged"
            );
        }
    }

    fn report(&self) -> SimReport {
        let counts = self.protocol.counts();
        SimReport {
            schedule: self.schedule.clone(),
            counts,
            data_messages: self.data_messages,
            control_messages: self.control_messages,
            connections: counts.connections() + self.extra_connections,
            makespan: self.now,
            mean_read_latency: if self.reads_completed == 0 {
                0.0
            } else {
                self.read_latency_sum / self.reads_completed as f64
            },
            queued_requests: self.queued_requests,
            allocations: counts.allocations(),
            deallocations: counts.deallocations(),
            retransmissions: self.retransmissions,
            handoffs: self.handoffs,
            disconnects: self.disconnects,
            mc_crashes: self.mc_crashes,
            sc_outages: self.sc_outages,
            duplicated_deliveries: self.duplicated_deliveries,
            discarded_deliveries: self.discarded_deliveries,
            aborted_messages: self.aborted_messages,
            reconciliation_messages: self.reconciliation_messages,
            reconciliations: self.reconciliations,
            settled_retransmissions: self.settled_retransmissions,
            arq_acks: self.arq_acks,
            retry_escalations: self.retry_escalations,
            shed: self.shed.clone(),
            degraded_reads: self.degraded_reads,
            staleness_sum: self.staleness_sum,
            recovery_time_sum: self.recovery_time_sum,
            recoveries: self.recoveries,
            invariant_checks: self.monitor.checks(),
            events_processed: self.events_processed,
            migrations: self.migrations,
            handoffs_committed: self.handoffs_committed,
            handoffs_aborted: self.handoffs_aborted,
            handoff_messages: self.handoff_messages,
            settled_handoff_messages: self.settled_handoff_messages,
            aborted_handoff_messages: self.aborted_handoff_messages,
            invalidation_messages: self.invalidation_messages,
            invalidation_rounds: self.invalidation_rounds,
            replicas_invalidated: self.replicas_invalidated,
            stale_reads: self.stale_reads,
            handoff_discards: self.handoff_discards,
        }
    }
}

impl Simulation {
    /// Convenience constructor-and-run: simulate `spec` over a fresh
    /// Poisson workload with default latency and the oracle check on.
    ///
    /// This (with [`Simulation::run_schedule`]) is the uniform
    /// cell-execution signature the sweep engine fans out over.
    pub fn run_poisson(spec: PolicySpec, theta: f64, requests: usize, seed: u64) -> SimReport {
        let mut sim = Simulation::new(SimConfig::defaults(spec));
        let mut workload = crate::workload::PoissonWorkload::from_theta(1.0, theta, seed);
        sim.run(&mut workload, RunLimit::Requests(requests))
    }

    /// Convenience constructor-and-run: push an explicit schedule through
    /// the full protocol (near-zero latency so queueing never perturbs the
    /// serialized order).
    pub fn run_schedule(spec: PolicySpec, schedule: &Schedule) -> SimReport {
        let mut config = SimConfig::defaults(spec);
        config.latency = 0.001;
        let mut sim = Simulation::new(config);
        let mut workload = crate::workload::TraceWorkload::new(schedule.clone(), 1.0);
        sim.run(&mut workload, RunLimit::Requests(schedule.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimBuilder;
    use mdr_core::run_spec;

    #[test]
    fn protocol_equals_reference_policy_on_fixed_schedules() {
        let schedules = ["rrrwwwrrr", "rwrwrwrwrw", "wwwwwrrrrrwwwww", "r", "w", ""];
        for spec in PolicySpec::roster(&[1, 3, 5, 9], &[1, 2, 4]) {
            for s in schedules {
                let sched: Schedule = s.parse().unwrap();
                let report = Simulation::run_schedule(spec, &sched);
                let reference = run_spec(spec, &sched, CostModel::Connection);
                assert_eq!(report.counts, reference.counts, "{spec} on {s}");
                assert_eq!(report.cost(CostModel::Connection), reference.total_cost);
                for omega in [0.0, 0.3, 1.0] {
                    let model = CostModel::message(omega);
                    let reference = run_spec(spec, &sched, model);
                    assert!(
                        (report.cost(model) - reference.total_cost).abs() < 1e-9,
                        "{spec} on {s} at ω={omega}"
                    );
                }
            }
        }
    }

    #[test]
    fn protocol_equals_reference_on_poisson_workloads() {
        for spec in PolicySpec::roster(&[1, 7], &[3]) {
            for theta in [0.2, 0.5, 0.8] {
                // oracle_check is on by default: the run itself asserts
                // step-by-step equivalence.
                let report = Simulation::run_poisson(spec, theta, 2_000, 99);
                assert_eq!(report.counts.total(), 2_000);
            }
        }
    }

    #[test]
    fn empirical_cost_matches_analytic_exp() {
        // SW5 at θ = 0.3 in the connection model, 60k requests: the
        // per-request cost must approach Eq. 5.
        let report = Simulation::run_poisson(PolicySpec::SlidingWindow { k: 5 }, 0.3, 60_000, 7);
        let measured = report.cost_per_request(CostModel::Connection);
        // π_5(0.3) = P(Bin(5, 0.3) ≤ 2).
        let pi = (0..=2)
            .map(|j| {
                let c = [1.0, 5.0, 10.0][j];
                c * 0.3f64.powi(j as i32) * 0.7f64.powi(5 - j as i32)
            })
            .sum::<f64>();
        let analytic = 0.3 * pi + 0.7 * (1.0 - pi);
        assert!(
            (measured - analytic).abs() < 0.01,
            "{measured} vs {analytic}"
        );
    }

    #[test]
    fn makespan_and_latency_grow_with_link_latency() {
        let sched: Schedule = "rwrwrwrwrw".parse().unwrap();
        let run = |latency: f64| {
            let mut sim = SimBuilder::new(PolicySpec::St1)
                .and_then(|b| b.latency(latency))
                .unwrap()
                .simulation();
            let mut w = crate::workload::TraceWorkload::new(sched.clone(), 1.0);
            sim.run(&mut w, RunLimit::Requests(sched.len()))
        };
        let fast = run(0.0);
        let slow = run(0.4);
        assert!(slow.mean_read_latency > fast.mean_read_latency);
        assert!(slow.makespan >= fast.makespan);
        // ST1 remote read costs a round trip.
        assert!((slow.mean_read_latency - 0.8).abs() < 1e-9);
    }

    #[test]
    fn queueing_happens_when_arrivals_outpace_the_link() {
        // Requests every 0.1 time units, round trip 2×0.3: reads must queue.
        let sched = Schedule::all_reads(50);
        let mut sim = SimBuilder::new(PolicySpec::St1)
            .and_then(|b| b.latency(0.3))
            .unwrap()
            .simulation();
        let mut w = crate::workload::TraceWorkload::new(sched, 0.1);
        let report = sim.run(&mut w, RunLimit::Requests(50));
        assert!(report.queued_requests > 0);
        assert_eq!(report.counts.total(), 50);
        // Serialization keeps the cost exactly reads × 1 connection.
        assert_eq!(report.cost(CostModel::Connection), 50.0);
    }

    #[test]
    fn time_limit_stops_the_run() {
        let mut sim = SimBuilder::new(PolicySpec::St2).unwrap().simulation();
        let mut w = crate::workload::PoissonWorkload::from_theta(10.0, 0.5, 3);
        let report = sim.run(&mut w, RunLimit::Time(5.0));
        // ≈ 50 expected arrivals; generous envelope.
        let n = report.counts.total();
        assert!(n > 10 && n < 150, "{n}");
        assert!(report.makespan <= 5.0 + 1.0, "{}", report.makespan);
    }

    #[test]
    fn message_counts_split_by_class() {
        // SW1 on r,w,r,w…: each read = 1 control + 1 data; each write = 1
        // control (delete-request).
        let sched = Schedule::alternating(Request::Read, 20);
        let report = Simulation::run_schedule(PolicySpec::SlidingWindow { k: 1 }, &sched);
        assert_eq!(report.data_messages, 10);
        assert_eq!(report.control_messages, 20);
        assert_eq!(report.cost(CostModel::message(0.5)), 10.0 + 0.5 * 20.0);
    }

    #[test]
    fn report_costs_are_consistent_with_counts() {
        let report = Simulation::run_poisson(PolicySpec::SlidingWindow { k: 3 }, 0.5, 3_000, 21);
        assert_eq!(report.data_messages, report.counts.data_messages());
        assert_eq!(report.control_messages, report.counts.control_messages());
        assert_eq!(report.connections, report.counts.connections());
        assert_eq!(report.allocations, report.counts.allocations());
        assert_eq!(report.deallocations, report.counts.deallocations());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Simulation::run_poisson(PolicySpec::SlidingWindow { k: 9 }, 0.4, 5_000, 1234);
        let b = Simulation::run_poisson(PolicySpec::SlidingWindow { k: 9 }, 0.4, 5_000, 1234);
        assert_eq!(a, b);
    }

    #[test]
    fn config_equality_discriminates_every_field() {
        // `SimConfig`'s hand-written `PartialEq` must notice a change in
        // any single field — a comparison that short-circuits true would
        // let the sweep engine conflate distinct runs.
        let base = || SimConfig {
            policy: PolicySpec::St1,
            latency: 0.1,
            oracle_check: true,
            loss: None,
            arq: None,
            mobility: None,
            faults: None,
            topology: None,
        };
        assert_eq!(base(), base());
        let mut c = base();
        c.policy = PolicySpec::St2;
        assert_ne!(base(), c);
        let mut c = base();
        c.latency = 0.2;
        assert_ne!(base(), c);
        let mut c = base();
        c.oracle_check = false;
        assert_ne!(base(), c);
        let mut c = base();
        c.loss = Some(LossConfig {
            loss_probability: 0.1,
            retry_timeout: 0.5,
            seed: 1,
        });
        assert_ne!(base(), c);
        let mut c = base();
        c.arq = Some(ArqConfig::new(0.1, 0.05, 1).unwrap());
        assert_ne!(base(), c);
        let mut c = base();
        c.mobility = Some(MobilityConfig {
            cell_extra_latency: vec![0.0],
            handoff_rate: 0.5,
            seed: 3,
        });
        assert_ne!(base(), c);
        let mut c = base();
        c.faults = Some(FaultPlan::new(0.05, 2.0, 3).unwrap());
        assert_ne!(base(), c);
        let mut c = base();
        c.topology = Some(TopologyConfig::new(3, 0.5, 2.0, 7).unwrap());
        assert_ne!(base(), c);
    }

    #[test]
    fn mobility_config_equality_discriminates_every_field() {
        let base = || MobilityConfig {
            cell_extra_latency: vec![0.0, 0.1],
            handoff_rate: 0.5,
            seed: 3,
        };
        assert_eq!(base(), base());
        let mut m = base();
        m.cell_extra_latency = vec![0.0, 0.2];
        assert_ne!(base(), m);
        let mut m = base();
        m.cell_extra_latency = vec![0.0];
        assert_ne!(base(), m);
        let mut m = base();
        m.handoff_rate = 0.7;
        assert_ne!(base(), m);
        let mut m = base();
        m.seed = 4;
        assert_ne!(base(), m);
    }

    #[test]
    fn invariant_monitor_counts_handoff_billing_checks() {
        // The monitor's check tally feeds `SimReport::invariant_checks`;
        // a handoff-billing check that forgets to count itself would
        // under-report the run's online coverage.
        let mut monitor = InvariantMonitor::new();
        assert_eq!(monitor.checks(), 0);
        monitor.check_handoff_billing(3, 3, 0, 0, 5, 5);
        assert_eq!(monitor.checks(), 1);
        monitor.check_handoff_billing(7, 3, 3, 1, 0, 0);
        assert_eq!(monitor.checks(), 2);
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;
    use crate::faults::ConfigError;
    use crate::SimBuilder;
    use mdr_core::run_spec;

    fn lossy_run(loss: f64, seed: u64) -> SimReport {
        let spec = PolicySpec::SlidingWindow { k: 5 };
        let mut sim = SimBuilder::new(spec)
            .and_then(|b| b.loss(loss, 0.05, seed))
            .unwrap()
            .simulation();
        let mut workload = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 99);
        sim.run(&mut workload, RunLimit::Requests(8_000))
    }

    #[test]
    fn zero_loss_is_identical_to_the_lossless_link() {
        let lossless = {
            let mut sim = SimBuilder::new(PolicySpec::SlidingWindow { k: 5 })
                .unwrap()
                .simulation();
            let mut w = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 99);
            sim.run(&mut w, RunLimit::Requests(8_000))
        };
        let zero = lossy_run(0.0, 1);
        assert_eq!(zero.counts, lossless.counts);
        assert_eq!(zero.data_messages, lossless.data_messages);
        assert_eq!(zero.retransmissions, 0);
    }

    #[test]
    fn loss_inflates_the_bill_without_changing_actions() {
        // The oracle check stays on: actions must match the reference
        // policy exactly even on a lossy link.
        let lossy = lossy_run(0.3, 7);
        let spec = PolicySpec::SlidingWindow { k: 5 };
        let reference = run_spec(spec, &lossy.schedule, CostModel::Connection);
        assert_eq!(lossy.counts, reference.counts, "actions unchanged by loss");
        assert!(lossy.retransmissions > 0);
        // Bill inflation ≈ 1/(1 − p): each transmission succeeds with
        // probability 0.7, so attempts per message average 1/0.7.
        let base = (lossy.counts.data_messages() + lossy.counts.control_messages()) as f64;
        let billed = (lossy.data_messages + lossy.control_messages) as f64;
        let inflation = billed / base;
        assert!(
            (inflation - 1.0 / 0.7).abs() < 0.05,
            "inflation {inflation} vs expected {:.4}",
            1.0 / 0.7
        );
    }

    #[test]
    fn retransmissions_add_latency() {
        let lossless = lossy_run(0.0, 3);
        let lossy = lossy_run(0.5, 3);
        assert!(lossy.mean_read_latency > lossless.mean_read_latency);
    }

    #[test]
    fn loss_model_is_deterministic_per_seed() {
        let a = lossy_run(0.4, 11);
        let b = lossy_run(0.4, 11);
        assert_eq!(a, b);
        let c = lossy_run(0.4, 12);
        assert_ne!(a.retransmissions, c.retransmissions);
    }

    #[test]
    fn invalid_loss_parameters_are_rejected() {
        let spec = PolicySpec::St1;
        let fresh = || SimBuilder::new(spec).unwrap();
        assert_eq!(
            fresh().loss(1.0, 0.1, 0).unwrap_err(),
            ConfigError::LossProbability { value: 1.0 }
        );
        assert_eq!(
            fresh().loss(-0.1, 0.1, 0).unwrap_err(),
            ConfigError::LossProbability { value: -0.1 }
        );
        assert_eq!(
            fresh().loss(0.3, 0.0, 0).unwrap_err(),
            ConfigError::RetryTimeout { value: 0.0 }
        );
        assert!(matches!(
            fresh().loss(f64::NAN, 0.1, 0).unwrap_err(),
            ConfigError::LossProbability { .. }
        ));
        // The error is a value, not a panic: it displays its cause.
        let err = fresh().loss(1.0, 0.1, 0).unwrap_err();
        assert!(err.to_string().contains("loss probability"), "{err}");
    }
}

#[cfg(test)]
mod mobility_tests {
    use super::*;
    use crate::faults::ConfigError;
    use crate::SimBuilder;

    fn mobile_run(mobility: bool, seed: u64) -> SimReport {
        let spec = PolicySpec::SlidingWindow { k: 5 };
        let mut builder = SimBuilder::new(spec).and_then(|b| b.latency(0.02)).unwrap();
        if mobility {
            // Three cells: a fast downtown microcell, a mid suburb, and a
            // slow rural macrocell.
            builder = builder.mobility(vec![0.0, 0.05, 0.2], 0.5, seed).unwrap();
        }
        let mut sim = builder.simulation();
        let mut workload = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 4242);
        sim.run(&mut workload, RunLimit::Requests(6_000))
    }

    #[test]
    fn mobility_never_changes_cost() {
        // §1: the stationary computer "does not change when the mobile
        // computer moves from cell to cell" — so neither does the bill.
        let fixed = mobile_run(false, 0);
        let roaming = mobile_run(true, 9);
        assert_eq!(fixed.counts, roaming.counts);
        assert_eq!(
            fixed.cost(CostModel::message(0.5)),
            roaming.cost(CostModel::message(0.5))
        );
        assert_eq!(
            fixed.cost(CostModel::Connection),
            roaming.cost(CostModel::Connection)
        );
    }

    #[test]
    fn mobility_changes_latency_and_counts_handoffs() {
        let fixed = mobile_run(false, 0);
        let roaming = mobile_run(true, 9);
        assert!(
            roaming.handoffs > 100,
            "dwell 2 time units over a ~6000-unit run"
        );
        assert!(roaming.mean_read_latency > fixed.mean_read_latency);
        assert_eq!(fixed.handoffs, 0);
    }

    #[test]
    fn mobility_is_deterministic_per_seed() {
        let a = mobile_run(true, 5);
        let b = mobile_run(true, 5);
        assert_eq!(a, b);
        let c = mobile_run(true, 6);
        assert_ne!(a.handoffs, c.handoffs);
    }

    #[test]
    fn handoff_always_moves_to_a_different_cell() {
        // With two cells the MC must alternate; verified indirectly via the
        // latency mix: both cells' latencies must appear.
        let spec = PolicySpec::St1;
        let mut sim = SimBuilder::new(spec)
            .and_then(|b| b.latency(0.0))
            .and_then(|b| b.mobility(vec![0.0, 1.0], 5.0, 3))
            .unwrap()
            .simulation();
        let mut workload = crate::workload::PoissonWorkload::from_theta(0.2, 0.0, 7);
        let report = sim.run(&mut workload, RunLimit::Requests(400));
        // All requests are reads (θ = 0); mean read latency is a mix of
        // 2·0.0 and 2·1.0 round trips — strictly between the extremes.
        assert!(report.mean_read_latency > 0.1 && report.mean_read_latency < 1.9);
        assert!(report.handoffs > 50);
    }

    #[test]
    fn invalid_mobility_parameters_are_rejected() {
        let spec = PolicySpec::St1;
        let fresh = || SimBuilder::new(spec).unwrap();
        assert_eq!(
            fresh().mobility(vec![], 1.0, 0).unwrap_err(),
            ConfigError::NoCells
        );
        assert_eq!(
            fresh().mobility(vec![0.1, -0.2], 1.0, 0).unwrap_err(),
            ConfigError::CellLatency { value: -0.2 }
        );
        assert_eq!(
            fresh().mobility(vec![0.1], 0.0, 0).unwrap_err(),
            ConfigError::HandoffRate { value: 0.0 }
        );
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::SimBuilder;
    use mdr_core::run_spec;

    fn faulty_config(spec: PolicySpec, rate: f64, seed: u64) -> SimConfig {
        let plan = FaultPlan::new(rate, 2.0, seed)
            .and_then(|p| p.with_crashes(0.4, 0.6))
            .and_then(|p| p.with_sc_outages(0.2))
            .and_then(|p| p.with_duplication(0.05, 0.05))
            .unwrap();
        SimBuilder::new(spec)
            .and_then(|b| b.faults(plan))
            .unwrap()
            .build()
    }

    fn faulty_run(spec: PolicySpec, rate: f64, seed: u64, n: usize) -> SimReport {
        let mut sim = Simulation::new(faulty_config(spec, rate, seed));
        let mut w = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 4711);
        sim.run(&mut w, RunLimit::Requests(n))
    }

    #[test]
    fn fault_schedules_are_deterministic() {
        // Acceptance criterion: identical (FaultPlan, seed) configurations
        // produce byte-identical reports — cost ledger included.
        let a = faulty_run(PolicySpec::SlidingWindow { k: 3 }, 0.05, 1, 4_000);
        let b = faulty_run(PolicySpec::SlidingWindow { k: 3 }, 0.05, 1, 4_000);
        assert_eq!(a, b);
        assert!(a.disconnects > 0);
        assert!(a.mc_crashes > 0);
        assert!(a.sc_outages > 0);
        // A different fault seed produces a different fault history.
        let c = faulty_run(PolicySpec::SlidingWindow { k: 3 }, 0.05, 2, 4_000);
        assert_ne!(a.disconnects, c.disconnects);
    }

    #[test]
    fn doze_outages_change_the_bill_but_not_the_actions() {
        // Pure dozes: no crashes, so the ledger must replay exactly against
        // the reference policy; only wasted (aborted) traffic is added.
        let plan = FaultPlan::new(0.05, 2.0, 3).unwrap();
        let spec = PolicySpec::SlidingWindow { k: 5 };
        let mut sim = SimBuilder::new(spec)
            .and_then(|b| b.faults(plan))
            .unwrap()
            .simulation();
        let mut w = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 99);
        let report = sim.run(&mut w, RunLimit::Requests(6_000));
        assert_eq!(report.counts.total(), 6_000);
        assert!(report.disconnects > 0);
        assert_eq!(report.mc_crashes, 0);
        assert_eq!(report.reconciliations, 0);
        let reference = run_spec(spec, &report.schedule, CostModel::Connection);
        assert_eq!(
            report.counts, reference.counts,
            "actions unchanged by dozes"
        );
        // Aborted attempts inflate the bill beyond the ledger-derived count.
        let billed = report.data_messages + report.control_messages;
        let ledger = report.counts.data_messages() + report.counts.control_messages();
        assert_eq!(billed, ledger + report.aborted_messages);
        assert!(report.aborted_messages > 0);
        assert!(report.connections > report.counts.connections());
    }

    #[test]
    fn crash_recovery_keeps_the_oracle_equivalence() {
        // oracle_check is on by default: every completion asserts action and
        // replica-state equivalence with the reference policy, across
        // volatile/stable crashes, SC outages and reconciliations.
        for spec in PolicySpec::roster(&[1, 3], &[2]) {
            let report = faulty_run(spec, 0.08, 5, 5_000);
            assert_eq!(report.counts.total(), 5_000, "{spec}");
            assert!(report.mc_crashes > 0, "{spec}");
            assert!(report.reconciliations > 0, "{spec}");
            assert!(report.reconciliation_messages > 0, "{spec}");
        }
    }

    #[test]
    fn duplicates_and_reorders_are_discarded_without_billing() {
        let spec = PolicySpec::SlidingWindow { k: 3 };
        let run_with = |faults: Option<FaultPlan>| {
            let mut builder = SimBuilder::new(spec).unwrap();
            if let Some(plan) = faults {
                builder = builder.faults(plan).unwrap();
            }
            let mut sim = builder.simulation();
            let mut w = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 77);
            sim.run(&mut w, RunLimit::Requests(5_000))
        };
        let clean = run_with(None);
        let plan = FaultPlan::new(0.0, 1.0, 8)
            .and_then(|p| p.with_duplication(0.3, 0.2))
            .unwrap();
        let noisy = run_with(Some(plan));
        // Ghost deliveries change nothing observable but the fault counters:
        // schedule, ledger, bill and connections are identical.
        assert_eq!(noisy.schedule, clean.schedule);
        assert_eq!(noisy.counts, clean.counts);
        assert_eq!(noisy.data_messages, clean.data_messages);
        assert_eq!(noisy.control_messages, clean.control_messages);
        assert_eq!(noisy.connections, clean.connections);
        assert!(noisy.duplicated_deliveries > 0);
        assert_eq!(noisy.discarded_deliveries, noisy.duplicated_deliveries);
    }

    #[test]
    fn an_inactive_fault_plan_is_identical_to_no_faults() {
        let spec = PolicySpec::T1 { m: 2 };
        let clean = {
            let mut sim = SimBuilder::new(spec).unwrap().simulation();
            let mut w = crate::workload::PoissonWorkload::from_theta(1.0, 0.5, 31);
            sim.run(&mut w, RunLimit::Requests(3_000))
        };
        let inert = {
            let plan = FaultPlan::new(0.0, 1.0, 5).unwrap();
            let mut sim = SimBuilder::new(spec)
                .and_then(|b| b.faults(plan))
                .unwrap()
                .simulation();
            let mut w = crate::workload::PoissonWorkload::from_theta(1.0, 0.5, 31);
            sim.run(&mut w, RunLimit::Requests(3_000))
        };
        assert_eq!(clean, inert);
        assert_eq!(inert.disconnects, 0);
    }

    #[test]
    fn time_limited_runs_terminate_under_faults() {
        // Link faults self-perpetuate; the run must still stop once the
        // workload is exhausted and nothing is in service.
        let mut sim = Simulation::new(faulty_config(PolicySpec::St2, 0.1, 9));
        let mut w = crate::workload::PoissonWorkload::from_theta(5.0, 0.5, 17);
        let report = sim.run(&mut w, RunLimit::Time(50.0));
        let n = report.counts.total();
        assert!(n > 50, "{n}");
        assert!(report.makespan < 500.0, "{}", report.makespan);
    }

    #[test]
    fn faults_under_the_message_cost_model_stay_equivalent() {
        // Cost model only affects pricing, but exercise SW1's delete-request
        // optimization (the paper's ω-sensitive path) under crashes too.
        let report = faulty_run(PolicySpec::SlidingWindow { k: 1 }, 0.06, 13, 4_000);
        assert_eq!(report.counts.total(), 4_000);
        assert!(report.cost(CostModel::message(0.5)) > 0.0);
        assert!(report.mc_crashes > 0);
    }
}

#[cfg(test)]
mod arq_tests {
    use super::*;
    use crate::SimBuilder;
    use mdr_core::run_spec;

    fn arq_sim(spec: PolicySpec, arq: ArqConfig) -> Simulation {
        SimBuilder::new(spec)
            .and_then(|b| b.arq(arq))
            .unwrap()
            .simulation()
    }

    fn arq_run(spec: PolicySpec, arq: ArqConfig, n: usize) -> SimReport {
        let mut sim = arq_sim(spec, arq);
        let mut w = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 2024);
        sim.run(&mut w, RunLimit::Requests(n))
    }

    #[test]
    fn zero_loss_arq_changes_only_the_ack_traffic() {
        let lossless = {
            let mut sim = SimBuilder::new(PolicySpec::SlidingWindow { k: 5 })
                .unwrap()
                .simulation();
            let mut w = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 2024);
            sim.run(&mut w, RunLimit::Requests(4_000))
        };
        let arq = ArqConfig::new(0.0, 1.0, 5).unwrap();
        let report = arq_run(PolicySpec::SlidingWindow { k: 5 }, arq, 4_000);
        // Same serialized order, same protocol actions, same data traffic.
        assert_eq!(report.schedule, lossless.schedule);
        assert_eq!(report.counts, lossless.counts);
        assert_eq!(report.data_messages, lossless.data_messages);
        assert_eq!(report.retransmissions, 0);
        assert_eq!(report.retry_escalations, 0);
        // The only addition: one explicit control-class ack per exchange
        // that nothing answers implicitly.
        assert!(report.arq_acks > 0);
        assert_eq!(
            report.control_messages,
            lossless.control_messages + report.arq_acks
        );
    }

    #[test]
    fn every_retransmission_redials_in_the_connection_tally() {
        // With pure ARQ loss (no faults, no topology, budget deep enough
        // that nothing escalates), the only extra connections a run can
        // accrue are retransmission re-dials — exactly one per
        // retransmitted attempt. Pins the connection-model billing of
        // the retry path.
        let arq = ArqConfig::new(0.5, 0.05, 17)
            .and_then(|a| a.with_retry_budget(30))
            .unwrap();
        let report = arq_run(PolicySpec::St2, arq, 300);
        assert!(report.retransmissions > 0, "loss must force retries");
        assert_eq!(report.retry_escalations, 0, "budget 30 never escalates");
        assert_eq!(
            report.connections,
            report.counts.connections() + report.retransmissions,
            "one re-dialed connection per retransmission, no more, no less"
        );
    }

    #[test]
    fn timed_retransmission_repairs_loss_without_changing_actions() {
        let spec = PolicySpec::SlidingWindow { k: 5 };
        let arq = ArqConfig::new(0.3, 0.05, 9)
            .and_then(|a| a.with_retry_budget(12))
            .unwrap();
        // The oracle check stays on: actions must match the reference
        // policy exactly even when every envelope plays the timeout game.
        let report = arq_run(spec, arq, 5_000);
        assert_eq!(report.counts.total(), 5_000);
        assert!(report.retransmissions > 0);
        let reference = run_spec(spec, &report.schedule, CostModel::Connection);
        assert_eq!(report.counts, reference.counts, "actions unchanged by ARQ");
    }

    /// Satellite: ω = 0 and ω = 1 ARQ runs satisfy the same closed-form
    /// billing identities as the fault-free path — every billed attempt is
    /// ledger traffic, a settled retransmission, aborted traffic,
    /// reconciliation traffic, or an ack; the cost models price exactly
    /// those buckets.
    #[test]
    fn billing_identities_hold_at_omega_extremes() {
        let arq = ArqConfig::new(0.25, 0.04, 3)
            .and_then(|a| a.with_backoff(2.0, 0.3))
            .unwrap();
        let report = arq_run(PolicySpec::SlidingWindow { k: 3 }, arq, 6_000);
        let billed = report.data_messages + report.control_messages;
        let ledger = report.counts.data_messages() + report.counts.control_messages();
        assert_eq!(
            billed,
            ledger
                + report.settled_retransmissions
                + report.aborted_messages
                + report.reconciliation_messages
                + report.arq_acks
        );
        // ω = 0: only data messages are priced; ω = 1: every message is.
        assert!((report.cost(CostModel::message(0.0)) - report.data_messages as f64).abs() < 1e-9);
        assert!((report.cost(CostModel::message(1.0)) - billed as f64).abs() < 1e-9);
        // The run performed online checks at every completion.
        assert!(report.invariant_checks >= 2 * 6_000);
    }

    /// Satellite (bugfix regression): a link at 100 % loss must not spin
    /// the event loop. The run terminates with typed shed outcomes and
    /// degraded reads, and the ledger stays finite and consistent.
    #[test]
    fn total_loss_terminates_with_shed_and_degraded_outcomes() {
        let arq = ArqConfig::new(1.0, 0.05, 1)
            .and_then(|a| a.with_retry_budget(3))
            .and_then(|a| a.with_degrade_deadline(1.0))
            .unwrap();
        // ST2 statically replicates at the MC: reads stay local through the
        // partition (degraded once past the deadline), writes need the wire
        // and are shed.
        let mut sim = arq_sim(PolicySpec::St2, arq);
        let sched = Schedule::alternating(Request::Read, 400);
        let mut w = crate::workload::TraceWorkload::new(sched, 0.05);
        let report = sim.run(&mut w, RunLimit::Requests(400));
        assert!(report.retry_escalations >= 1);
        assert!(report.shed_requests() > 0, "writes must be shed");
        assert!(report.degraded_reads > 0, "reads must degrade, not block");
        assert!(report.staleness_sum > 0.0);
        // Nothing shed ever reached the schedule, the ledger, or the bill
        // as protocol traffic; what was billed is fully accounted for.
        assert_eq!(report.schedule.len() as u64, report.counts.total());
        let billed = report.data_messages + report.control_messages;
        let ledger = report.counts.data_messages() + report.counts.control_messages();
        assert_eq!(
            billed,
            ledger + report.settled_retransmissions + report.aborted_messages
        );
        assert_eq!(report.recoveries, 0, "a dead link never recovers");
        // Every request was either served or shed.
        assert_eq!(report.counts.total() + report.shed_requests(), 400);
    }

    #[test]
    fn escalation_feeds_the_reconnect_path_and_recovers() {
        // Budget 1 at 60 % loss: escalations are common, but the link is
        // not dead, so every declared partition eventually heals and every
        // request is served.
        let spec = PolicySpec::SlidingWindow { k: 3 };
        let arq = ArqConfig::new(0.6, 0.02, 17)
            .and_then(|a| a.with_retry_budget(1))
            .and_then(|a| a.with_degrade_deadline(1_000_000.0))
            .unwrap();
        let report = arq_run(spec, arq, 3_000);
        assert_eq!(report.counts.total(), 3_000);
        assert_eq!(report.shed_requests(), 0, "deadline far away: nothing shed");
        assert!(report.retry_escalations > 0);
        assert!(report.recoveries > 0);
        assert!(report.mean_time_to_recovery().is_some());
        // Each recovery adds the *outage duration* (now − since) to the
        // ledger, never a timestamp sum: outages are short next to the
        // run, so the mean must stay a small fraction of the makespan.
        let mean = report.mean_time_to_recovery().expect("recoveries observed");
        assert!(
            mean * 4.0 < report.makespan,
            "mean recovery {mean} vs makespan {}",
            report.makespan
        );
        assert!(
            report.aborted_messages > 0,
            "escalated exchanges waste traffic"
        );
        // Connection model: aborted setups and per-retransmit re-dials
        // surface as extra connections.
        assert!(report.connections > report.counts.connections());
        let reference = run_spec(spec, &report.schedule, CostModel::Connection);
        assert_eq!(report.counts, reference.counts);
    }

    /// Bugfix regression: at high loss and a tiny budget, an ARQ
    /// escalation can interrupt the reconciliation handshake a crash
    /// outage owes, leaving the protocol in its recovering state with
    /// locally-servable requests still queued. Draining that queue used
    /// to submit into the handshake and panic; the drain must instead
    /// stall until the handshake settles at the next link-up probe.
    #[test]
    fn escalation_during_reconciliation_stalls_the_drain() {
        let plan = FaultPlan::new(0.05, 2.0, 11 ^ 0xFA17)
            .and_then(|p| p.with_crashes(0.3, 0.5))
            .unwrap();
        let arq = ArqConfig::new(0.65, 0.1, 11 ^ 0xA6)
            .and_then(|a| a.with_backoff(2.0, 0.25))
            .and_then(|a| a.with_retry_budget(2))
            .and_then(|a| a.with_degrade_deadline(0.5))
            .unwrap();
        let mut sim = SimBuilder::new(PolicySpec::St2)
            .and_then(|b| b.latency(0.05))
            .and_then(|b| b.faults(plan))
            .and_then(|b| b.arq(arq))
            .unwrap()
            .simulation();
        let mut w = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 11);
        let report = sim.run(&mut w, RunLimit::Requests(5_000));
        // The storm must actually compose the two layers: injected crash
        // outages owing handshakes AND budget-exhausted escalations.
        assert!(report.mc_crashes > 0);
        assert!(report.retry_escalations > 0);
        assert!(report.reconciliations > 0);
        assert!(report.shed_requests() > 0);
        // The run hit its service target (sheds ride on top of it under
        // an open Poisson workload), and the bill stays exact.
        assert_eq!(report.counts.total(), 5_000);
        let billed = report.data_messages + report.control_messages;
        let ledger = report.counts.data_messages() + report.counts.control_messages();
        assert_eq!(
            billed,
            ledger
                + report.settled_retransmissions
                + report.aborted_messages
                + report.reconciliation_messages
                + report.arq_acks
        );
    }

    #[test]
    fn arq_runs_are_deterministic_per_seed() {
        let arq = |seed| {
            ArqConfig::new(0.35, 0.03, seed)
                .and_then(|a| a.with_backoff(1.7, 0.25))
                .unwrap()
        };
        let a = arq_run(PolicySpec::SlidingWindow { k: 5 }, arq(21), 4_000);
        let b = arq_run(PolicySpec::SlidingWindow { k: 5 }, arq(21), 4_000);
        assert_eq!(a, b);
        let c = arq_run(PolicySpec::SlidingWindow { k: 5 }, arq(22), 4_000);
        assert_ne!(a.retransmissions, c.retransmissions);
    }
}

#[cfg(test)]
mod mutation_regressions {
    //! Seed-pinned counter and ledger-field regressions added after a
    //! `cargo xtask mutate` run surfaced surviving mutants in this file:
    //! the per-event counters below were reported but never asserted
    //! exactly, so off-by-one and sign mutations went unnoticed. Each
    //! test pins one deterministic run; float fields are compared by
    //! bit pattern (the runs are exactly reproducible by construction).

    use super::*;
    use crate::SimBuilder;

    #[test]
    fn handoff_count_is_pinned() {
        let mut sim = SimBuilder::new(PolicySpec::SlidingWindow { k: 3 })
            .and_then(|b| b.latency(0.02))
            .and_then(|b| b.mobility(vec![0.0, 0.05, 0.2], 0.5, 9))
            .unwrap()
            .simulation();
        let mut w = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 4242);
        let r = sim.run(&mut w, RunLimit::Requests(4_000));
        assert_eq!(r.handoffs, 1_971);
    }

    #[test]
    fn disconnect_tallies_are_pinned() {
        let plan = FaultPlan::new(0.05, 2.0, 1)
            .and_then(|p| p.with_crashes(0.4, 0.6))
            .and_then(|p| p.with_sc_outages(0.2))
            .unwrap();
        let mut sim = SimBuilder::new(PolicySpec::SlidingWindow { k: 3 })
            .and_then(|b| b.faults(plan))
            .unwrap()
            .simulation();
        let mut w = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 4711);
        let r = sim.run(&mut w, RunLimit::Requests(4_000));
        assert_eq!((r.disconnects, r.mc_crashes, r.sc_outages), (174, 72, 20));
    }

    #[test]
    fn mean_read_latency_is_pinned() {
        // SW3 mixes zero-latency local reads (which enter the divisor)
        // with wire reads and queueing delay, so both the latency sum
        // and the completed-reads count are load-bearing here.
        let mut sim = SimBuilder::new(PolicySpec::SlidingWindow { k: 3 })
            .and_then(|b| b.latency(0.05))
            .unwrap()
            .simulation();
        let mut w = crate::workload::PoissonWorkload::from_theta(2.0, 0.4, 77);
        let r = sim.run(&mut w, RunLimit::Requests(3_000));
        assert!(r.queued_requests > 0);
        assert_eq!(r.mean_read_latency.to_bits(), 0x3fa2_b10a_251b_1c26);
    }

    #[test]
    fn arq_jitter_timing_is_pinned() {
        // Jitter stretches each RTO by `1 + jitter·u`; the retransmission
        // tally and the makespan both depend on the sign and size of that
        // stretch through every timeout on the critical path.
        let arq = ArqConfig::new(0.3, 0.05, 5)
            .and_then(|a| a.with_backoff(1.5, 0.4))
            .unwrap();
        let mut sim = SimBuilder::new(PolicySpec::SlidingWindow { k: 3 })
            .and_then(|b| b.latency(0.02))
            .and_then(|b| b.arq(arq))
            .unwrap()
            .simulation();
        let mut w = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 2024);
        let r = sim.run(&mut w, RunLimit::Requests(1_500));
        assert_eq!(r.retransmissions, 490);
        assert_eq!(r.makespan.to_bits(), 0x4097_c13d_5150_a875);
    }

    #[test]
    fn degraded_staleness_sum_is_pinned() {
        // Each degraded read contributes `now − partition_start`; the sum
        // must stay below `degraded_reads × makespan` (and is pinned
        // exactly), so a sign flip in the subtraction cannot hide.
        let arq = ArqConfig::new(1.0, 0.05, 1)
            .and_then(|a| a.with_retry_budget(3))
            .and_then(|a| a.with_degrade_deadline(1.0))
            .unwrap();
        let mut sim = SimBuilder::new(PolicySpec::St2)
            .and_then(|b| b.arq(arq))
            .unwrap()
            .simulation();
        let sched = Schedule::alternating(Request::Read, 400);
        let mut w = crate::workload::TraceWorkload::new(sched, 0.05);
        let r = sim.run(&mut w, RunLimit::Requests(400));
        assert_eq!(r.degraded_reads, 191);
        assert!(r.staleness_sum <= r.degraded_reads as f64 * r.makespan);
        assert_eq!(r.staleness_sum.to_bits(), 0x409c_1d00_0000_0000);
    }

    #[test]
    fn arq_delivery_includes_cell_latency() {
        // ARQ deliveries must *add* the current cell's extra latency —
        // every other ARQ test runs without mobility, where that term is
        // zero and a sign flip is invisible. The read-latency mean is
        // pinned from a run that spends time in the slow cells.
        let arq = ArqConfig::new(0.2, 0.05, 5)
            .and_then(|a| a.with_backoff(1.5, 0.3))
            .unwrap();
        let mut sim = SimBuilder::new(PolicySpec::SlidingWindow { k: 3 })
            .and_then(|b| b.latency(0.02))
            .and_then(|b| b.mobility(vec![0.0, 0.05, 0.2], 0.5, 9))
            .and_then(|b| b.arq(arq))
            .unwrap()
            .simulation();
        let mut w = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 2024);
        let r = sim.run(&mut w, RunLimit::Requests(1_500));
        assert!(r.handoffs > 0 && r.retransmissions > 0);
        assert_eq!(r.retransmissions, 1_400);
        assert_eq!(r.mean_read_latency.to_bits(), 0x3fba_2603_ddf5_8473);
    }
}

#[cfg(test)]
mod topology_tests {
    use super::*;
    use crate::SimBuilder;

    fn topo_run(topology: Option<TopologyConfig>, seed: u64) -> SimReport {
        let mut builder = SimBuilder::new(PolicySpec::SlidingWindow { k: 5 })
            .and_then(|b| b.latency(0.02))
            .unwrap();
        if let Some(t) = topology {
            builder = builder.topology(t).unwrap();
        }
        let mut sim = builder.simulation();
        let mut workload = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, seed);
        sim.run(&mut workload, RunLimit::Requests(4_000))
    }

    #[test]
    fn inert_topology_reproduces_the_single_cell_run_exactly() {
        // The acceptance bar for the whole layer: a plan with zero
        // migrations must schedule no events and draw no randomness, so
        // the report — schedule, ledger, float fields, everything —
        // matches the no-topology run bit for bit.
        let baseline = topo_run(None, 4242);
        let inert = topo_run(Some(TopologyConfig::new(4, 0.0, 1.0, 99).unwrap()), 4242);
        assert!(TopologyConfig::new(4, 0.0, 1.0, 99).unwrap().is_inert());
        assert_eq!(baseline, inert);
        assert_eq!(inert.migrations, 0);
        assert_eq!(inert.handoff_messages, 0);
    }

    #[test]
    fn lossless_handoffs_commit_and_bill_three_legs_per_commit() {
        let t = TopologyConfig::new(3, 0.5, 2.0, 7).unwrap();
        let r = topo_run(Some(t), 4242);
        assert!(r.migrations > 100, "dwell 2 over a ~4000-unit run");
        assert!(r.handoffs_committed > 0);
        // On a lossless backbone with no mid-flight migrations aborted
        // mid-air, settled legs are exactly 3 per commit; aborted flights
        // (migration re-fences) account for the rest.
        assert_eq!(
            r.handoff_messages,
            r.settled_handoff_messages + r.aborted_handoff_messages
        );
        assert_eq!(r.settled_handoff_messages, 3 * r.handoffs_committed);
        // Every commit away from a freshly-invalidated state strands one
        // stale replica at the origin.
        assert!(r.replicas_invalidated >= r.handoffs_committed);
    }

    #[test]
    fn topology_runs_are_deterministic_per_seed() {
        let t = || {
            TopologyConfig::new(3, 0.5, 2.0, 7)
                .unwrap()
                .with_loss(0.3)
                .unwrap()
        };
        let a = topo_run(Some(t()), 4242);
        let b = topo_run(Some(t()), 4242);
        assert_eq!(a, b);
        let c = topo_run(
            Some(
                TopologyConfig::new(3, 0.5, 2.0, 8)
                    .unwrap()
                    .with_loss(0.3)
                    .unwrap(),
            ),
            4242,
        );
        assert_ne!(a.migrations, c.migrations);
    }

    #[test]
    fn lossy_backbone_degrades_gracefully() {
        // Heavy backbone loss without ARQ: single-shot legs mostly die,
        // deadlines abort, ownership rolls back, reads are served stale
        // from the origin and wire-needing requests shed with a typed
        // outcome. The run still terminates and the handoff billing
        // identity holds at every completion (the monitor panics if not).
        let t = TopologyConfig::new(3, 0.5, 0.5, 7)
            .unwrap()
            .with_loss(0.8)
            .unwrap();
        let r = topo_run(Some(t), 4242);
        assert!(r.handoffs_aborted > 0);
        assert!(r.stale_reads > 0, "reads served stale from the origin cell");
        assert!(
            r.shed.iter().any(|s| s.reason == ShedReason::HandoffStuck),
            "stuck handoffs shed wire-needing requests with a typed outcome"
        );
        assert_eq!(
            r.handoff_messages,
            r.settled_handoff_messages + r.aborted_handoff_messages,
            "no flight left in the air at the end of this run"
        );
    }

    #[test]
    fn broadcast_invalidation_bills_rounds_not_replicas() {
        let per_cell = topo_run(Some(TopologyConfig::new(5, 0.5, 2.0, 7).unwrap()), 4242);
        let broadcast = topo_run(
            Some(
                TopologyConfig::new(5, 0.5, 2.0, 7)
                    .unwrap()
                    .with_broadcast_invalidation(),
            ),
            4242,
        );
        // Same seed, same flights: only the invalidation pricing differs.
        assert_eq!(per_cell.handoffs_committed, broadcast.handoffs_committed);
        assert_eq!(
            per_cell.replicas_invalidated,
            broadcast.replicas_invalidated
        );
        assert_eq!(
            per_cell.invalidation_messages,
            per_cell.replicas_invalidated
        );
        assert_eq!(
            broadcast.invalidation_messages,
            broadcast.invalidation_rounds
        );
        assert!(broadcast.invalidation_messages <= per_cell.invalidation_messages);
    }

    #[test]
    fn arq_transport_governs_backbone_retransmissions() {
        // With ARQ installed, lost legs retransmit under the transport's
        // own timeout law instead of waiting for the deadline: flights
        // commit despite heavy loss, at the price of extra backbone
        // attempts.
        let arq = ArqConfig::new(0.0, 0.05, 5).unwrap();
        let t = TopologyConfig::new(3, 0.5, 5.0, 7)
            .unwrap()
            .with_loss(0.5)
            .unwrap();
        let mut sim = SimBuilder::new(PolicySpec::SlidingWindow { k: 5 })
            .and_then(|b| b.latency(0.02))
            .and_then(|b| b.arq(arq))
            .and_then(|b| b.topology(t))
            .unwrap()
            .simulation();
        let mut w = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 4242);
        let r = sim.run(&mut w, RunLimit::Requests(4_000));
        assert!(r.handoffs_committed > 0);
        assert!(
            r.settled_handoff_messages > 3 * r.handoffs_committed,
            "retransmitted legs settle with their flight"
        );
    }

    #[test]
    fn commit_ghosts_only_add_discards() {
        // Duplicated and reordered HandoffCommit copies land strictly
        // after the original and die on the epoch fence: the runs are
        // identical except for the discard tally (idempotence; the
        // proptest in properties.rs generalizes this).
        let clean = topo_run(Some(TopologyConfig::new(3, 0.5, 2.0, 7).unwrap()), 4242);
        let noisy = topo_run(
            Some(
                TopologyConfig::new(3, 0.5, 2.0, 7)
                    .unwrap()
                    .with_commit_ghosts(0.7, 0.5)
                    .unwrap(),
            ),
            4242,
        );
        assert!(noisy.handoff_discards > 0);
        assert_eq!(clean.handoffs_committed, noisy.handoffs_committed);
        assert_eq!(clean.handoff_messages, noisy.handoff_messages);
        assert_eq!(clean.schedule, noisy.schedule);
        assert_eq!(clean.counts, noisy.counts);
        assert_eq!(
            clean.makespan.to_bits(),
            noisy.makespan.to_bits(),
            "ghosts draw from their own stream and perturb nothing"
        );
    }

    #[test]
    fn reorder_only_ghosts_draw_only_the_reorder_channel() {
        // A ghost channel whose probability is exactly zero must not
        // consume a draw from the ghost stream: an extra draw for the
        // disabled duplication channel would shift every reorder decision,
        // and a discard tallied twice would double the count. The exact
        // tally is pinned as a regression value for the seeded run.
        let clean = topo_run(Some(TopologyConfig::new(3, 0.5, 2.0, 7).unwrap()), 4242);
        let t = TopologyConfig::new(3, 0.5, 2.0, 7)
            .unwrap()
            .with_commit_ghosts(0.0, 0.5)
            .unwrap();
        let r = topo_run(Some(t), 4242);
        assert_eq!(clean.handoffs_committed, r.handoffs_committed);
        assert_eq!(clean.makespan.to_bits(), r.makespan.to_bits());
        assert!(r.handoff_discards > 0);
        assert_eq!(r.handoff_discards, 1_066, "regression pin");
    }

    #[test]
    fn jittered_handoff_retries_follow_the_backoff_law() {
        // Handoff-leg retransmissions wait base · factor^(i−1) · (1 +
        // jitter · u) like every other ARQ envelope. Flipping the jitter
        // sign shortens every timeout, changing how many legs are resent
        // before the deadline; the seeded leg tally is pinned.
        let arq = ArqConfig::new(0.0, 0.05, 5)
            .and_then(|a| a.with_backoff(2.0, 0.8))
            .and_then(|a| a.with_retry_budget(5))
            .unwrap();
        let t = TopologyConfig::new(3, 0.5, 5.0, 7)
            .unwrap()
            .with_loss(0.5)
            .unwrap();
        let mut sim = SimBuilder::new(PolicySpec::SlidingWindow { k: 5 })
            .and_then(|b| b.latency(0.02))
            .and_then(|b| b.arq(arq))
            .and_then(|b| b.topology(t))
            .unwrap()
            .simulation();
        let mut w = crate::workload::PoissonWorkload::from_theta(1.0, 0.4, 4242);
        let r = sim.run(&mut w, RunLimit::Requests(4_000));
        assert!(r.handoffs_committed > 0);
        assert_eq!(r.handoff_messages, 9_283, "regression pin");
        assert_eq!(r.settled_handoff_messages, 7_530, "regression pin");
    }

    /// Regression (mutation): a time-limited faulted run ends through the
    /// event loop's early stop — the link-fault process reschedules itself
    /// forever, so without that break the loop would chase `LinkDown`/
    /// `LinkUp` maintenance long after the last arrival. The fault tallies
    /// are pinned at the values the stop leaves behind; exiting later (or
    /// never) moves them.
    #[test]
    fn time_limited_faulted_runs_stop_once_drained() {
        let plan = FaultPlan::new(0.8, 0.3, 11).unwrap();
        let mut sim = SimBuilder::new(PolicySpec::SlidingWindow { k: 3 })
            .and_then(|b| b.latency(0.05))
            .and_then(|b| b.faults(plan))
            .unwrap()
            .simulation();
        let mut w = crate::workload::PoissonWorkload::from_theta(1.0, 0.3, 9);
        let report = sim.run(&mut w, RunLimit::Time(40.0));
        assert!(report.counts.total() > 0);
        assert_eq!(report.disconnects, 24, "regression pin");
        assert_eq!(report.recoveries, 0, "regression pin");
    }

    /// Regression (mutation): the migration target draw maps a uniform
    /// variate onto the `cells - 1` *other* cells — §1's "moves from cell
    /// to cell" never stays put. Scaling by the wrong cell count (then
    /// clamping) would sometimes pick the MC's own cell, skipping the
    /// handoff; the flight counters are pinned to catch it.
    #[test]
    fn migration_targets_cover_other_cells_exactly() {
        let t = TopologyConfig::new(3, 0.8, 2.0, 13).unwrap();
        let r = topo_run(Some(t), 4242);
        assert!(r.migrations > 100);
        assert_eq!(r.migrations, 3_207, "regression pin");
        assert_eq!(r.handoffs_committed, 2_997, "regression pin");
        assert_eq!(r.replicas_invalidated, 3_034, "regression pin");
    }
}
