//! Deterministic fault injection for the simulator (fault-model extension;
//! see `docs/faults.md`).
//!
//! The paper's §3 execution model assumes a reliable, connected exchange:
//! every message eventually arrives, exactly once, in order. Mobile
//! computers violate every clause of that assumption in practice — they
//! doze to save battery, drive out of coverage, crash and reboot — so this
//! module defines [`FaultPlan`], a *seed-driven schedule* of such events
//! that the discrete-event simulator injects while the reconnection
//! protocol (`ProtocolState::receive`, `begin_reconciliation`) keeps the
//! execution equivalent to the fault-free serialized order.
//!
//! Everything here is deterministic: the same `(FaultPlan, workload seed)`
//! pair reproduces the same disconnection windows, crash kinds, ghost
//! deliveries and therefore a byte-identical cost ledger.

use std::error::Error;
use std::fmt;

/// An invalid simulation, sweep-grid or fault-plan parameter, reported as a
/// typed value instead of a panic so configuration errors are recoverable
/// (e.g. when the parameters come from CLI flags) and machine-matchable
/// (callers can branch on the variant, not on a message substring).
///
/// The enum is hand-implemented in the `thiserror` idiom — one variant per
/// failure, `Display` carrying the human message, `std::error::Error` for
/// `?`-composition — because the offline build vendors no proc-macro
/// crates (see `vendor/README` rationale in the workspace manifest).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A loss probability outside `[0, 1)`.
    LossProbability {
        /// The rejected value.
        value: f64,
    },
    /// A retry timeout that is not finite and positive.
    RetryTimeout {
        /// The rejected value.
        value: f64,
    },
    /// A link latency that is negative or not finite.
    Latency {
        /// The rejected value.
        value: f64,
    },
    /// A mobility model with an empty cell list.
    NoCells,
    /// A per-cell extra latency that is negative or not finite.
    CellLatency {
        /// The rejected value.
        value: f64,
    },
    /// A handoff rate that is not finite and positive.
    HandoffRate {
        /// The rejected value.
        value: f64,
    },
    /// A sliding-window size that is even or zero (§4 requires an odd
    /// window so the majority vote is never tied).
    EvenWindow {
        /// The rejected window size.
        k: usize,
    },
    /// A T1/T2 streak threshold of zero.
    ZeroThreshold,
    /// A named probability outside `[0, 1]`.
    Probability {
        /// Which probability was rejected (e.g. `"crash probability"`).
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A disconnect rate that is negative or not finite.
    DisconnectRate {
        /// The rejected value.
        value: f64,
    },
    /// A mean outage duration that is not finite and positive.
    MeanOutage {
        /// The rejected value.
        value: f64,
    },
    /// Crash and SC-outage probabilities that sum past 1 (they classify
    /// disjoint outage kinds, so they must partition).
    FaultPartition {
        /// The offending sum.
        total: f64,
    },
    /// Two *different* fault plans installed on the same builder or grid —
    /// the engine cannot honour both schedules at once.
    ConflictingFaultPlans,
    /// A write fraction θ outside `[0, 1]`.
    Theta {
        /// The rejected value.
        value: f64,
    },
    /// A control-message weight ω outside `[0, 1]`.
    Omega {
        /// The rejected value.
        value: f64,
    },
    /// A workload arrival rate that is not finite and positive.
    Rate {
        /// The rejected value.
        value: f64,
    },
    /// An empty sweep-grid axis (every cross-product dimension needs at
    /// least one value).
    EmptyAxis {
        /// Which axis was empty (e.g. `"policies"`).
        what: &'static str,
    },
    /// A sweep count (replications, requests per cell) of zero.
    ZeroCount {
        /// Which count was zero.
        what: &'static str,
    },
    /// An ARQ backoff factor below 1 or not finite (the retransmission
    /// timeout must not shrink between attempts).
    BackoffFactor {
        /// The rejected value.
        value: f64,
    },
    /// An ARQ jitter fraction outside `[0, 1)`.
    Jitter {
        /// The rejected value.
        value: f64,
    },
    /// An ARQ retry budget of zero (at least the original transmission
    /// must be attempted before escalating to a declared disconnection).
    ZeroRetryBudget,
    /// An ARQ degradation deadline that is not finite and positive.
    DegradeDeadline {
        /// The rejected value.
        value: f64,
    },
    /// Both the legacy instant-retransmit loss model and the ARQ transport
    /// installed on one builder — the link can only be modelled once.
    ConflictingLinkModels,
    /// An MC homed to a cell index the topology does not contain.
    UnknownHomeCell {
        /// The rejected home-cell index.
        home: usize,
        /// How many cells the topology has.
        cells: usize,
    },
    /// A handoff deadline shorter than the ARQ transport's first
    /// retransmission timeout: the three-way handoff rides the ARQ link, so
    /// a deadline below one RTO would abort every handoff before its first
    /// retransmission could even fire.
    HandoffDeadline {
        /// The rejected deadline.
        deadline: f64,
        /// The ARQ transport's first retransmission timeout.
        rto: f64,
    },
    /// A serve-layer request named a tenant that was never opened (or was
    /// already closed).
    UnknownTenant {
        /// The tenant id the request named.
        tenant: String,
    },
    /// Opening one more tenant would exceed the serve layer's admission
    /// limit.
    TenantLimit {
        /// The configured maximum number of concurrent tenants.
        limit: usize,
    },
    /// A serve-layer request that could not be understood — malformed JSON,
    /// an unknown operation, or a field of the wrong shape. Carries the
    /// parse-level reason verbatim so operators can fix the producing
    /// client.
    BadDecisionRequest {
        /// What was wrong with the request.
        reason: String,
    },
    /// A decision-core snapshot whose format version this build does not
    /// speak.
    SnapshotVersion {
        /// The version the snapshot declared.
        found: u32,
        /// The newest version this build can restore.
        supported: u32,
    },
    /// The durability layer's data directory could not be created, read,
    /// or written.
    DataDir {
        /// The path that failed.
        path: String,
        /// The I/O-level reason, verbatim.
        reason: String,
    },
    /// A tenant's write-ahead journal failed recovery validation —
    /// a checksum mismatch, a sequence gap, an undecodable record, or a
    /// journal that does not begin with a tenant-creating operation. The
    /// tenant is quarantined; the daemon and other tenants continue.
    JournalCorrupt {
        /// The tenant whose journal failed.
        tenant: String,
        /// What the scan found.
        reason: String,
    },
    /// A checkpoint file whose format version this build does not speak.
    CheckpointVersion {
        /// The version the checkpoint declared.
        found: u32,
        /// The newest version this build can load.
        supported: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: ")?;
        match self {
            ConfigError::LossProbability { value } => {
                write!(f, "loss probability must lie in [0, 1), got {value}")
            }
            ConfigError::RetryTimeout { value } => {
                write!(f, "retry timeout must be finite and positive, got {value}")
            }
            ConfigError::Latency { value } => {
                write!(f, "latency must be finite and non-negative, got {value}")
            }
            ConfigError::NoCells => write!(f, "at least one cell required"),
            ConfigError::CellLatency { value } => {
                write!(
                    f,
                    "cell latencies must be finite and non-negative, got {value}"
                )
            }
            ConfigError::HandoffRate { value } => {
                write!(f, "handoff rate must be finite and positive, got {value}")
            }
            ConfigError::EvenWindow { k } => {
                write!(f, "window size must be odd and positive, got {k}")
            }
            ConfigError::ZeroThreshold => write!(f, "threshold m must be at least 1"),
            ConfigError::Probability { what, value } => {
                write!(f, "{what} must lie in [0, 1], got {value}")
            }
            ConfigError::DisconnectRate { value } => {
                write!(
                    f,
                    "disconnect rate must be finite and non-negative, got {value}"
                )
            }
            ConfigError::MeanOutage { value } => {
                write!(f, "mean outage must be finite and positive, got {value}")
            }
            ConfigError::FaultPartition { total } => {
                write!(
                    f,
                    "crash + SC-outage probabilities must not exceed 1, got {total}"
                )
            }
            ConfigError::ConflictingFaultPlans => {
                write!(f, "two different fault plans were installed; remove one")
            }
            ConfigError::Theta { value } => {
                write!(f, "write fraction θ must lie in [0, 1], got {value}")
            }
            ConfigError::Omega { value } => {
                write!(
                    f,
                    "control-message weight ω must lie in [0, 1], got {value}"
                )
            }
            ConfigError::Rate { value } => {
                write!(f, "arrival rate must be finite and positive, got {value}")
            }
            ConfigError::EmptyAxis { what } => {
                write!(f, "sweep axis {what:?} must name at least one value")
            }
            ConfigError::ZeroCount { what } => {
                write!(f, "{what} must be at least 1")
            }
            ConfigError::BackoffFactor { value } => {
                write!(
                    f,
                    "backoff factor must be finite and at least 1, got {value}"
                )
            }
            ConfigError::Jitter { value } => {
                write!(f, "jitter fraction must lie in [0, 1), got {value}")
            }
            ConfigError::ZeroRetryBudget => {
                write!(f, "retry budget must be at least 1")
            }
            ConfigError::DegradeDeadline { value } => {
                write!(
                    f,
                    "degradation deadline must be finite and positive, got {value}"
                )
            }
            ConfigError::ConflictingLinkModels => {
                write!(
                    f,
                    "the instant loss model and the ARQ transport cannot both be installed"
                )
            }
            ConfigError::UnknownHomeCell { home, cells } => {
                write!(
                    f,
                    "home cell {home} does not exist in a topology of {cells} cell(s)"
                )
            }
            ConfigError::HandoffDeadline { deadline, rto } => {
                write!(
                    f,
                    "handoff deadline {deadline} is shorter than the ARQ retransmission timeout {rto}"
                )
            }
            ConfigError::UnknownTenant { tenant } => {
                write!(f, "tenant {tenant:?} is not open")
            }
            ConfigError::TenantLimit { limit } => {
                write!(f, "tenant limit of {limit} reached; close a tenant first")
            }
            ConfigError::BadDecisionRequest { reason } => {
                write!(f, "malformed decision request: {reason}")
            }
            ConfigError::SnapshotVersion { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} is not supported (this build restores up to version {supported})"
                )
            }
            ConfigError::DataDir { path, reason } => {
                write!(f, "data directory {path:?} unusable: {reason}")
            }
            ConfigError::JournalCorrupt { tenant, reason } => {
                write!(f, "journal for tenant {tenant:?} is corrupt: {reason}")
            }
            ConfigError::CheckpointVersion { found, supported } => {
                write!(
                    f,
                    "checkpoint format version {found} is not supported (this build loads up to version {supported})"
                )
            }
        }
    }
}

impl Error for ConfigError {}

/// The kind of one connectivity fault drawn from a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The MC dozes (radio off): unreachable over the link, but its state
    /// survives and it keeps serving local reads.
    Doze,
    /// The SC is unreachable (backbone outage): no writes are served and
    /// nothing crosses the link, but the MC keeps serving local reads.
    ScOutage,
    /// The MC crashes and reboots, losing its volatile state: the replica
    /// and whatever window/streak bookkeeping it was in charge of.
    CrashVolatile,
    /// The MC crashes and reboots with its replica intact in stable
    /// storage; reconnection only re-validates it.
    CrashStable,
}

impl FaultKind {
    /// Short display name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Doze => "doze",
            FaultKind::ScOutage => "sc-outage",
            FaultKind::CrashVolatile => "crash-volatile",
            FaultKind::CrashStable => "crash-stable",
        }
    }
}

/// A deterministic, seed-driven schedule of faults for one simulation run.
///
/// Disconnections arrive as a Poisson process at `disconnect_rate`; each
/// outage lasts an exponential time with mean `mean_outage` and is
/// classified as an MC crash (volatile or stable), an SC outage, or a
/// plain doze by the configured probabilities. Independently, every
/// transmission may be duplicated or have a stale copy reordered past
/// later traffic — network misbehaviour that no retransmission scheme
/// repairs, exercised against the protocol's epoch/sequence guards.
///
/// ```
/// use mdr_sim::FaultPlan;
///
/// let plan = FaultPlan::new(0.01, 2.0, 7)
///     .and_then(|p| p.with_crashes(0.3, 0.5))
///     .and_then(|p| p.with_duplication(0.05, 0.05));
/// assert!(plan.is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Poisson rate of link-down events (per time unit). Zero disables
    /// disconnections (duplication/reordering may still fire).
    pub disconnect_rate: f64,
    /// Mean of the exponential outage duration (time units).
    pub mean_outage: f64,
    /// Probability that a disconnection is an MC crash.
    pub crash_probability: f64,
    /// Probability that an MC crash loses volatile state (vs. rebooting
    /// from stable storage).
    pub volatile_probability: f64,
    /// Probability that a disconnection is an SC outage.
    pub sc_outage_probability: f64,
    /// Per-transmission probability that the network duplicates the
    /// envelope (the copy arrives right behind the original).
    pub duplication: f64,
    /// Per-transmission probability that a stale copy is reordered past
    /// subsequent traffic (arrives much later).
    pub reorder: f64,
    /// RNG seed for the fault process.
    pub seed: u64,
}

fn probability(value: f64, what: &'static str) -> Result<f64, ConfigError> {
    if (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(ConfigError::Probability { what, value })
    }
}

impl FaultPlan {
    /// A plan of plain dozes: disconnections at `disconnect_rate` lasting
    /// `mean_outage` on average, no crashes, no SC outages, no
    /// duplication. Refine with the `with_*` builders.
    pub fn new(disconnect_rate: f64, mean_outage: f64, seed: u64) -> Result<Self, ConfigError> {
        if !(disconnect_rate >= 0.0 && disconnect_rate.is_finite()) {
            return Err(ConfigError::DisconnectRate {
                value: disconnect_rate,
            });
        }
        if !(mean_outage > 0.0 && mean_outage.is_finite()) {
            return Err(ConfigError::MeanOutage { value: mean_outage });
        }
        Ok(FaultPlan {
            disconnect_rate,
            mean_outage,
            crash_probability: 0.0,
            volatile_probability: 0.0,
            sc_outage_probability: 0.0,
            duplication: 0.0,
            reorder: 0.0,
            seed,
        })
    }

    /// Classifies a fraction of disconnections as MC crashes, of which
    /// `volatile_probability` lose volatile state.
    pub fn with_crashes(
        mut self,
        crash_probability: f64,
        volatile_probability: f64,
    ) -> Result<Self, ConfigError> {
        self.crash_probability = probability(crash_probability, "crash probability")?;
        self.volatile_probability = probability(volatile_probability, "volatile probability")?;
        self.check_partition()?;
        Ok(self)
    }

    /// Classifies a fraction of disconnections as SC outages.
    pub fn with_sc_outages(mut self, sc_outage_probability: f64) -> Result<Self, ConfigError> {
        self.sc_outage_probability = probability(sc_outage_probability, "SC outage probability")?;
        self.check_partition()?;
        Ok(self)
    }

    /// Enables per-transmission duplication and stale reordering.
    pub fn with_duplication(mut self, duplication: f64, reorder: f64) -> Result<Self, ConfigError> {
        self.duplication = probability(duplication, "duplication probability")?;
        self.reorder = probability(reorder, "reorder probability")?;
        Ok(self)
    }

    fn check_partition(&self) -> Result<(), ConfigError> {
        let total = self.crash_probability + self.sc_outage_probability;
        if total > 1.0 {
            return Err(ConfigError::FaultPartition { total });
        }
        Ok(())
    }

    /// Whether this plan can inject any fault at all (a plan of all-zero
    /// rates is equivalent to no plan).
    pub fn is_active(&self) -> bool {
        self.disconnect_rate > 0.0 || self.duplication > 0.0 || self.reorder > 0.0
    }
}

/// Configuration of the deterministic stop-and-wait ARQ transport
/// (robustness extension; see the "Transport" section of `docs/faults.md`).
///
/// Where [`LossConfig`](crate::LossConfig) models loss as an *instant*
/// retransmission loop (attempts are pre-drawn and billed in one step, so
/// the loss probability must stay below 1), `ArqConfig` runs the real
/// protocol: every envelope is timed, retransmitted on timeout under an
/// exponential-backoff law with seed-derived jitter, and given up on after
/// `retry_budget` retransmissions — at which point the transport declares
/// the link down and escalates into the reconnection path. A declared
/// partition that outlives `degrade_deadline` puts the MC into degraded
/// mode: reads are served from the cached replica (staleness-tracked) and
/// requests that need the wire are shed with a typed outcome instead of
/// blocking the event loop. Because the budget is bounded, a loss
/// probability of exactly 1 is legal and the run still terminates.
///
/// All timing knobs are validated at construction; this module is the one
/// place in the workspace allowed to bind raw timeout constants (enforced
/// by `cargo xtask lint`).
///
/// ```
/// use mdr_sim::ArqConfig;
///
/// let arq = ArqConfig::new(0.2, 0.05, 7)
///     .and_then(|a| a.with_backoff(2.0, 0.1))
///     .and_then(|a| a.with_retry_budget(6))
///     .and_then(|a| a.with_degrade_deadline(2.0));
/// assert!(arq.is_ok());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ArqConfig {
    /// Per-attempt probability that the envelope (or its ack) is lost.
    /// Unlike the instant loss model, the full closed interval `[0, 1]`
    /// is legal: the retry budget bounds every retransmission loop.
    pub loss_probability: f64,
    /// Retransmission timeout of the first attempt (time units).
    pub base_timeout: f64,
    /// Multiplicative backoff applied per retransmission (≥ 1).
    pub backoff_factor: f64,
    /// Uniform jitter fraction in `[0, 1)`: attempt `i` waits
    /// `base · factor^(i−1) · (1 + jitter · u)` with `u ~ U[0, 1)` drawn
    /// from the dedicated ARQ RNG stream.
    pub jitter: f64,
    /// Maximum retransmissions per envelope before the transport declares
    /// the link down (≥ 1).
    pub retry_budget: u32,
    /// How long a declared partition may last before the MC degrades:
    /// serving reads from its replica and shedding wire-bound requests.
    pub degrade_deadline: f64,
    /// RNG seed for the ARQ loss/jitter stream.
    pub seed: u64,
}

impl ArqConfig {
    /// An ARQ transport with the given per-attempt loss probability and
    /// base retransmission timeout: backoff factor 2, no jitter, a budget
    /// of 8 retransmissions, and a degradation deadline of 40 base
    /// timeouts. Refine with the `with_*` builders.
    pub fn new(loss_probability: f64, base_timeout: f64, seed: u64) -> Result<Self, ConfigError> {
        if !(0.0..=1.0).contains(&loss_probability) {
            return Err(ConfigError::Probability {
                what: "ARQ loss probability",
                value: loss_probability,
            });
        }
        if !(base_timeout > 0.0 && base_timeout.is_finite()) {
            return Err(ConfigError::RetryTimeout {
                value: base_timeout,
            });
        }
        Ok(ArqConfig {
            loss_probability,
            base_timeout,
            backoff_factor: 2.0,
            jitter: 0.0,
            retry_budget: 8,
            degrade_deadline: 40.0 * base_timeout,
            seed,
        })
    }

    /// Sets the backoff law: the factor multiplying the timeout per
    /// retransmission (≥ 1) and the uniform jitter fraction in `[0, 1)`.
    pub fn with_backoff(mut self, factor: f64, jitter: f64) -> Result<Self, ConfigError> {
        if !(factor >= 1.0 && factor.is_finite()) {
            return Err(ConfigError::BackoffFactor { value: factor });
        }
        if !((0.0..1.0).contains(&jitter) && jitter.is_finite()) {
            return Err(ConfigError::Jitter { value: jitter });
        }
        self.backoff_factor = factor;
        self.jitter = jitter;
        Ok(self)
    }

    /// Sets the retransmission budget per envelope (≥ 1).
    pub fn with_retry_budget(mut self, budget: u32) -> Result<Self, ConfigError> {
        if budget == 0 {
            return Err(ConfigError::ZeroRetryBudget);
        }
        self.retry_budget = budget;
        Ok(self)
    }

    /// Sets the degradation deadline: how long a declared partition may
    /// last before the MC serves degraded reads and sheds wire-bound
    /// requests.
    pub fn with_degrade_deadline(mut self, deadline: f64) -> Result<Self, ConfigError> {
        if !(deadline > 0.0 && deadline.is_finite()) {
            return Err(ConfigError::DegradeDeadline { value: deadline });
        }
        self.degrade_deadline = deadline;
        Ok(self)
    }

    /// The retransmission timeout of attempt `attempt` (1-based) before
    /// jitter: `base_timeout · backoff_factor^(attempt − 1)`.
    pub fn timeout_for_attempt(&self, attempt: u32) -> f64 {
        self.base_timeout * self.backoff_factor.powi(attempt.saturating_sub(1) as i32)
    }
}

/// Total-order float comparison, like [`FaultPlan`]'s `PartialEq`.
impl PartialEq for ArqConfig {
    fn eq(&self, other: &Self) -> bool {
        self.loss_probability
            .total_cmp(&other.loss_probability)
            .is_eq()
            && self.base_timeout.total_cmp(&other.base_timeout).is_eq()
            && self.backoff_factor.total_cmp(&other.backoff_factor).is_eq()
            && self.jitter.total_cmp(&other.jitter).is_eq()
            && self.retry_budget == other.retry_budget
            && self
                .degrade_deadline
                .total_cmp(&other.degrade_deadline)
                .is_eq()
            && self.seed == other.seed
    }
}

impl Eq for ArqConfig {}

/// See `SimConfig`'s `PartialEq`: IEEE-754 total-order comparison on the
/// float fields, exact equality on the seed, so the semantics of NaN and
/// signed zero are explicit rather than inherited from a derived float
/// `==` (which the workspace lint bans in accounting paths).
impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        self.disconnect_rate
            .total_cmp(&other.disconnect_rate)
            .is_eq()
            && self.mean_outage.total_cmp(&other.mean_outage).is_eq()
            && self
                .crash_probability
                .total_cmp(&other.crash_probability)
                .is_eq()
            && self
                .volatile_probability
                .total_cmp(&other.volatile_probability)
                .is_eq()
            && self
                .sc_outage_probability
                .total_cmp(&other.sc_outage_probability)
                .is_eq()
            && self.duplication.total_cmp(&other.duplication).is_eq()
            && self.reorder.total_cmp(&other.reorder).is_eq()
            && self.seed == other.seed
    }
}

impl Eq for FaultPlan {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_plans_build() {
        let plan = FaultPlan::new(0.02, 1.5, 9)
            .and_then(|p| p.with_crashes(0.4, 0.7))
            .and_then(|p| p.with_sc_outages(0.2))
            .and_then(|p| p.with_duplication(0.1, 0.05))
            .unwrap();
        assert!(plan.is_active());
        assert_eq!(plan.seed, 9);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(FaultPlan::new(-0.1, 1.0, 0).is_err());
        assert!(FaultPlan::new(f64::NAN, 1.0, 0).is_err());
        assert!(FaultPlan::new(0.1, 0.0, 0).is_err());
        assert!(FaultPlan::new(0.1, f64::INFINITY, 0).is_err());
        let base = FaultPlan::new(0.1, 1.0, 0).unwrap();
        assert!(base.clone().with_crashes(1.2, 0.5).is_err());
        assert!(base.clone().with_crashes(0.5, -0.1).is_err());
        assert!(base.clone().with_duplication(0.5, 1.5).is_err());
        // Crash + SC-outage probabilities must partition.
        let crashy = base.with_crashes(0.8, 0.5).unwrap();
        assert!(crashy.with_sc_outages(0.3).is_err());
    }

    #[test]
    fn inactive_plans_are_detectable() {
        let plan = FaultPlan::new(0.0, 1.0, 0).unwrap();
        assert!(!plan.is_active());
        let dup = plan.with_duplication(0.2, 0.0).unwrap();
        assert!(dup.is_active());
    }

    #[test]
    fn equality_is_total_order_on_floats() {
        let a = FaultPlan::new(0.1, 2.0, 3).unwrap();
        let b = FaultPlan::new(0.1, 2.0, 3).unwrap();
        assert_eq!(a, b);
        let c = FaultPlan::new(0.1, 2.0, 4).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn kind_names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<&str> = [
            FaultKind::Doze,
            FaultKind::ScOutage,
            FaultKind::CrashVolatile,
            FaultKind::CrashStable,
        ]
        .into_iter()
        .map(FaultKind::name)
        .collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn config_error_displays_its_message() {
        let err = FaultPlan::new(-1.0, 1.0, 0).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("invalid configuration"), "{text}");
        assert!(text.contains("disconnect rate"), "{text}");
    }

    #[test]
    fn unknown_tenant_names_the_tenant() {
        let err = ConfigError::UnknownTenant {
            tenant: "mc-7".to_owned(),
        };
        let text = err.to_string();
        assert!(text.starts_with("invalid configuration: "), "{text}");
        assert!(text.contains("\"mc-7\""), "{text}");
        assert!(text.contains("not open"), "{text}");
    }

    #[test]
    fn tenant_limit_reports_the_cap() {
        let err = ConfigError::TenantLimit { limit: 64 };
        let text = err.to_string();
        assert!(text.contains("tenant limit of 64"), "{text}");
        // Machine-matchable, not just a message substring.
        assert_eq!(err, ConfigError::TenantLimit { limit: 64 });
        assert_ne!(err, ConfigError::TenantLimit { limit: 65 });
    }

    #[test]
    fn bad_decision_request_carries_the_reason_verbatim() {
        let err = ConfigError::BadDecisionRequest {
            reason: "expected an object".to_owned(),
        };
        assert!(err.to_string().contains("expected an object"));
        assert!(err.to_string().contains("malformed decision request"));
    }

    #[test]
    fn snapshot_version_reports_both_versions() {
        let err = ConfigError::SnapshotVersion {
            found: 9,
            supported: 1,
        };
        let text = err.to_string();
        assert!(text.contains("version 9"), "{text}");
        assert!(text.contains("up to version 1"), "{text}");
    }

    #[test]
    fn data_dir_reports_path_and_reason() {
        let err = ConfigError::DataDir {
            path: "/var/mdr".to_owned(),
            reason: "permission denied".to_owned(),
        };
        let text = err.to_string();
        assert!(text.contains("\"/var/mdr\""), "{text}");
        assert!(text.contains("permission denied"), "{text}");
        assert_ne!(
            err,
            ConfigError::DataDir {
                path: "/var/mdr".to_owned(),
                reason: "disk full".to_owned(),
            }
        );
    }

    #[test]
    fn journal_corrupt_names_the_tenant_and_finding() {
        let err = ConfigError::JournalCorrupt {
            tenant: "mc-3".to_owned(),
            reason: "sequence gap at record 7".to_owned(),
        };
        let text = err.to_string();
        assert!(text.contains("\"mc-3\""), "{text}");
        assert!(text.contains("sequence gap at record 7"), "{text}");
        assert!(text.contains("corrupt"), "{text}");
    }

    #[test]
    fn checkpoint_version_reports_both_versions() {
        let err = ConfigError::CheckpointVersion {
            found: 4,
            supported: 1,
        };
        let text = err.to_string();
        assert!(text.contains("checkpoint format version 4"), "{text}");
        assert!(text.contains("up to version 1"), "{text}");
        assert_ne!(
            err,
            ConfigError::CheckpointVersion {
                found: 5,
                supported: 1,
            }
        );
    }

    #[test]
    fn valid_arq_configs_build() {
        let arq = ArqConfig::new(0.3, 0.05, 11)
            .and_then(|a| a.with_backoff(1.5, 0.2))
            .and_then(|a| a.with_retry_budget(4))
            .and_then(|a| a.with_degrade_deadline(3.0))
            .unwrap();
        assert_eq!(arq.retry_budget, 4);
        assert_eq!(arq.seed, 11);
        // Total loss is legal under a bounded budget.
        assert!(ArqConfig::new(1.0, 0.05, 0).is_ok());
    }

    /// The documented defaults are part of the API contract: geometric
    /// backoff ×2 with no jitter, a budget of 8 retransmissions, and
    /// degradation after 40 base timeouts.
    #[test]
    fn arq_defaults_are_pinned() {
        let arq = ArqConfig::new(0.1, 0.05, 7).unwrap();
        assert_eq!(arq.retry_budget, 8);
        assert!(arq.backoff_factor.total_cmp(&2.0).is_eq());
        assert!(arq.jitter.total_cmp(&0.0).is_eq());
        assert!(arq.degrade_deadline.total_cmp(&(40.0 * 0.05)).is_eq());
    }

    /// Satellite: `ConfigError::RetryTimeout` is wired end-to-end — a
    /// non-finite or non-positive base timeout is rejected with exactly
    /// that variant.
    #[test]
    fn arq_retry_timeout_is_validated() {
        for bad in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            let err = ArqConfig::new(0.1, bad, 0).unwrap_err();
            assert!(
                matches!(err, ConfigError::RetryTimeout { value } if value.total_cmp(&bad).is_eq()),
                "{err}"
            );
            assert!(err.to_string().contains("retry timeout"), "{err}");
        }
    }

    #[test]
    fn arq_loss_probability_is_validated() {
        for bad in [-0.1, 1.1, f64::NAN] {
            let err = ArqConfig::new(bad, 0.05, 0).unwrap_err();
            assert!(
                matches!(err, ConfigError::Probability { what, .. } if what.contains("ARQ")),
                "{err}"
            );
        }
    }

    #[test]
    fn arq_backoff_factor_is_validated() {
        let base = ArqConfig::new(0.1, 0.05, 0).unwrap();
        for bad in [0.5, 0.0, -2.0, f64::NAN, f64::INFINITY] {
            let err = base.with_backoff(bad, 0.0).unwrap_err();
            assert!(
                matches!(err, ConfigError::BackoffFactor { value } if value.total_cmp(&bad).is_eq()),
                "{err}"
            );
        }
    }

    #[test]
    fn arq_jitter_is_validated() {
        let base = ArqConfig::new(0.1, 0.05, 0).unwrap();
        for bad in [-0.1, 1.0, 1.5, f64::NAN] {
            let err = base.with_backoff(2.0, bad).unwrap_err();
            assert!(
                matches!(err, ConfigError::Jitter { value } if value.total_cmp(&bad).is_eq()),
                "{err}"
            );
        }
    }

    #[test]
    fn arq_retry_budget_is_validated() {
        let base = ArqConfig::new(0.1, 0.05, 0).unwrap();
        assert_eq!(
            base.with_retry_budget(0).unwrap_err(),
            ConfigError::ZeroRetryBudget
        );
        assert!(base.with_retry_budget(1).is_ok());
    }

    #[test]
    fn arq_degrade_deadline_is_validated() {
        let base = ArqConfig::new(0.1, 0.05, 0).unwrap();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = base.with_degrade_deadline(bad).unwrap_err();
            assert!(
                matches!(err, ConfigError::DegradeDeadline { value } if value.total_cmp(&bad).is_eq()),
                "{err}"
            );
        }
    }

    #[test]
    fn arq_backoff_schedule_is_exponential() {
        let arq = ArqConfig::new(0.1, 0.05, 0)
            .and_then(|a| a.with_backoff(2.0, 0.0))
            .unwrap();
        assert!((arq.timeout_for_attempt(1) - 0.05).abs() < 1e-12);
        assert!((arq.timeout_for_attempt(2) - 0.10).abs() < 1e-12);
        assert!((arq.timeout_for_attempt(4) - 0.40).abs() < 1e-12);
    }

    #[test]
    fn arq_equality_is_total_order_on_floats() {
        let a = ArqConfig::new(0.1, 0.05, 3).unwrap();
        let b = ArqConfig::new(0.1, 0.05, 3).unwrap();
        assert_eq!(a, b);
        let c = ArqConfig::new(0.1, 0.05, 4).unwrap();
        assert_ne!(a, c);
    }
}
