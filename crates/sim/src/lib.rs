//! # mdr-sim — a discrete-event mobile data-replication simulator
//!
//! The distributed substrate for **Huang, Sistla, Wolfson, "Data Replication
//! for Mobile Computers" (SIGMOD 1994)**: a mobile computer (MC) and a
//! stationary computer (SC) exchanging real protocol messages over a
//! latency-ful wireless link, driven by Poisson read/write arrivals.
//!
//! The §4 window-ownership protocol is implemented literally:
//!
//! * exactly one side is *in charge* of the k-bit request window at any
//!   time — the side that sees every relevant request;
//! * allocation piggybacks the save-indication and the window on the data
//!   response; deallocation ships the window back on the delete-request;
//! * SW1's optimized write sends a bare delete-request instead of the data.
//!
//! The simulator continuously checks protocol invariants (single window
//! owner, replica freshness, SC/MC replica agreement) and, in oracle mode,
//! asserts per-request equivalence with the pure-policy reference
//! implementation in `mdr-core`.
//!
//! ```
//! use mdr_core::{CostModel, PolicySpec};
//! use mdr_sim::Simulation;
//!
//! // 10k Poisson requests at write fraction θ = 0.3 under SW5.
//! let report = Simulation::run_poisson(PolicySpec::SlidingWindow { k: 5 }, 0.3, 10_000, 42);
//! let per_request = report.cost_per_request(CostModel::Connection);
//! assert!(per_request > 0.0 && per_request < 1.0);
//! ```
//!
//! Configurations beyond the defaults go through the [`SimBuilder`] front
//! door; parameter grids fan out on the deterministic [`sweep`] engine.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
pub mod calendar;
pub mod engine;
mod estimate;
mod faults;
pub mod journal;
mod nodes;
pub mod perf;
mod protocol;
mod sim;
pub mod sweep;
mod topology;
mod wire;
mod workload;

pub use builder::SimBuilder;
pub use engine::{
    CoreSnapshot, Decision, DecisionCore, PolicyState, ServeBenchReport, ServeConfig, ServeEngine,
    ServeRequest, ServeResponse, ServeShedReason, Verdict,
};
pub use estimate::{estimate_average_cost, estimate_expected_cost, EstimatorConfig, Summary};
pub use faults::{ArqConfig, ConfigError, FaultKind, FaultPlan};
pub use journal::{
    DurabilityStats, DurableServe, FsyncPolicy, JournalConfig, RecoveryReport, TenantRecovery,
};
pub use nodes::{MobileNode, StationaryNode};
pub use protocol::{Envelope, ProtocolState, StepOutcome};
pub use sim::{
    InvariantMonitor, LossConfig, MobilityConfig, RunLimit, ShedReason, ShedRequest, SimConfig,
    SimReport, Simulation,
};
pub use topology::{HandoffLeg, HandoffSnapshot, TopologyConfig};
pub use wire::{Endpoint, MessageClass, WireMessage};
pub use workload::{
    Arrival, ArrivalProcess, DriftingPoisson, Period, PhasedWorkload, PoissonWorkload,
    TraceWorkload,
};
