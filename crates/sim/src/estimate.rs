//! Statistical estimation of the paper's cost measures from simulation.
//!
//! * [`estimate_expected_cost`] — Monte-Carlo estimate of `EXP_A(θ)` from
//!   independent Poisson runs at a fixed θ;
//! * [`estimate_average_cost`] — estimate of `AVG_A` from the drifting-θ
//!   period workload (θ uniform per period, the §3 construction under
//!   Eq. 1);
//! * [`Summary`] — mean / variance / 95% confidence interval over
//!   replications.

use crate::sim::{RunLimit, SimConfig, Simulation};
use crate::workload::{DriftingPoisson, PoissonWorkload};
use mdr_core::{CostModel, PolicySpec};

/// Replication statistics for one measured quantity.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of replications.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Standard error of the mean.
    pub stderr: f64,
    /// Half-width of the 95% normal confidence interval.
    pub ci95: f64,
}

impl Summary {
    /// Summarizes a set of replication results.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn from_samples(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let variance = if n == 1 {
            0.0
        } else {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        };
        let stderr = (variance / n as f64).sqrt();
        Summary {
            n,
            mean,
            variance,
            stderr,
            ci95: 1.96 * stderr,
        }
    }

    /// Whether `value` lies within the 95% confidence interval, widened by
    /// `slack` for model error.
    pub fn covers(&self, value: f64, slack: f64) -> bool {
        (value - self.mean).abs() <= self.ci95 + slack
    }
}

/// Parameters for the Monte-Carlo estimators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// Requests per replication run.
    pub requests_per_run: usize,
    /// Number of independent replications.
    pub replications: usize,
    /// Base RNG seed (replication i uses `seed + i`).
    pub seed: u64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            requests_per_run: 20_000,
            replications: 8,
            seed: 0x5157_D00D,
        }
    }
}

/// Monte-Carlo estimate of `EXP_A(θ)`: mean per-request cost over
/// independent Poisson runs at write fraction `theta`.
pub fn estimate_expected_cost(
    spec: PolicySpec,
    model: CostModel,
    theta: f64,
    config: EstimatorConfig,
) -> Summary {
    // Replications fan out across threads; `parallel_map` returns the
    // samples in replication order and each replication's seed is
    // `seed + i` exactly as in the serial days, so the Summary is
    // byte-identical at any thread count.
    let samples = crate::sweep::parallel_map(config.replications, 0, 1, |i| {
        let mut sim = Simulation::new(SimConfig::defaults(spec));
        let mut workload = PoissonWorkload::from_theta(1.0, theta, config.seed + i as u64);
        let report = sim.run(&mut workload, RunLimit::Requests(config.requests_per_run));
        report.cost_per_request(model)
    });
    Summary::from_samples(&samples)
}

/// Monte-Carlo estimate of `AVG_A`: per-request cost over a drifting-θ
/// workload in which each period of `requests_per_period` requests draws
/// θ ~ U(0, 1) — the operational meaning the paper gives Eq. 1.
pub fn estimate_average_cost(
    spec: PolicySpec,
    model: CostModel,
    requests_per_period: usize,
    periods: usize,
    config: EstimatorConfig,
) -> Summary {
    let samples = crate::sweep::parallel_map(config.replications, 0, 1, |i| {
        let mut sim = Simulation::new(SimConfig::defaults(spec));
        let mut workload = DriftingPoisson::new(
            1.0,
            requests_per_period,
            Some(periods),
            config.seed + i as u64,
        );
        let report = sim.run(
            &mut workload,
            RunLimit::Requests(requests_per_period * periods),
        );
        report.cost_per_request(model)
    });
    Summary::from_samples(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdr_analysis::{average_expected_cost, expected_cost};

    fn quick() -> EstimatorConfig {
        EstimatorConfig {
            requests_per_run: 8_000,
            replications: 6,
            seed: 42,
        }
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.variance - 5.0 / 3.0).abs() < 1e-12);
        assert!(s.ci95 > 0.0);
        assert!(s.covers(2.5, 0.0));
        assert!(!s.covers(100.0, 0.0));
        let single = Summary::from_samples(&[7.0]);
        assert_eq!(single.variance, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    fn exp_estimates_match_theory_for_statics() {
        // Deterministic check: ST1's per-request cost is exactly the read
        // fraction; its estimate must match Eq. 2 to sampling error.
        for theta in [0.25, 0.6] {
            let s = estimate_expected_cost(PolicySpec::St1, CostModel::Connection, theta, quick());
            assert!(s.covers(
                expected_cost(PolicySpec::St1, CostModel::Connection, theta),
                0.01
            ));
        }
    }

    #[test]
    fn exp_estimates_match_theory_for_swk() {
        for (k, theta) in [(1usize, 0.5), (3, 0.3), (9, 0.7)] {
            let spec = PolicySpec::SlidingWindow { k };
            for model in [CostModel::Connection, CostModel::message(0.5)] {
                let s = estimate_expected_cost(spec, model, theta, quick());
                let analytic = expected_cost(spec, model, theta);
                assert!(
                    s.covers(analytic, 0.015),
                    "k={k} θ={theta} {model}: {} ± {} vs {analytic}",
                    s.mean,
                    s.ci95
                );
            }
        }
    }

    #[test]
    fn avg_estimates_match_theory() {
        // AVG via drifting θ must approach the closed forms. Periods must be
        // long enough that window transients are negligible.
        for spec in [PolicySpec::St1, PolicySpec::SlidingWindow { k: 3 }] {
            let s = estimate_average_cost(
                spec,
                CostModel::Connection,
                2_000,
                30,
                EstimatorConfig {
                    requests_per_run: 0,
                    replications: 5,
                    seed: 7,
                },
            );
            let analytic = average_expected_cost(spec, CostModel::Connection);
            assert!(
                s.covers(analytic, 0.02),
                "{spec}: {} ± {} vs {analytic}",
                s.mean,
                s.ci95
            );
        }
    }
}
