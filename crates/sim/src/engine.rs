//! The decision core and the serving layer built on top of it.
//!
//! [`DecisionCore`] carves the per-request decision logic out of the
//! simulator into a sans-io state machine: an [`AllocationPolicy`] plus
//! billing ([`ActionCounts`] priced under one [`CostModel`]) and staleness
//! bookkeeping, behind one entry point —
//! [`decide`](DecisionCore::decide) — that returns a typed [`Decision`]
//! with exact cost attribution and no I/O, no clocks, and no randomness.
//! The simulator's oracle mode consumes a `DecisionCore` verbatim
//! (`crate::sim`), so the distributed protocol and the pure core are
//! checked against each other on every request of every simulated run.
//!
//! [`ServeEngine`] multiplexes many *tenants* — independent mobile
//! computers, each with its own `DecisionCore` — behind a newline-JSON
//! request/response wire format (`mdr serve` is a thin stdin/stdout loop
//! around [`ServeEngine::handle_line`]). The engine adds admission
//! control (a tenant cap and an optional decision budget, refusals
//! reported as typed shed outcomes rather than errors), per-tenant
//! snapshot/restore, and an optional §6-style adaptive mode that
//! re-selects the sliding-window size once a tenant's θ estimate
//! stabilizes.
//!
//! Everything here is deterministic: same inputs, same outputs, same
//! bytes — which is what lets `mdr bench --serve` pin a digest of the
//! whole wire conversation next to its throughput number.

use crate::faults::ConfigError;
use mdr_core::{
    Action, ActionCounts, AllocationPolicy, CostModel, PolicySpec, Request, RequestWindow,
    SlidingWindow, St1, St2, T1, T2,
};
use serde::{de_field, de_object, Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;

/// The snapshot format version this build writes and restores.
pub const SNAPSHOT_VERSION: u32 = 1;

/// What a [`Decision`] means for the caller's replica management — the
/// action's allocation consequence, separated from its §3 wire shape so
/// serving layers can branch on intent without re-deriving it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Verdict {
    /// Serve the read from the local replica; no communication.
    ServeLocal,
    /// Forward the read to the stationary computer; no allocation change.
    ServeRemote,
    /// Forward the read and allocate a replica from the response (§4's
    /// save-indication piggyback).
    Allocate,
    /// Apply the write at the SC only; the MC holds no replica.
    Silent,
    /// Propagate the write to the MC's replica; the replica is kept.
    Propagate,
    /// Drop the MC's replica on this write — either the propagated-write
    /// + delete-request exchange or SW1's optimized bare delete-request.
    Deallocate,
}

impl Verdict {
    /// The verdict the §3 action implies.
    pub fn of(action: Action) -> Verdict {
        match action {
            Action::LocalRead => Verdict::ServeLocal,
            Action::RemoteRead { allocates: false } => Verdict::ServeRemote,
            Action::RemoteRead { allocates: true } => Verdict::Allocate,
            Action::SilentWrite => Verdict::Silent,
            Action::PropagatedWrite { deallocates: false } => Verdict::Propagate,
            Action::PropagatedWrite { deallocates: true } | Action::DeleteRequestWrite => {
                Verdict::Deallocate
            }
        }
    }

    /// A stable lower-case label (`serve-local`, `allocate`, …) used on
    /// the serve wire format.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::ServeLocal => "serve-local",
            Verdict::ServeRemote => "serve-remote",
            Verdict::Allocate => "allocate",
            Verdict::Silent => "silent",
            Verdict::Propagate => "propagate",
            Verdict::Deallocate => "deallocate",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One decision of a [`DecisionCore`]: the §3 action taken, its verdict
/// for replica management, and its exact cost attribution under the
/// core's cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Position of this request in the core's stream (1-based: the first
    /// decision has `seq == 1`).
    pub seq: u64,
    /// The request that was decided.
    pub request: Request,
    /// The §3 communication action the policy took.
    pub action: Action,
    /// What the action means for the caller's replica.
    pub verdict: Verdict,
    /// Data messages this action puts on the link (§3 message model).
    pub data_messages: u64,
    /// Control messages this action puts on the link (§3 message model).
    pub control_messages: u64,
    /// Cellular connections this action requires (§3 connection model).
    pub connections: u64,
    /// The exact price of this action under the core's cost model.
    pub cost: f64,
    /// Whether the MC holds a replica *after* this decision.
    pub has_copy: bool,
    /// Writes the mobile side has not observed since it last saw the
    /// value (0 whenever this request itself brought it up to date).
    pub staleness: u64,
}

/// How a dynamic policy's mid-stream state is captured in a
/// [`CoreSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PolicyState {
    /// ST1/ST2 (§2): no mutable state beyond the spec itself.
    Stateless,
    /// SWk (§4): the request window, oldest first, as `r`/`w` letters.
    Window {
        /// The window contents, e.g. `"wrr"` for k = 3.
        window: String,
    },
    /// T1m/T2m (§7.1): replica presence plus the current streak counter.
    Streak {
        /// Whether the MC holds a replica.
        has_copy: bool,
        /// Consecutive same-kind requests counted toward the threshold.
        streak: u64,
    },
}

/// A complete, restorable image of a [`DecisionCore`] — everything needed
/// to continue the decision stream exactly where it left off. Serialized
/// on the serve wire format's `snapshot` operation; integer-only except
/// for the cost model's ω (whose text form round-trips exactly), so a
/// snapshot → JSON → restore trip is lossless.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoreSnapshot {
    /// Snapshot format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The policy the core runs.
    pub spec: PolicySpec,
    /// The cost model decisions are billed under.
    pub model: CostModel,
    /// Requests decided so far.
    pub decided: u64,
    /// Writes observed so far (the version counter of the data item).
    pub data_version: u64,
    /// The data version the mobile side last observed.
    pub replica_version: u64,
    /// The full action ledger up to the snapshot point.
    pub counts: ActionCounts,
    /// The policy's mid-stream state.
    pub state: PolicyState,
}

/// The concrete policy a [`DecisionCore`] runs. An enum (not a
/// `Box<dyn AllocationPolicy>`) so mid-stream state can be captured into
/// and rebuilt from a [`PolicyState`] without downcasting.
#[derive(Debug, Clone)]
enum PolicyKind {
    St1(St1),
    St2(St2),
    Sw(SlidingWindow),
    T1(T1),
    T2(T2),
}

impl PolicyKind {
    fn build(spec: PolicySpec) -> Result<PolicyKind, ConfigError> {
        match spec {
            PolicySpec::St1 => Ok(PolicyKind::St1(St1::new())),
            PolicySpec::St2 => Ok(PolicyKind::St2(St2::new())),
            PolicySpec::SlidingWindow { k } => {
                if k == 0 || k % 2 == 0 {
                    return Err(ConfigError::EvenWindow { k });
                }
                Ok(PolicyKind::Sw(SlidingWindow::new(k)))
            }
            PolicySpec::T1 { m } => {
                if m == 0 {
                    return Err(ConfigError::ZeroThreshold);
                }
                Ok(PolicyKind::T1(T1::new(m)))
            }
            PolicySpec::T2 { m } => {
                if m == 0 {
                    return Err(ConfigError::ZeroThreshold);
                }
                Ok(PolicyKind::T2(T2::new(m)))
            }
        }
    }

    fn policy(&mut self) -> &mut dyn AllocationPolicy {
        match self {
            PolicyKind::St1(p) => p,
            PolicyKind::St2(p) => p,
            PolicyKind::Sw(p) => p,
            PolicyKind::T1(p) => p,
            PolicyKind::T2(p) => p,
        }
    }

    fn has_copy(&self) -> bool {
        match self {
            PolicyKind::St1(p) => p.has_copy(),
            PolicyKind::St2(p) => p.has_copy(),
            PolicyKind::Sw(p) => p.has_copy(),
            PolicyKind::T1(p) => p.has_copy(),
            PolicyKind::T2(p) => p.has_copy(),
        }
    }

    fn state(&self) -> PolicyState {
        match self {
            PolicyKind::St1(_) | PolicyKind::St2(_) => PolicyState::Stateless,
            PolicyKind::Sw(p) => PolicyState::Window {
                window: p
                    .window()
                    .to_requests()
                    .iter()
                    .map(|r| r.letter())
                    .collect(),
            },
            PolicyKind::T1(p) => PolicyState::Streak {
                has_copy: p.has_copy(),
                streak: p.streak() as u64,
            },
            PolicyKind::T2(p) => PolicyState::Streak {
                has_copy: p.has_copy(),
                streak: p.streak() as u64,
            },
        }
    }

    fn restore(spec: PolicySpec, state: &PolicyState) -> Result<PolicyKind, ConfigError> {
        let mismatch = || ConfigError::BadDecisionRequest {
            reason: format!("snapshot state does not match policy {spec}"),
        };
        match (spec, state) {
            (PolicySpec::St1 | PolicySpec::St2, PolicyState::Stateless) => PolicyKind::build(spec),
            (PolicySpec::SlidingWindow { k }, PolicyState::Window { window }) => {
                if k == 0 || k % 2 == 0 {
                    return Err(ConfigError::EvenWindow { k });
                }
                if window.len() != k {
                    return Err(mismatch());
                }
                let requests: Vec<Request> = window
                    .chars()
                    .map(Request::from_letter)
                    .collect::<Result<_, _>>()
                    .map_err(|_| mismatch())?;
                Ok(PolicyKind::Sw(SlidingWindow::with_window(
                    RequestWindow::from_requests(&requests),
                )))
            }
            (PolicySpec::T1 { m }, &PolicyState::Streak { has_copy, streak }) => {
                if m == 0 {
                    return Err(ConfigError::ZeroThreshold);
                }
                if streak >= m as u64 {
                    return Err(mismatch());
                }
                Ok(PolicyKind::T1(T1::with_state(m, has_copy, streak as usize)))
            }
            (PolicySpec::T2 { m }, &PolicyState::Streak { has_copy, streak }) => {
                if m == 0 {
                    return Err(ConfigError::ZeroThreshold);
                }
                if streak >= m as u64 {
                    return Err(mismatch());
                }
                Ok(PolicyKind::T2(T2::with_state(m, has_copy, streak as usize)))
            }
            _ => Err(mismatch()),
        }
    }
}

/// The sans-io decision core: one [`AllocationPolicy`] plus billing and
/// staleness state, advanced one [`Request`] at a time through
/// [`decide`](DecisionCore::decide).
///
/// Determinism is the contract: a `DecisionCore` is a pure state machine
/// over its request stream, which is why the simulator can use one as the
/// per-request oracle (asserting the distributed protocol takes exactly
/// the same actions) and why serve-layer snapshots restore bit-for-bit.
///
/// ```
/// use mdr_core::{CostModel, PolicySpec, Request};
/// use mdr_sim::engine::{DecisionCore, Verdict};
///
/// let spec = PolicySpec::SlidingWindow { k: 3 };
/// let mut core = DecisionCore::new(spec, CostModel::message(0.5)).unwrap();
/// core.decide(Request::Read);
/// let d = core.decide(Request::Read); // reads take the window majority
/// assert_eq!(d.verdict, Verdict::Allocate);
/// assert_eq!(d.cost, 1.5); // data response + ω control request
/// ```
#[derive(Debug, Clone)]
pub struct DecisionCore {
    spec: PolicySpec,
    model: CostModel,
    policy: PolicyKind,
    decided: u64,
    counts: ActionCounts,
    /// Writes observed so far — the version counter of the data item.
    data_version: u64,
    /// The data version current when the mobile side last observed the
    /// value (served any read, or received a write propagation).
    replica_version: u64,
}

impl DecisionCore {
    /// Creates a core running `spec` billed under `model`, in the
    /// policy's §2/§4/§7.1 initial state.
    ///
    /// # Errors
    ///
    /// [`ConfigError::EvenWindow`] / [`ConfigError::ZeroThreshold`] when
    /// the spec's parameters violate the paper's constraints.
    pub fn new(spec: PolicySpec, model: CostModel) -> Result<DecisionCore, ConfigError> {
        Ok(DecisionCore {
            spec,
            model,
            policy: PolicyKind::build(spec)?,
            decided: 0,
            counts: ActionCounts::default(),
            data_version: 0,
            replica_version: 0,
        })
    }

    /// Decides one request: advances the policy, attributes the §3 cost,
    /// and updates the staleness counters. Never fails and never blocks —
    /// the caller owns all I/O.
    pub fn decide(&mut self, request: Request) -> Decision {
        let action = self.policy.policy().on_request(request);
        self.decided += 1;
        self.counts.record(action);
        if request.is_write() {
            self.data_version += 1;
        }
        // The mobile side is brought up to date by serving any read (local
        // replicas are kept fresh, remote reads return the current value)
        // and by every propagated write; only silent writes — and SW1's
        // bare delete-request, which carries no data — age it.
        let observed = match action {
            Action::LocalRead | Action::RemoteRead { .. } | Action::PropagatedWrite { .. } => true,
            Action::SilentWrite | Action::DeleteRequestWrite => false,
        };
        if observed {
            self.replica_version = self.data_version;
        }
        Decision {
            seq: self.decided,
            request,
            action,
            verdict: Verdict::of(action),
            data_messages: action.data_messages(),
            control_messages: action.control_messages(),
            connections: action.connections(),
            cost: self.model.price(action),
            has_copy: self.policy.has_copy(),
            staleness: self.data_version - self.replica_version,
        }
    }

    /// Informs the core that the MC's replica was lost outside the
    /// request stream (a volatile crash; see
    /// [`AllocationPolicy::on_replica_lost`]).
    pub fn on_replica_lost(&mut self) {
        self.policy.policy().on_replica_lost();
    }

    /// Whether the MC currently holds a replica.
    pub fn has_copy(&self) -> bool {
        self.policy.has_copy()
    }

    /// The policy spec this core runs.
    pub fn spec(&self) -> PolicySpec {
        self.spec
    }

    /// The cost model decisions are billed under.
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Requests decided so far.
    pub fn decided(&self) -> u64 {
        self.decided
    }

    /// The action ledger accumulated so far.
    pub fn counts(&self) -> &ActionCounts {
        &self.counts
    }

    /// The exact total billed so far — the §3 COST of the decided stream,
    /// recomputed from the integer ledger (not accumulated in floating
    /// point, so it is independent of decision batching).
    pub fn total_cost(&self) -> f64 {
        self.model.price_counts(&self.counts)
    }

    /// Writes observed so far (the data item's version counter).
    pub fn data_version(&self) -> u64 {
        self.data_version
    }

    /// The data version the mobile side last observed.
    pub fn replica_version(&self) -> u64 {
        self.replica_version
    }

    /// Captures a complete restorable image of this core.
    pub fn snapshot(&self) -> CoreSnapshot {
        CoreSnapshot {
            version: SNAPSHOT_VERSION,
            spec: self.spec,
            model: self.model,
            decided: self.decided,
            data_version: self.data_version,
            replica_version: self.replica_version,
            counts: self.counts,
            state: self.policy.state(),
        }
    }

    /// Rebuilds a core from a [`snapshot`](Self::snapshot), continuing
    /// the decision stream exactly where the image was taken.
    ///
    /// # Errors
    ///
    /// [`ConfigError::SnapshotVersion`] for a version this build does not
    /// speak; [`ConfigError::BadDecisionRequest`] when the embedded state
    /// does not match the embedded spec.
    pub fn restore(snapshot: &CoreSnapshot) -> Result<DecisionCore, ConfigError> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(ConfigError::SnapshotVersion {
                found: snapshot.version,
                supported: SNAPSHOT_VERSION,
            });
        }
        if snapshot.replica_version > snapshot.data_version
            || snapshot.counts.total() != snapshot.decided
            || snapshot.counts.writes() != snapshot.data_version
        {
            return Err(ConfigError::BadDecisionRequest {
                reason: "snapshot counters are inconsistent".to_owned(),
            });
        }
        Ok(DecisionCore {
            spec: snapshot.spec,
            model: snapshot.model,
            policy: PolicyKind::restore(snapshot.spec, &snapshot.state)?,
            decided: snapshot.decided,
            counts: snapshot.counts,
            data_version: snapshot.data_version,
            replica_version: snapshot.replica_version,
        })
    }

    /// Switches the core to a different policy mid-stream, preserving the
    /// current replica state (the serve layer's §6 adaptive re-selection
    /// rides on this). The billing ledger and version counters continue
    /// uninterrupted; only the policy's *future* behaviour changes.
    ///
    /// Dynamic targets adopt the replica state exactly: SWk starts from a
    /// window that agrees with the current copy state, T1m/T2m from a
    /// zero streak. A static target imposes its own fixed allocation.
    ///
    /// # Errors
    ///
    /// Rejects invalid target parameters, like [`DecisionCore::new`].
    pub fn adopt(&mut self, spec: PolicySpec) -> Result<(), ConfigError> {
        let has_copy = self.has_copy();
        let policy = match spec {
            PolicySpec::SlidingWindow { k } => {
                if k == 0 || k % 2 == 0 {
                    return Err(ConfigError::EvenWindow { k });
                }
                PolicyKind::Sw(if has_copy {
                    SlidingWindow::with_initial_copy(k)
                } else {
                    SlidingWindow::new(k)
                })
            }
            PolicySpec::T1 { m } => {
                if m == 0 {
                    return Err(ConfigError::ZeroThreshold);
                }
                PolicyKind::T1(T1::with_state(m, has_copy, 0))
            }
            PolicySpec::T2 { m } => {
                if m == 0 {
                    return Err(ConfigError::ZeroThreshold);
                }
                PolicyKind::T2(T2::with_state(m, has_copy, 0))
            }
            PolicySpec::St1 | PolicySpec::St2 => PolicyKind::build(spec)?,
        };
        self.spec = spec;
        self.policy = policy;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The serving layer.
// ---------------------------------------------------------------------------

/// Admission and default-policy configuration for a [`ServeEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Maximum concurrently-open tenants; opens beyond it are shed.
    pub max_tenants: usize,
    /// Optional total decision budget; decisions beyond it are shed.
    pub decision_budget: Option<u64>,
    /// Policy for tenants that do not name one. The default is the
    /// (m+1)-competitive T1 with m = 2 — competitive-safe on any stream
    /// (§7.1), unlike the statics.
    pub default_policy: PolicySpec,
    /// Cost model for tenants that do not name one.
    pub default_model: CostModel,
    /// Whether tenants adapt their window size once θ̂ stabilizes (§6).
    pub adaptive: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_tenants: 64,
            decision_budget: None,
            default_policy: PolicySpec::T1 { m: 2 },
            default_model: CostModel::Connection,
            adaptive: false,
        }
    }
}

/// Decisions between θ̂ checkpoints of the adaptive serve mode (also
/// re-derived by journal replay, so recovery reconstructs the same
/// checkpoint bookkeeping the live engine had).
pub(crate) const ADAPT_INTERVAL: u64 = 64;
/// Two consecutive checkpoint estimates within this distance count as a
/// stable θ̂ (§6's "θ is fixed" precondition, made operational).
const ADAPT_TOLERANCE: f64 = 0.05;
/// Window sizes the adaptive mode selects among (§6: the interesting k
/// are small; AVG differences vanish as k grows).
const ADAPT_CANDIDATES: [usize; 5] = [1, 3, 5, 7, 9];

/// Per-tenant serve state: the decision core plus adaptive bookkeeping.
#[derive(Debug, Clone)]
struct Tenant {
    core: DecisionCore,
    /// θ̂ numerator/denominator at the previous adaptive checkpoint.
    checkpoint: Option<(u64, u64)>,
    /// Whether the §6 re-selection already happened (it fires once; the
    /// chosen window then stands, matching the paper's fixed-θ regime).
    adapted: bool,
}

/// One parsed serve-layer request (the `op` discriminates).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequest {
    /// Open a tenant, optionally naming its policy and cost model.
    Open {
        /// Tenant id (any non-empty string).
        tenant: String,
        /// Policy notation (`SW5`, `T1(3)`, …); engine default if absent.
        policy: Option<String>,
        /// Cost model notation (`connection`, `message:0.4`); engine
        /// default if absent.
        model: Option<String>,
    },
    /// Decide one request for a tenant.
    Decide {
        /// Tenant id.
        tenant: String,
        /// The request, as the paper's `r`/`w` letter.
        request: char,
    },
    /// Report a tenant's ledger and state — or, with no tenant named,
    /// the daemon-level totals (tenant count, lifetime decisions, and the
    /// durability counters when the serving layer journals to disk).
    Stats {
        /// Tenant id; `None` asks for daemon-level stats.
        tenant: Option<String>,
    },
    /// Capture a tenant's restorable snapshot.
    Snapshot {
        /// Tenant id.
        tenant: String,
    },
    /// Open (or reopen) a tenant from a snapshot.
    Restore {
        /// Tenant id.
        tenant: String,
        /// A snapshot previously produced by [`ServeRequest::Snapshot`].
        snapshot: CoreSnapshot,
    },
    /// Close a tenant, releasing its slot.
    Close {
        /// Tenant id.
        tenant: String,
    },
    /// Stop the serve loop.
    Shutdown,
}

impl Deserialize for ServeRequest {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let fields = de_object(value, "ServeRequest")?;
        let op: String = de_field(fields, "op", "ServeRequest")?;
        match op.as_str() {
            "open" => Ok(ServeRequest::Open {
                tenant: de_field(fields, "tenant", "open")?,
                policy: de_field(fields, "policy", "open")?,
                model: de_field(fields, "model", "open")?,
            }),
            "decide" => Ok(ServeRequest::Decide {
                tenant: de_field(fields, "tenant", "decide")?,
                request: de_field(fields, "request", "decide")?,
            }),
            "stats" => Ok(ServeRequest::Stats {
                tenant: de_field(fields, "tenant", "stats")?,
            }),
            "snapshot" => Ok(ServeRequest::Snapshot {
                tenant: de_field(fields, "tenant", "snapshot")?,
            }),
            "restore" => Ok(ServeRequest::Restore {
                tenant: de_field(fields, "tenant", "restore")?,
                snapshot: de_field(fields, "snapshot", "restore")?,
            }),
            "close" => Ok(ServeRequest::Close {
                tenant: de_field(fields, "tenant", "close")?,
            }),
            "shutdown" => Ok(ServeRequest::Shutdown),
            other => Err(serde::Error::custom(format!(
                "unknown op {other:?}; expected open, decide, stats, snapshot, restore, close or shutdown"
            ))),
        }
    }
}

/// Why a serve-layer request was refused by admission control rather than
/// failed — typed, so clients can distinguish back-pressure from bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServeShedReason {
    /// The tenant cap is reached; closing a tenant frees a slot.
    TenantLimit,
    /// The engine's total decision budget is exhausted.
    BudgetExhausted,
}

impl ServeShedReason {
    /// The stable wire label (`tenant-limit`, `budget-exhausted`).
    pub fn label(self) -> &'static str {
        match self {
            ServeShedReason::TenantLimit => "tenant-limit",
            ServeShedReason::BudgetExhausted => "budget-exhausted",
        }
    }
}

/// One serve-layer response. `Error` is for requests the engine will
/// never accept (malformed, unknown tenant); `Shed` is admission control
/// declining work it would otherwise perform.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeResponse {
    /// A tenant was opened.
    Opened {
        /// Tenant id.
        tenant: String,
        /// The policy it runs (canonical notation).
        policy: String,
        /// The cost model it bills under.
        model: String,
    },
    /// A decision was made.
    Decided {
        /// Tenant id.
        tenant: String,
        /// The decision.
        decision: Decision,
    },
    /// A tenant's current ledger and state.
    Stats {
        /// Tenant id.
        tenant: String,
        /// The policy it currently runs (canonical notation — this moves
        /// when the adaptive mode re-selects the window).
        policy: String,
        /// Requests decided.
        decided: u64,
        /// Exact total cost billed.
        cost: f64,
        /// Whether the MC holds a replica.
        has_copy: bool,
        /// Writes observed (the item's version counter).
        data_version: u64,
        /// The version the mobile side last observed.
        replica_version: u64,
    },
    /// Daemon-level totals (the `stats` op with no tenant named).
    ServerStats {
        /// Currently-open tenants.
        tenants: usize,
        /// Decisions served over the engine's lifetime.
        decisions: u64,
        /// Journal/recovery counters; `None` when the engine runs without
        /// a durability layer (`mdr serve` without `--data-dir`).
        durability: Option<crate::journal::DurabilityStats>,
    },
    /// A tenant snapshot.
    Snapshot {
        /// Tenant id.
        tenant: String,
        /// The restorable image.
        snapshot: CoreSnapshot,
    },
    /// A tenant was restored from a snapshot.
    Restored {
        /// Tenant id.
        tenant: String,
        /// Requests the restored core had already decided.
        decided: u64,
    },
    /// A tenant was closed.
    Closed {
        /// Tenant id.
        tenant: String,
        /// Requests it decided over its lifetime.
        decided: u64,
        /// Its exact total bill.
        cost: f64,
    },
    /// The serve loop is stopping.
    Shutdown {
        /// Tenants still open at shutdown.
        tenants: usize,
        /// Decisions served over the engine's lifetime.
        decisions: u64,
    },
    /// Admission control declined the request.
    Shed {
        /// Why.
        reason: ServeShedReason,
        /// Human-readable detail.
        detail: String,
    },
    /// The request failed.
    Error {
        /// A stable machine-matchable code (`unknown-tenant`,
        /// `bad-request`, `tenant-exists`, `snapshot-version`,
        /// `bad-config`).
        code: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl Serialize for ServeResponse {
    fn to_value(&self) -> Value {
        let obj = |pairs: Vec<(&str, Value)>| {
            Value::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
        };
        match self {
            ServeResponse::Opened {
                tenant,
                policy,
                model,
            } => obj(vec![
                ("ok", Value::String("open".to_owned())),
                ("tenant", tenant.to_value()),
                ("policy", policy.to_value()),
                ("model", model.to_value()),
            ]),
            ServeResponse::Decided { tenant, decision } => obj(vec![
                ("ok", Value::String("decision".to_owned())),
                ("tenant", tenant.to_value()),
                ("seq", decision.seq.to_value()),
                ("request", decision.request.letter().to_value()),
                ("action", Value::String(decision.action.to_string())),
                (
                    "verdict",
                    Value::String(decision.verdict.label().to_owned()),
                ),
                ("cost", decision.cost.to_value()),
                ("data", decision.data_messages.to_value()),
                ("control", decision.control_messages.to_value()),
                ("connections", decision.connections.to_value()),
                ("has_copy", decision.has_copy.to_value()),
                ("staleness", decision.staleness.to_value()),
            ]),
            ServeResponse::Stats {
                tenant,
                policy,
                decided,
                cost,
                has_copy,
                data_version,
                replica_version,
            } => obj(vec![
                ("ok", Value::String("stats".to_owned())),
                ("tenant", tenant.to_value()),
                ("policy", policy.to_value()),
                ("decided", decided.to_value()),
                ("cost", cost.to_value()),
                ("has_copy", has_copy.to_value()),
                ("data_version", data_version.to_value()),
                ("replica_version", replica_version.to_value()),
            ]),
            ServeResponse::ServerStats {
                tenants,
                decisions,
                durability,
            } => {
                let mut pairs = vec![
                    ("ok", Value::String("server-stats".to_owned())),
                    ("tenants", tenants.to_value()),
                    ("decisions", decisions.to_value()),
                ];
                if let Some(d) = durability {
                    pairs.extend(d.pairs());
                }
                obj(pairs)
            }
            ServeResponse::Snapshot { tenant, snapshot } => obj(vec![
                ("ok", Value::String("snapshot".to_owned())),
                ("tenant", tenant.to_value()),
                ("snapshot", snapshot.to_value()),
            ]),
            ServeResponse::Restored { tenant, decided } => obj(vec![
                ("ok", Value::String("restore".to_owned())),
                ("tenant", tenant.to_value()),
                ("decided", decided.to_value()),
            ]),
            ServeResponse::Closed {
                tenant,
                decided,
                cost,
            } => obj(vec![
                ("ok", Value::String("close".to_owned())),
                ("tenant", tenant.to_value()),
                ("decided", decided.to_value()),
                ("cost", cost.to_value()),
            ]),
            ServeResponse::Shutdown { tenants, decisions } => obj(vec![
                ("ok", Value::String("shutdown".to_owned())),
                ("tenants", tenants.to_value()),
                ("decisions", decisions.to_value()),
            ]),
            ServeResponse::Shed { reason, detail } => obj(vec![
                ("shed", Value::String(reason.label().to_owned())),
                ("detail", detail.to_value()),
            ]),
            ServeResponse::Error { code, detail } => obj(vec![
                ("err", code.to_value()),
                ("detail", detail.to_value()),
            ]),
        }
    }
}

/// A long-running, deterministic decision server: many tenants, each with
/// its own [`DecisionCore`], multiplexed behind a typed API
/// ([`apply`](Self::apply)) and a newline-JSON wire format
/// ([`handle_line`](Self::handle_line)).
///
/// `handle_line` never panics: malformed input becomes a
/// [`ConfigError::BadDecisionRequest`]-backed error response, and every
/// request — however broken — produces exactly one response line.
#[derive(Debug, Clone)]
pub struct ServeEngine {
    config: ServeConfig,
    tenants: BTreeMap<String, Tenant>,
    decisions: u64,
    done: bool,
}

impl ServeEngine {
    /// Creates an engine with the given admission/default configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroCount`] when `max_tenants` is zero, and the
    /// default policy's own parameter errors.
    pub fn new(config: ServeConfig) -> Result<ServeEngine, ConfigError> {
        if config.max_tenants == 0 {
            return Err(ConfigError::ZeroCount {
                what: "tenant limit",
            });
        }
        // Validate the defaults once, up front, so a bad default policy
        // surfaces at startup rather than on the first defaulted open.
        PolicyKind::build(config.default_policy)?;
        Ok(ServeEngine {
            config,
            tenants: BTreeMap::new(),
            decisions: 0,
            done: false,
        })
    }

    /// Whether a shutdown request was processed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Decisions served over the engine's lifetime.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Currently-open tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The policy an open tenant currently runs (this moves when the
    /// adaptive mode re-selects the window), or `None` for a tenant that
    /// is not open. The durability layer compares it across a decision to
    /// journal adaptive re-selections as explicit records.
    pub fn tenant_policy(&self, tenant: &str) -> Option<PolicySpec> {
        self.tenants.get(tenant).map(|t| t.core.spec())
    }

    /// The decision core behind an open tenant (checkpoint serialization).
    pub(crate) fn tenant_core(&self, tenant: &str) -> Option<&DecisionCore> {
        self.tenants.get(tenant).map(|t| &t.core)
    }

    /// A tenant's adaptive bookkeeping: `(adapted, θ̂ checkpoint)`.
    pub(crate) fn adapt_state(&self, tenant: &str) -> Option<(bool, Option<(u64, u64)>)> {
        self.tenants.get(tenant).map(|t| (t.adapted, t.checkpoint))
    }

    /// Installs a recovered tenant directly, bypassing admission control:
    /// the tenant was admitted by a previous incarnation of the daemon, so
    /// recovery must not re-litigate it (a lowered `--max-tenants` would
    /// otherwise strand durable state on disk).
    pub(crate) fn install_tenant(
        &mut self,
        name: &str,
        core: DecisionCore,
        adapted: bool,
        checkpoint: Option<(u64, u64)>,
    ) {
        self.tenants.insert(
            name.to_owned(),
            Tenant {
                core,
                checkpoint,
                adapted,
            },
        );
    }

    /// Restores the lifetime decision counter after recovery (the sum of
    /// the recovered tenants' `decided` streams — decisions by tenants
    /// closed before the restart are not recoverable and stay forgotten).
    pub(crate) fn restore_lifetime(&mut self, decisions: u64) {
        self.decisions = decisions;
    }

    /// Replays one journaled decision, bypassing the budget (the work was
    /// already admitted and acknowledged by a previous incarnation) and
    /// the live adaptive trigger — re-selections are replayed from their
    /// own explicit journal records, so recovery is independent of the
    /// daemon's current `--adapt` setting. Only the θ̂ checkpoint
    /// bookkeeping is re-derived, exactly as [`Self::maybe_adapt`] would
    /// have recorded it.
    pub(crate) fn replay_decide(
        &mut self,
        tenant: &str,
        request: Request,
    ) -> Result<(), ConfigError> {
        let t = self.tenant(tenant)?;
        t.core.decide(request);
        if !t.adapted && t.core.decided() % ADAPT_INTERVAL == 0 {
            t.checkpoint = Some((t.core.counts().writes(), t.core.decided()));
        }
        self.decisions += 1;
        Ok(())
    }

    /// Replays one journaled §6 re-selection: adopt the recorded window
    /// and latch `adapted`, exactly as the live [`Self::maybe_adapt`] did
    /// when it wrote the record.
    pub(crate) fn replay_adopt(
        &mut self,
        tenant: &str,
        spec: PolicySpec,
    ) -> Result<(), ConfigError> {
        let t = self.tenant(tenant)?;
        t.core.adopt(spec)?;
        t.adapted = true;
        Ok(())
    }

    /// Replays one journaled `restore`, mirroring the live semantics
    /// minus admission control: over an open tenant it rewinds the core
    /// in place (adaptive latch preserved, θ̂ checkpoint cleared); for an
    /// absent tenant it installs a fresh one.
    pub(crate) fn replay_restore(
        &mut self,
        tenant: &str,
        snapshot: &CoreSnapshot,
    ) -> Result<(), ConfigError> {
        let core = DecisionCore::restore(snapshot)?;
        if let Some(existing) = self.tenants.get_mut(tenant) {
            existing.core = core;
            existing.checkpoint = None;
        } else {
            self.tenants.insert(
                tenant.to_owned(),
                Tenant {
                    core,
                    checkpoint: None,
                    adapted: false,
                },
            );
        }
        Ok(())
    }

    /// Drops a tenant without the `close` ceremony — the durability layer
    /// uses this to undo a partially-recovered or journal-failed tenant
    /// before quarantining its on-disk state.
    pub(crate) fn evict_tenant(&mut self, tenant: &str) -> bool {
        self.tenants.remove(tenant).is_some()
    }

    pub(crate) fn error(err: &ConfigError) -> ServeResponse {
        let code = match err {
            ConfigError::UnknownTenant { .. } => "unknown-tenant",
            ConfigError::BadDecisionRequest { .. } => "bad-request",
            ConfigError::SnapshotVersion { .. } => "snapshot-version",
            ConfigError::DataDir { .. } => "data-dir",
            ConfigError::JournalCorrupt { .. } => "journal-corrupt",
            ConfigError::CheckpointVersion { .. } => "checkpoint-version",
            _ => "bad-config",
        };
        ServeResponse::Error {
            code: code.to_owned(),
            detail: err.to_string(),
        }
    }

    fn tenant(&mut self, name: &str) -> Result<&mut Tenant, ConfigError> {
        self.tenants
            .get_mut(name)
            .ok_or_else(|| ConfigError::UnknownTenant {
                tenant: name.to_owned(),
            })
    }

    fn admit(&self, tenant: &str) -> Result<Option<ServeResponse>, ConfigError> {
        if tenant.is_empty() {
            return Err(ConfigError::BadDecisionRequest {
                reason: "tenant id must be non-empty".to_owned(),
            });
        }
        if self.tenants.contains_key(tenant) {
            return Ok(Some(ServeResponse::Error {
                code: "tenant-exists".to_owned(),
                detail: format!("tenant {tenant:?} is already open"),
            }));
        }
        if self.tenants.len() >= self.config.max_tenants {
            let limit = self.config.max_tenants;
            return Ok(Some(ServeResponse::Shed {
                reason: ServeShedReason::TenantLimit,
                detail: ConfigError::TenantLimit { limit }.to_string(),
            }));
        }
        Ok(None)
    }

    /// Re-selects a tenant's window size once its θ̂ estimate stabilizes
    /// (§6): at every checkpoint the write fraction over the tenant's
    /// whole stream is compared with the previous checkpoint's; once the
    /// two agree within tolerance, the SWk with the lowest expected cost
    /// ([`mdr_analysis::expected_cost`]) under the tenant's own cost
    /// model is adopted, replica state preserved.
    fn maybe_adapt(tenant: &mut Tenant) {
        if tenant.adapted || tenant.core.decided() % ADAPT_INTERVAL != 0 {
            return;
        }
        let decided = tenant.core.decided();
        let writes = tenant.core.counts().writes();
        let prev = tenant.checkpoint.replace((writes, decided));
        let Some((prev_writes, prev_decided)) = prev else {
            return;
        };
        let theta_now = writes as f64 / decided as f64;
        let theta_prev = prev_writes as f64 / prev_decided as f64;
        if (theta_now - theta_prev).abs() > ADAPT_TOLERANCE {
            return;
        }
        let model = tenant.core.model();
        let Some((best, _)) = ADAPT_CANDIDATES
            .iter()
            .map(|&k| {
                let spec = PolicySpec::SlidingWindow { k };
                (spec, mdr_analysis::expected_cost(spec, model, theta_now))
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
        else {
            unreachable!("ADAPT_CANDIDATES is a non-empty constant");
        };
        let Ok(()) = tenant.core.adopt(best) else {
            unreachable!("every adaptive candidate window is odd and positive");
        };
        tenant.adapted = true;
    }

    /// Applies one typed request, returning exactly one typed response.
    /// Infallible by construction: failures are data.
    pub fn apply(&mut self, request: &ServeRequest) -> ServeResponse {
        match self.try_apply(request) {
            Ok(response) => response,
            Err(e) => Self::error(&e),
        }
    }

    fn try_apply(&mut self, request: &ServeRequest) -> Result<ServeResponse, ConfigError> {
        match request {
            ServeRequest::Open {
                tenant,
                policy,
                model,
            } => {
                if let Some(refusal) = self.admit(tenant)? {
                    return Ok(refusal);
                }
                let spec = match policy {
                    None => self.config.default_policy,
                    Some(text) => text.parse().map_err(|e: mdr_core::ParsePolicyError| {
                        ConfigError::BadDecisionRequest {
                            reason: e.to_string(),
                        }
                    })?,
                };
                let model = match model {
                    None => self.config.default_model,
                    Some(text) => text.parse().map_err(|e: mdr_core::ParseModelError| {
                        ConfigError::BadDecisionRequest {
                            reason: e.to_string(),
                        }
                    })?,
                };
                let core = DecisionCore::new(spec, model)?;
                self.tenants.insert(
                    tenant.clone(),
                    Tenant {
                        core,
                        checkpoint: None,
                        adapted: false,
                    },
                );
                Ok(ServeResponse::Opened {
                    tenant: tenant.clone(),
                    policy: spec.to_string(),
                    model: model.to_string(),
                })
            }
            ServeRequest::Decide { tenant, request } => {
                if let Some(budget) = self.config.decision_budget {
                    if self.decisions >= budget {
                        return Ok(ServeResponse::Shed {
                            reason: ServeShedReason::BudgetExhausted,
                            detail: format!("decision budget of {budget} exhausted"),
                        });
                    }
                }
                let req = Request::from_letter(*request).map_err(|e| {
                    ConfigError::BadDecisionRequest {
                        reason: e.to_string(),
                    }
                })?;
                let adaptive = self.config.adaptive;
                let t = self.tenant(tenant)?;
                let decision = t.core.decide(req);
                if adaptive {
                    Self::maybe_adapt(t);
                }
                self.decisions += 1;
                Ok(ServeResponse::Decided {
                    tenant: tenant.clone(),
                    decision,
                })
            }
            ServeRequest::Stats { tenant: None } => Ok(ServeResponse::ServerStats {
                tenants: self.tenants.len(),
                decisions: self.decisions,
                durability: None,
            }),
            ServeRequest::Stats {
                tenant: Some(tenant),
            } => {
                let t = self.tenant(tenant)?;
                Ok(ServeResponse::Stats {
                    tenant: tenant.clone(),
                    policy: t.core.spec().to_string(),
                    decided: t.core.decided(),
                    cost: t.core.total_cost(),
                    has_copy: t.core.has_copy(),
                    data_version: t.core.data_version(),
                    replica_version: t.core.replica_version(),
                })
            }
            ServeRequest::Snapshot { tenant } => {
                let t = self.tenant(tenant)?;
                Ok(ServeResponse::Snapshot {
                    tenant: tenant.clone(),
                    snapshot: t.core.snapshot(),
                })
            }
            ServeRequest::Restore { tenant, snapshot } => {
                if let Some(existing) = self.tenants.get_mut(tenant) {
                    // Restoring over an open tenant rewinds it in place —
                    // no admission question arises.
                    existing.core = DecisionCore::restore(snapshot)?;
                    existing.checkpoint = None;
                } else {
                    if let Some(refusal) = self.admit(tenant)? {
                        return Ok(refusal);
                    }
                    let core = DecisionCore::restore(snapshot)?;
                    self.tenants.insert(
                        tenant.clone(),
                        Tenant {
                            core,
                            checkpoint: None,
                            adapted: false,
                        },
                    );
                }
                Ok(ServeResponse::Restored {
                    tenant: tenant.clone(),
                    decided: snapshot.decided,
                })
            }
            ServeRequest::Close { tenant } => {
                let t = self.tenant(tenant)?;
                let decided = t.core.decided();
                let cost = t.core.total_cost();
                self.tenants.remove(tenant);
                Ok(ServeResponse::Closed {
                    tenant: tenant.clone(),
                    decided,
                    cost,
                })
            }
            ServeRequest::Shutdown => {
                self.done = true;
                Ok(ServeResponse::Shutdown {
                    tenants: self.tenants.len(),
                    decisions: self.decisions,
                })
            }
        }
    }

    /// Handles one wire line: parse, apply, serialize. Total — any input
    /// byte sequence produces exactly one JSON response line, never a
    /// panic.
    pub fn handle_line(&mut self, line: &str) -> String {
        let response = match serde_json::from_str::<ServeRequest>(line) {
            Ok(request) => self.apply(&request),
            Err(e) => Self::error(&ConfigError::BadDecisionRequest {
                reason: e.to_string(),
            }),
        };
        let Ok(wire) = serde_json::to_string(&response) else {
            unreachable!("every ServeResponse value serializes");
        };
        wire
    }
}

// ---------------------------------------------------------------------------
// The serve benchmark workload.
// ---------------------------------------------------------------------------

/// Result of one [`run_serve_bench`] pass: how many decisions were
/// served and the FNV-1a digest of every response byte — the
/// determinism half of the `BENCH_serve.json` gate (any drift in wire
/// behaviour fails CI at any speed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeBenchReport {
    /// Decisions served (excludes opens and the shutdown).
    pub decisions: u64,
    /// FNV-1a over the bytes of every response line, in order.
    pub digest: u64,
}

/// Builds the deterministic benchmark session: `tenants` tenants with
/// write fractions fanned across (0, 1), `per_tenant` decide lines each,
/// round-robin interleaved, from a SplitMix64 stream on `seed`.
///
/// Generation is separated from [`run_serve_bench`] so the timed loop
/// measures only the serve path (JSON parse → decide → JSON print), not
/// workload synthesis.
pub fn serve_bench_lines(tenants: usize, per_tenant: usize, seed: u64) -> Vec<String> {
    // SplitMix64 — the standard 64-bit mixing constants; self-contained
    // so the bench needs no RNG plumbing and stays bit-stable forever.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut lines = Vec::with_capacity(tenants * (per_tenant + 1) + 1);
    for t in 0..tenants {
        // Mixed roster: half the tenants on the competitive default, the
        // rest split between window and threshold policies.
        let policy = match t % 4 {
            0 => r#","policy":"T1(2)""#.to_owned(),
            1 => r#","policy":"SW5""#.to_owned(),
            2 => r#","policy":"SW1","model":"message:0.5""#.to_owned(),
            _ => r#","policy":"T2(3)","model":"message:0.25""#.to_owned(),
        };
        lines.push(format!(r#"{{"op":"open","tenant":"t{t}"{policy}}}"#));
    }
    for _round in 0..per_tenant {
        for t in 0..tenants {
            // Per-tenant write fraction, fanned across (0, 1).
            let theta = (t + 1) as f64 / (tenants + 1) as f64;
            let letter = if (next() >> 11) as f64 / (1u64 << 53) as f64 <= theta {
                'w'
            } else {
                'r'
            };
            lines.push(format!(
                r#"{{"op":"decide","tenant":"t{t}","request":"{letter}"}}"#
            ));
        }
    }
    lines.push(r#"{"op":"shutdown"}"#.to_owned());
    lines
}

/// Runs a prepared benchmark session through a fresh [`ServeEngine`],
/// digesting every response byte. This is the function `mdr bench
/// --serve` times; it is also exercised (undigested) by the CI smoke
/// job via `mdr serve` itself.
pub fn run_serve_bench(
    lines: &[String],
    config: ServeConfig,
) -> Result<ServeBenchReport, ConfigError> {
    let mut engine = ServeEngine::new(config)?;
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fnv = |bytes: &[u8]| {
        for &b in bytes {
            digest ^= u64::from(b);
            digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for line in lines {
        let response = engine.handle_line(line);
        fnv(response.as_bytes());
        fnv(b"\n");
    }
    Ok(ServeBenchReport {
        decisions: engine.decisions(),
        digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdr_core::Schedule;

    fn sched(s: &str) -> Schedule {
        s.parse().unwrap()
    }

    #[test]
    fn decisions_carry_exact_cost_attribution() {
        let spec = PolicySpec::SlidingWindow { k: 3 };
        let mut core = DecisionCore::new(spec, CostModel::message(0.5)).unwrap();
        let d = core.decide(Request::Read);
        assert_eq!(d.seq, 1);
        assert_eq!(d.verdict, Verdict::ServeRemote);
        assert_eq!(
            (d.data_messages, d.control_messages, d.connections),
            (1, 1, 1)
        );
        assert_eq!(d.cost, 1.5);
        let d = core.decide(Request::Read);
        assert_eq!(d.verdict, Verdict::Allocate);
        assert!(d.has_copy);
        let d = core.decide(Request::Read);
        assert_eq!(d.verdict, Verdict::ServeLocal);
        assert_eq!(d.cost, 0.0);
        assert_eq!(core.total_cost(), 3.0);
    }

    #[test]
    fn staleness_counts_unobserved_writes() {
        let mut core = DecisionCore::new(PolicySpec::St1, CostModel::Connection).unwrap();
        assert_eq!(core.decide(Request::Write).staleness, 1);
        assert_eq!(core.decide(Request::Write).staleness, 2);
        // A remote read returns the current value: staleness collapses.
        assert_eq!(core.decide(Request::Read).staleness, 0);
        assert_eq!(core.data_version(), 2);
        assert_eq!(core.replica_version(), 2);
    }

    #[test]
    fn replica_holding_cores_never_go_stale() {
        let mut core =
            DecisionCore::new(PolicySpec::SlidingWindow { k: 5 }, CostModel::Connection).unwrap();
        for r in &sched("rrrwwrwrwwrrrwwwwrrr") {
            let d = core.decide(r);
            if d.has_copy {
                assert_eq!(d.staleness, 0, "a held replica receives every write");
            }
        }
    }

    #[test]
    fn core_matches_reference_policy_run() {
        for spec in PolicySpec::roster(&[1, 3, 7], &[1, 3]) {
            let mut core = DecisionCore::new(spec, CostModel::message(0.25)).unwrap();
            let mut reference = spec.build();
            for r in &sched("rrwwrwrrrwwwrwrwrrwwrrrrwwww") {
                let d = core.decide(r);
                assert_eq!(d.action, reference.on_request(r), "{spec}");
                assert_eq!(d.has_copy, reference.has_copy(), "{spec}");
            }
        }
    }

    #[test]
    fn snapshots_restore_mid_stream() {
        for spec in PolicySpec::roster(&[1, 3, 5], &[2, 4]) {
            let stream = sched("rrwwrwrrrwwwrwrwrrwwrrrrwwww");
            let tail = sched("wwrrwrwrwwrr");
            let mut whole = DecisionCore::new(spec, CostModel::message(0.5)).unwrap();
            for r in &stream {
                whole.decide(r);
            }
            let snap = whole.snapshot();
            let mut restored = DecisionCore::restore(&snap).unwrap();
            for r in &tail {
                let a = whole.decide(r);
                let b = restored.decide(r);
                assert_eq!(a, b, "{spec}");
            }
            assert_eq!(whole.counts(), restored.counts(), "{spec}");
            assert_eq!(whole.snapshot(), restored.snapshot(), "{spec}");
        }
    }

    #[test]
    fn snapshot_version_mismatch_is_typed() {
        let core = DecisionCore::new(PolicySpec::St1, CostModel::Connection).unwrap();
        let mut snap = core.snapshot();
        snap.version = 99;
        assert_eq!(
            DecisionCore::restore(&snap).err(),
            Some(ConfigError::SnapshotVersion {
                found: 99,
                supported: SNAPSHOT_VERSION
            })
        );
    }

    #[test]
    fn inconsistent_snapshots_are_rejected() {
        let mut core =
            DecisionCore::new(PolicySpec::SlidingWindow { k: 3 }, CostModel::Connection).unwrap();
        core.decide(Request::Write);
        let mut snap = core.snapshot();
        snap.decided = 7;
        assert!(matches!(
            DecisionCore::restore(&snap),
            Err(ConfigError::BadDecisionRequest { .. })
        ));
        let mut snap = core.snapshot();
        snap.state = PolicyState::Window {
            window: "rw".to_owned(), // wrong length for k = 3
        };
        assert!(DecisionCore::restore(&snap).is_err());
        let mut snap = core.snapshot();
        snap.state = PolicyState::Streak {
            has_copy: false,
            streak: 0,
        };
        assert!(DecisionCore::restore(&snap).is_err(), "state/spec mismatch");
    }

    #[test]
    fn invalid_specs_are_rejected_with_config_errors() {
        assert_eq!(
            DecisionCore::new(PolicySpec::SlidingWindow { k: 4 }, CostModel::Connection)
                .err()
                .unwrap(),
            ConfigError::EvenWindow { k: 4 }
        );
        assert_eq!(
            DecisionCore::new(PolicySpec::T1 { m: 0 }, CostModel::Connection)
                .err()
                .unwrap(),
            ConfigError::ZeroThreshold
        );
        assert_eq!(
            DecisionCore::new(PolicySpec::T2 { m: 0 }, CostModel::Connection)
                .err()
                .unwrap(),
            ConfigError::ZeroThreshold
        );
        // `adopt` re-validates with the same rules: a running core must
        // reject the same degenerate specs it would reject at birth.
        let mut core = DecisionCore::new(PolicySpec::St1, CostModel::Connection).unwrap();
        assert_eq!(
            core.adopt(PolicySpec::T1 { m: 0 }).err().unwrap(),
            ConfigError::ZeroThreshold
        );
        assert_eq!(
            core.adopt(PolicySpec::T2 { m: 0 }).err().unwrap(),
            ConfigError::ZeroThreshold
        );
        assert_eq!(
            core.adopt(PolicySpec::SlidingWindow { k: 6 })
                .err()
                .unwrap(),
            ConfigError::EvenWindow { k: 6 }
        );
        assert_eq!(core.spec(), PolicySpec::St1, "failed adoption is a no-op");
    }

    #[test]
    fn adopt_preserves_replica_state() {
        let mut core =
            DecisionCore::new(PolicySpec::SlidingWindow { k: 3 }, CostModel::Connection).unwrap();
        core.decide(Request::Read);
        core.decide(Request::Read);
        assert!(core.has_copy());
        let before = core.decided();
        core.adopt(PolicySpec::SlidingWindow { k: 7 }).unwrap();
        assert!(core.has_copy(), "adoption must not drop the replica");
        assert_eq!(core.spec(), PolicySpec::SlidingWindow { k: 7 });
        assert_eq!(core.decided(), before, "ledger continues uninterrupted");
        // The adopted window agrees with the copy state, so the §4
        // invariant holds on the very next request.
        let d = core.decide(Request::Read);
        assert_eq!(d.verdict, Verdict::ServeLocal);
        assert!(core.adopt(PolicySpec::SlidingWindow { k: 2 }).is_err());
    }

    // -- the serving layer --

    fn engine() -> ServeEngine {
        ServeEngine::new(ServeConfig::default()).unwrap()
    }

    fn open(engine: &mut ServeEngine, tenant: &str, policy: &str) -> ServeResponse {
        engine.apply(&ServeRequest::Open {
            tenant: tenant.to_owned(),
            policy: Some(policy.to_owned()),
            model: None,
        })
    }

    #[test]
    fn tenants_are_isolated() {
        let mut e = engine();
        open(&mut e, "a", "SW3");
        open(&mut e, "b", "ST1");
        for _ in 0..2 {
            e.apply(&ServeRequest::Decide {
                tenant: "a".to_owned(),
                request: 'r',
            });
        }
        let ServeResponse::Stats {
            has_copy, decided, ..
        } = e.apply(&ServeRequest::Stats {
            tenant: Some("a".to_owned()),
        })
        else {
            panic!("expected stats");
        };
        assert!(has_copy);
        assert_eq!(decided, 2);
        let ServeResponse::Stats {
            has_copy, decided, ..
        } = e.apply(&ServeRequest::Stats {
            tenant: Some("b".to_owned()),
        })
        else {
            panic!("expected stats");
        };
        assert!(!has_copy);
        assert_eq!(decided, 0);
    }

    #[test]
    fn unknown_tenants_are_typed_errors() {
        let mut e = engine();
        let r = e.apply(&ServeRequest::Decide {
            tenant: "ghost".to_owned(),
            request: 'r',
        });
        let ServeResponse::Error { code, detail } = r else {
            panic!("expected an error, got {r:?}");
        };
        assert_eq!(code, "unknown-tenant");
        assert!(detail.contains("ghost"));
    }

    #[test]
    fn tenant_limit_sheds_typed() {
        let mut e = ServeEngine::new(ServeConfig {
            max_tenants: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        open(&mut e, "a", "ST1");
        let r = open(&mut e, "b", "ST1");
        assert!(
            matches!(
                r,
                ServeResponse::Shed {
                    reason: ServeShedReason::TenantLimit,
                    ..
                }
            ),
            "{r:?}"
        );
        // Closing frees the slot.
        e.apply(&ServeRequest::Close {
            tenant: "a".to_owned(),
        });
        assert!(matches!(
            open(&mut e, "b", "ST1"),
            ServeResponse::Opened { .. }
        ));
    }

    #[test]
    fn decision_budget_sheds_typed() {
        let mut e = ServeEngine::new(ServeConfig {
            decision_budget: Some(2),
            ..ServeConfig::default()
        })
        .unwrap();
        open(&mut e, "a", "ST1");
        let decide = ServeRequest::Decide {
            tenant: "a".to_owned(),
            request: 'r',
        };
        assert!(matches!(e.apply(&decide), ServeResponse::Decided { .. }));
        assert!(matches!(e.apply(&decide), ServeResponse::Decided { .. }));
        assert!(matches!(
            e.apply(&decide),
            ServeResponse::Shed {
                reason: ServeShedReason::BudgetExhausted,
                ..
            }
        ));
    }

    #[test]
    fn malformed_lines_never_panic() {
        let mut e = engine();
        for line in [
            "",
            "not json",
            "{}",
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"decide"}"#,
            r#"{"op":"decide","tenant":"a","request":"x"}"#,
            r#"{"op":"open","tenant":"a","policy":"SW4"}"#,
            r#"{"op":"open","tenant":""}"#,
            r#"{"op":"restore","tenant":"a","snapshot":{"version":1}}"#,
            r#"{"op":"open","tenant":"a","model":"parsecs"}"#,
            "\u{0}\u{1}\u{2}",
        ] {
            let out = e.handle_line(line);
            assert!(out.starts_with(r#"{"err":"#), "line {line:?} -> {out}");
        }
        assert_eq!(e.tenant_count(), 0, "no malformed open may half-succeed");
    }

    #[test]
    fn wire_round_trip_decides() {
        let mut e = engine();
        let out =
            e.handle_line(r#"{"op":"open","tenant":"mc1","policy":"SW1","model":"message:0.5"}"#);
        assert_eq!(
            out,
            r#"{"ok":"open","tenant":"mc1","policy":"SW1","model":"message(ω=0.5)"}"#
        );
        let out = e.handle_line(r#"{"op":"decide","tenant":"mc1","request":"r"}"#);
        assert!(out.contains(r#""action":"remote-read+allocate""#), "{out}");
        assert!(out.contains(r#""verdict":"allocate""#), "{out}");
        assert!(out.contains(r#""cost":1.5"#), "{out}");
        let out = e.handle_line(r#"{"op":"decide","tenant":"mc1","request":"w"}"#);
        assert!(out.contains(r#""action":"delete-request-write""#), "{out}");
        assert!(out.contains(r#""cost":0.5"#), "{out}");
        let out = e.handle_line(r#"{"op":"shutdown"}"#);
        assert_eq!(out, r#"{"ok":"shutdown","tenants":1,"decisions":2}"#);
        assert!(e.is_done());
    }

    #[test]
    fn serve_snapshot_restores_over_the_wire() {
        let mut e = engine();
        open(&mut e, "a", "T1(2)");
        for r in "rrwrr".chars() {
            e.apply(&ServeRequest::Decide {
                tenant: "a".to_owned(),
                request: r,
            });
        }
        let snap_line = e.handle_line(r#"{"op":"snapshot","tenant":"a"}"#);
        // Re-inject the snapshot JSON as a restore of a fresh tenant.
        let snapshot_json = snap_line
            .strip_prefix(r#"{"ok":"snapshot","tenant":"a","snapshot":"#)
            .and_then(|s| s.strip_suffix('}'))
            .expect("snapshot response shape");
        let restore_line = format!(r#"{{"op":"restore","tenant":"b","snapshot":{snapshot_json}}}"#);
        let out = e.handle_line(&restore_line);
        assert_eq!(out, r#"{"ok":"restore","tenant":"b","decided":5}"#);
        // The clone now decides identically to the original.
        for r in "wrwwrr".chars() {
            let a = e.handle_line(&format!(
                r#"{{"op":"decide","tenant":"a","request":"{r}"}}"#
            ));
            let b = e.handle_line(&format!(
                r#"{{"op":"decide","tenant":"b","request":"{r}"}}"#
            ));
            assert_eq!(
                a.replace(r#""tenant":"a""#, ""),
                b.replace(r#""tenant":"b""#, "")
            );
        }
    }

    #[test]
    fn adaptive_mode_adopts_the_best_window() {
        let mut e = ServeEngine::new(ServeConfig {
            adaptive: true,
            default_model: CostModel::Connection,
            ..ServeConfig::default()
        })
        .unwrap();
        open(&mut e, "a", "T1(2)");
        // A long read-heavy stream: θ̂ stabilizes near 0, where larger
        // windows and two-copies-like behaviour win.
        for i in 0..(ADAPT_INTERVAL * 3) {
            let letter = if i % 10 == 0 { 'w' } else { 'r' };
            e.apply(&ServeRequest::Decide {
                tenant: "a".to_owned(),
                request: letter,
            });
        }
        let ServeResponse::Stats { policy, .. } = e.apply(&ServeRequest::Stats {
            tenant: Some("a".to_owned()),
        }) else {
            panic!("expected stats");
        };
        assert!(
            policy.starts_with("SW"),
            "θ̂ stabilized, so the §6 re-selection must have fired; still {policy}"
        );
    }

    #[test]
    fn bench_session_is_deterministic() {
        let lines = serve_bench_lines(4, 100, 7);
        let a = run_serve_bench(&lines, ServeConfig::default()).unwrap();
        let b = run_serve_bench(&lines, ServeConfig::default()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.decisions, 400);
        // Pin the exact digest: the synthetic workload generator and the
        // response wire format are both part of the bench contract.
        assert_eq!(a.digest, 0xed27824f6d6b158f, "regression pin");
        let other = run_serve_bench(&serve_bench_lines(4, 100, 8), ServeConfig::default()).unwrap();
        assert_ne!(a.digest, other.digest, "the digest tracks the workload");
    }
}
