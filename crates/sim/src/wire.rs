//! The wireless wire protocol (§3/§4): the message kinds exchanged
//! between the mobile computer and the stationary computer, and their
//! control/data classification for message-model accounting. Beyond the
//! paper's four §3 kinds, the fault extension adds the reconnection
//! handshake and the transport-level ARQ acknowledgement.

use mdr_core::RequestWindow;

/// The two ends of the wireless link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The mobile computer (issues reads).
    Mobile,
    /// The stationary computer holding the online database (issues writes).
    Stationary,
}

impl Endpoint {
    /// The opposite end of the link.
    pub fn peer(self) -> Endpoint {
        match self {
            Endpoint::Mobile => Endpoint::Stationary,
            Endpoint::Stationary => Endpoint::Mobile,
        }
    }
}

/// Message-model billing class (§3): data messages carry the item and cost
/// 1; control messages carry only control information. The mobility layer
/// (`docs/topology.md`) adds a third class for the broadcast invalidation
/// that drops stale replicas from non-owner cells on handoff commit —
/// backbone traffic billed separately from the §3 wireless bill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageClass {
    /// Carries the data item.
    Data,
    /// Carries only control information (read-requests, delete-requests).
    Control,
    /// Invalidates stale replicas at non-owner cells (mobility extension).
    Invalidation,
}

/// A message on the wireless link.
///
/// The §4 protocol piggybacks the request window on the messages that move
/// replica ownership: the allocating [`DataResponse`](WireMessage::DataResponse)
/// carries the window MC-ward, the deallocating
/// [`DeleteRequest`](WireMessage::DeleteRequest) carries it SC-ward.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WireMessage {
    /// MC → SC: a read the MC could not serve locally.
    ReadRequest,
    /// SC → MC: the data item. `allocate` is the §4 save-the-copy
    /// indication, in which case `window` carries the current request
    /// window and the SC commits to propagating future writes.
    DataResponse {
        /// Version of the item being returned.
        version: u64,
        /// Whether the MC should save the copy (ownership handoff).
        allocate: bool,
        /// The piggybacked request window (present iff `allocate`, for the
        /// window-based policies), shipped in the canonical (`head = 0`)
        /// representation.
        window: Option<RequestWindow>,
    },
    /// SC → MC: a write propagated to the MC's replica.
    WritePropagation {
        /// New version of the item.
        version: u64,
    },
    /// A deallocation indication. MC → SC after a propagated write flips
    /// the window majority (carrying the window back), or SC → MC when the
    /// SC itself knows the copy must drop (SW1's optimized write, T1m's
    /// phase-ending write).
    DeleteRequest {
        /// The piggybacked request window (window-based policies, MC → SC
        /// direction only), shipped in the canonical (`head = 0`)
        /// representation.
        window: Option<RequestWindow>,
    },
    /// MC → SC: announces that the MC is reachable again after a crash
    /// (fault-model extension, see `docs/faults.md`) and reports which
    /// replica state survived, so the SC can re-validate its commitment.
    Reconnect {
        /// The link epoch the MC reconnects under.
        epoch: u64,
        /// The version the MC still caches, if its replica survived in
        /// stable storage; `None` after a volatile crash.
        cached_version: Option<u64>,
    },
    /// SC → MC: closes the reconnection handshake. When the policy keeps
    /// the MC subscribed through crashes (ST2), `refresh` re-ships the item
    /// and the message bills as data; otherwise it is pure control.
    ReconnectAck {
        /// The link epoch being acknowledged.
        epoch: u64,
        /// Fresh item version re-establishing the replica, if any.
        refresh: Option<u64>,
    },
    /// A transport-level acknowledgement of the envelope with sequence
    /// number `of_seq` (ARQ extension; `docs/faults.md`). Sent when a
    /// delivery completes an exchange — deliveries that provoke a protocol
    /// response are acknowledged implicitly by that response. Acks are
    /// never themselves acked or retransmitted.
    Ack {
        /// Sequence number of the envelope being acknowledged.
        of_seq: u64,
    },
    /// Origin SC → target SC: the first handoff leg, announcing that the MC
    /// migrated and opening handoff epoch `epoch` (mobility extension;
    /// `docs/topology.md`). Backbone traffic: never crosses the wireless
    /// link or enters the §4 protocol state.
    HandoffRequest {
        /// The handoff epoch this attempt runs under (the fence).
        epoch: u64,
    },
    /// Origin SC → target SC: the second handoff leg, shipping the replica
    /// state (primary version, SWk window, T1/T2 streaks) — the one
    /// data-class leg of the handoff.
    StateTransfer {
        /// The handoff epoch this attempt runs under (the fence).
        epoch: u64,
        /// The primary's version at the origin when the snapshot was taken.
        version: u64,
    },
    /// Target SC → origin SC: the third handoff leg. Ownership moves to the
    /// target exactly when this lands at the origin under the current
    /// epoch; stale, duplicated or reordered commits are discarded.
    HandoffCommit {
        /// The handoff epoch being committed (the fence).
        epoch: u64,
    },
    /// Owner SC → stale cell(s): drop the stale replica after a handoff
    /// commit. Billed in the third message class, per stale cell or as a
    /// single broadcast depending on the topology configuration.
    Invalidate {
        /// The version at or below which replicas are stale.
        version: u64,
    },
}

impl WireMessage {
    /// Builds the MC → SC read-request control message (§3).
    ///
    /// All `WireMessage` values are built through these constructors so the
    /// wire grammar stays in one place; the workspace lint
    /// (`cargo xtask lint`) forbids literal construction outside this
    /// module.
    pub fn read_request() -> Self {
        WireMessage::ReadRequest
    }

    /// Builds the SC → MC data response (§3). `window` may only travel on an
    /// allocating response — that is the §4 ownership-handoff piggyback.
    ///
    /// # Panics
    ///
    /// Panics if a window is supplied without the allocate indication.
    pub fn data_response(version: u64, allocate: bool, window: Option<RequestWindow>) -> Self {
        assert!(
            allocate || window.is_none(),
            "the request window piggybacks only on allocating responses (§4)"
        );
        WireMessage::DataResponse {
            version,
            allocate,
            window,
        }
    }

    /// Builds the SC → MC write propagation data message (§3).
    pub fn write_propagation(version: u64) -> Self {
        WireMessage::WritePropagation { version }
    }

    /// Builds a delete-request control message (§3/§4). The window is
    /// present exactly in the MC → SC direction of the window policies.
    pub fn delete_request(window: Option<RequestWindow>) -> Self {
        WireMessage::DeleteRequest { window }
    }

    /// Builds the MC → SC reconnection announcement (fault-model extension;
    /// `docs/faults.md`).
    pub fn reconnect(epoch: u64, cached_version: Option<u64>) -> Self {
        WireMessage::Reconnect {
            epoch,
            cached_version,
        }
    }

    /// Builds the SC → MC reconnection acknowledgement; `refresh` re-ships
    /// the item when the SC re-establishes the replica during recovery.
    pub fn reconnect_ack(epoch: u64, refresh: Option<u64>) -> Self {
        WireMessage::ReconnectAck { epoch, refresh }
    }

    /// Builds a transport-level ARQ acknowledgement of sequence `of_seq`
    /// (robustness extension; `docs/faults.md`).
    pub fn ack(of_seq: u64) -> Self {
        WireMessage::Ack { of_seq }
    }

    /// Builds the first handoff leg, opening handoff epoch `epoch`
    /// (mobility extension; `docs/topology.md`).
    pub fn handoff_request(epoch: u64) -> Self {
        WireMessage::HandoffRequest { epoch }
    }

    /// Builds the second handoff leg, shipping the replica snapshot taken
    /// at primary version `version` under handoff epoch `epoch`.
    pub fn state_transfer(epoch: u64, version: u64) -> Self {
        WireMessage::StateTransfer { epoch, version }
    }

    /// Builds the third handoff leg, committing handoff epoch `epoch`.
    pub fn handoff_commit(epoch: u64) -> Self {
        WireMessage::HandoffCommit { epoch }
    }

    /// Builds the invalidation that drops replicas stale at or below
    /// `version` from non-owner cells after a handoff commit.
    pub fn invalidate(version: u64) -> Self {
        WireMessage::Invalidate { version }
    }

    /// Billing class of this message (§3). The reconnection handshake is
    /// control traffic unless the acknowledgement re-ships the item; the
    /// handoff legs bill control except the state transfer, which carries
    /// the replica; invalidations bill in their own class.
    pub fn class(&self) -> MessageClass {
        match self {
            WireMessage::ReadRequest
            | WireMessage::DeleteRequest { .. }
            | WireMessage::Reconnect { .. }
            | WireMessage::Ack { .. }
            | WireMessage::HandoffRequest { .. }
            | WireMessage::HandoffCommit { .. }
            | WireMessage::ReconnectAck { refresh: None, .. } => MessageClass::Control,
            WireMessage::DataResponse { .. }
            | WireMessage::WritePropagation { .. }
            | WireMessage::StateTransfer { .. }
            | WireMessage::ReconnectAck {
                refresh: Some(_), ..
            } => MessageClass::Data,
            WireMessage::Invalidate { .. } => MessageClass::Invalidation,
        }
    }

    /// Short display name for logs and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            WireMessage::ReadRequest => "read-request",
            WireMessage::DataResponse { .. } => "data-response",
            WireMessage::WritePropagation { .. } => "write-propagation",
            WireMessage::DeleteRequest { .. } => "delete-request",
            WireMessage::Reconnect { .. } => "reconnect",
            WireMessage::ReconnectAck { .. } => "reconnect-ack",
            WireMessage::Ack { .. } => "ack",
            WireMessage::HandoffRequest { .. } => "handoff-request",
            WireMessage::StateTransfer { .. } => "state-transfer",
            WireMessage::HandoffCommit { .. } => "handoff-commit",
            WireMessage::Invalidate { .. } => "invalidate",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_section_3() {
        assert_eq!(WireMessage::ReadRequest.class(), MessageClass::Control);
        assert_eq!(
            WireMessage::DeleteRequest { window: None }.class(),
            MessageClass::Control
        );
        assert_eq!(
            WireMessage::DataResponse {
                version: 1,
                allocate: false,
                window: None
            }
            .class(),
            MessageClass::Data
        );
        assert_eq!(
            WireMessage::WritePropagation { version: 2 }.class(),
            MessageClass::Data
        );
        // The reconnection handshake is control unless the ack re-ships the
        // item (ST2 recovery).
        assert_eq!(
            WireMessage::reconnect(1, Some(4)).class(),
            MessageClass::Control
        );
        assert_eq!(
            WireMessage::reconnect_ack(1, None).class(),
            MessageClass::Control
        );
        assert_eq!(
            WireMessage::reconnect_ack(1, Some(4)).class(),
            MessageClass::Data
        );
        // Transport-level ARQ acks carry no item: pure control.
        assert_eq!(WireMessage::ack(3).class(), MessageClass::Control);
        // Handoff legs: control except the state transfer, which ships the
        // replica; invalidations bill in the third class.
        assert_eq!(
            WireMessage::handoff_request(1).class(),
            MessageClass::Control
        );
        assert_eq!(
            WireMessage::state_transfer(1, 4).class(),
            MessageClass::Data
        );
        assert_eq!(
            WireMessage::handoff_commit(1).class(),
            MessageClass::Control
        );
        assert_eq!(
            WireMessage::invalidate(4).class(),
            MessageClass::Invalidation
        );
    }

    #[test]
    fn endpoints_are_duals() {
        assert_eq!(Endpoint::Mobile.peer(), Endpoint::Stationary);
        assert_eq!(Endpoint::Stationary.peer(), Endpoint::Mobile);
    }

    #[test]
    fn kinds_are_distinct() {
        use std::collections::HashSet;
        let kinds: HashSet<&str> = [
            WireMessage::ReadRequest.kind(),
            WireMessage::DataResponse {
                version: 0,
                allocate: false,
                window: None,
            }
            .kind(),
            WireMessage::WritePropagation { version: 0 }.kind(),
            WireMessage::DeleteRequest { window: None }.kind(),
            WireMessage::reconnect(0, None).kind(),
            WireMessage::reconnect_ack(0, None).kind(),
            WireMessage::ack(0).kind(),
            WireMessage::handoff_request(0).kind(),
            WireMessage::state_transfer(0, 0).kind(),
            WireMessage::handoff_commit(0).kind(),
            WireMessage::invalidate(0).kind(),
        ]
        .into_iter()
        .collect();
        assert_eq!(kinds.len(), 11);
    }
}
